#!/usr/bin/env python
"""CI service leg: prove the sweep-service invariants end to end.

Two checks, both runnable locally:

``python scripts/service_smoke.py two-client``
    Starts a ``repro serve`` daemon, submits the same scenario from two
    concurrent clients, and asserts exactly one execution happened
    (the second submission joined in flight), both clients received
    identical rows, and the rows match a direct ``run_scenario``.

``python scripts/service_smoke.py kill-restart``
    Starts a store-backed daemon, SIGKILLs it mid-sweep, restarts it
    against the same store and socket, resubmits, and asserts every run
    completed before the kill was served from the store (zero
    recomputation) with the final rows matching a direct run.

Exit code 0 means the invariants held.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

APPS = ["lu"]
KILL_APPS = ["lu", "ocean"]
SCALE = 0.05


def _clean_env() -> dict:
    env = dict(os.environ)
    for var in ("REPRO_FAULTS", "REPRO_FAULTS_SEED", "REPRO_FAULTS_ATTEMPTS",
                "REPRO_FAULTS_HANG_S", "REPRO_JOBS", "REPRO_STORE",
                "REPRO_SERVICE"):
        env.pop(var, None)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    return env


def _spawn_daemon(sock: Path, store: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(sock),
         "--store", str(store), "--jobs", "2"],
        env=_clean_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT)


def check_two_client() -> int:
    from repro.experiments.scenario import run_scenario
    from repro.experiments.service import ServiceClient, wait_for_service

    direct = run_scenario("figure5", apps=APPS, scale=SCALE)

    with tempfile.TemporaryDirectory() as tmp:
        sock = Path(tmp) / "svc.sock"
        store = Path(tmp) / "results.sqlite"
        daemon = _spawn_daemon(sock, store)
        try:
            wait_for_service(sock, timeout=60)
            results: dict = {}
            joined: dict = {}

            def submit(idx: int, delay: float) -> None:
                time.sleep(delay)
                client = ServiceClient(sock)

                def on_event(event):
                    if event.get("event") == "accepted":
                        joined[idx] = event["joined"]

                results[idx] = client.submit("figure5", apps=APPS,
                                             scale=SCALE, on_event=on_event)

            threads = [threading.Thread(target=submit, args=(0, 0.0)),
                       threading.Thread(target=submit, args=(1, 0.1))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            stats = ServiceClient(sock).stats()
            ServiceClient(sock).shutdown()
            daemon.wait(timeout=15)
        finally:
            if daemon.poll() is None:
                daemon.kill()

    print("service stats:", json.dumps(stats["service"]))
    if stats["runner"]["runs"] != len(results[0].rows):
        print(f"FAIL: expected {len(results[0].rows)} executions, "
              f"got {stats['runner']['runs']}")
        return 1
    if stats["service"]["inflight_joins"] != 1:
        print(f"FAIL: expected 1 in-flight join, got "
              f"{stats['service']['inflight_joins']}")
        return 1
    if sorted(joined.values()) != [False, True]:
        print(f"FAIL: unexpected joined flags {joined}")
        return 1
    if results[0].rows != results[1].rows:
        print("FAIL: the two clients received different rows")
        return 1
    if results[0].rows != direct.rows:
        print("FAIL: served rows differ from a direct run_scenario")
        return 1
    print(f"OK: 2 clients, 1 execution, {len(direct.rows)} identical rows")
    return 0


def check_kill_restart() -> int:
    import sqlite3

    from repro.experiments.scenario import run_scenario
    from repro.experiments.service import ServiceClient, wait_for_service

    with tempfile.TemporaryDirectory() as tmp:
        sock = Path(tmp) / "svc.sock"
        store = Path(tmp) / "results.sqlite"

        daemon = _spawn_daemon(sock, store)
        try:
            wait_for_service(sock, timeout=60)

            def swallow():
                try:
                    ServiceClient(sock).submit("figure5", apps=KILL_APPS,
                                               scale=SCALE)
                except Exception:
                    pass   # the daemon dies mid-request by design

            threading.Thread(target=swallow, daemon=True).start()

            # kill as soon as the store proves at least one completed run
            rows_at_kill = 0
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if store.exists():
                    try:
                        conn = sqlite3.connect(str(store), timeout=5)
                        (rows_at_kill,) = conn.execute(
                            "SELECT COUNT(*) FROM results").fetchone()
                        conn.close()
                    except sqlite3.Error:
                        rows_at_kill = 0
                    if rows_at_kill:
                        break
                time.sleep(0.1)
            daemon.kill()
            daemon.wait(timeout=15)
            print(f"killed the daemon with {rows_at_kill} run(s) stored")
        finally:
            if daemon.poll() is None:
                daemon.kill()
        if rows_at_kill == 0:
            print("FAIL: no run reached the store before the kill")
            return 1

        daemon = _spawn_daemon(sock, store)
        try:
            wait_for_service(sock, timeout=60)
            client = ServiceClient(sock)
            rs = client.submit("figure5", apps=KILL_APPS, scale=SCALE)
            stats = rs.runner_stats
            client.shutdown()
            daemon.wait(timeout=15)
        finally:
            if daemon.poll() is None:
                daemon.kill()

    print("resubmit counters:", json.dumps(stats))
    if stats["store_hits"] < rows_at_kill:
        print(f"FAIL: only {stats['store_hits']} store hits for "
              f"{rows_at_kill} stored runs")
        return 1
    if stats["runs"] + stats["store_hits"] != len(rs.rows):
        print("FAIL: runs + store_hits do not cover the sweep")
        return 1
    direct = run_scenario("figure5", apps=KILL_APPS, scale=SCALE)
    if rs.rows != direct.rows:
        print("FAIL: resumed rows differ from a direct run_scenario")
        return 1
    print(f"OK: restart served {stats['store_hits']} runs from the store, "
          f"recomputed {stats['runs']}")
    return 0


def main() -> int:
    if len(sys.argv) != 2 or sys.argv[1] not in ("two-client",
                                                 "kill-restart"):
        print(__doc__)
        return 2
    if sys.argv[1] == "two-client":
        return check_two_client()
    return check_kill_restart()


if __name__ == "__main__":
    sys.exit(main())
