#!/usr/bin/env python
"""Out-of-core smoke: stream a trace bigger than the process may malloc.

Proves the tentpole claim of the trace-file subsystem end to end:

1. ``resource.setrlimit(RLIMIT_DATA, ...)`` caps this process's writable
   anonymous memory well below the trace's logical size.  (RLIMIT_DATA
   counts brk + private writable mappings but *not* read-only file-backed
   mmaps, which is exactly the accounting we want: the trace mapping is
   free, materializing it is fatal.  RLIMIT_RSS is unenforced on Linux
   and RLIMIT_AS would charge the file mapping itself.)
2. A synthetic trace is *generated under that cap*, chunk by chunk,
   through :class:`repro.traces.TraceFileWriter` — creation is itself
   out-of-core.
3. A migrep-vs-perfect sweep runs from the file through the standard
   :class:`repro.experiments.runner.SweepRunner` path, streaming phases
   from the mmap.  Materializing the trace (`np.empty` of the full
   streams) would blow RLIMIT_DATA with a MemoryError, so mere
   completion is the assertion; the script additionally checks the
   bytes-streamed and peak-RSS counters for coherence.

CI runs this with a multi-GB logical trace; ``--refs`` scales it down
for quick local runs.
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import base_config                      # noqa: E402
from repro.experiments.runner import SweepRunner          # noqa: E402
from repro.traces import TraceFileWriter, open_trace      # noqa: E402


def generate_streamed(path: Path, *, total_refs: int, num_procs: int,
                      refs_per_phase: int, pages: int,
                      blocks_per_page: int, seed: int = 0) -> None:
    """Write a synthetic hit-dense trace of ``total_refs`` references.

    Processor-partitioned (mostly private) page draws keep the
    simulator's per-phase working set small while the *logical* stream
    grows without bound — the shape that exercises streaming rather
    than protocol stress.
    """
    rng = np.random.default_rng(seed)
    per_proc = max(1, refs_per_phase // num_procs)
    num_phases = max(1, total_refs // (per_proc * num_procs))
    pages_per_proc = max(1, pages // num_procs)
    span = pages_per_proc * blocks_per_page
    with TraceFileWriter(path, name="stream-smoke", num_procs=num_procs,
                         metadata={"refs_per_phase": refs_per_phase,
                                   "seed": seed}) as writer:
        for pi in range(num_phases):
            writer.begin_phase(f"phase-{pi:04d}", compute_per_access=1)
            for proc in range(num_procs):
                lo = proc * span
                # Repeated sequential sweeps over a private buffer: after
                # the first touch almost every reference is a guaranteed
                # L1 hit, so the engine's bulk path carries the stream
                # and memory stays flat no matter how long it runs.
                blocks = lo + (np.arange(per_proc, dtype=np.int64)
                               % blocks_per_page)
                writes = np.zeros(per_proc, dtype=np.bool_)
                writes[rng.integers(0, per_proc, size=max(1, per_proc // 8))] = True
                writer.append(proc, blocks, writes)
            writer.end_phase()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--refs", type=int, default=300_000_000,
                        help="total logical references (default 300M "
                             "= ~2.7 GB of streams)")
    parser.add_argument("--refs-per-phase", type=int, default=300_000,
                        help="references per phase (bounds the engine's "
                             "working set)")
    parser.add_argument("--rlimit-mb", type=int, default=512,
                        help="RLIMIT_DATA ceiling in MiB (default 512)")
    parser.add_argument("--pages", type=int, default=4096,
                        help="distinct pages touched (default 4096)")
    parser.add_argument("--out", type=str, default=None,
                        help="trace file path (default: a temp dir)")
    args = parser.parse_args()

    cfg = base_config()
    num_procs = cfg.machine.num_processors
    logical_bytes = args.refs * 9
    cap_bytes = args.rlimit_mb << 20
    if cap_bytes >= logical_bytes:
        print(f"error: rlimit ({cap_bytes} B) must stay below the logical "
              f"trace size ({logical_bytes} B) for the smoke to prove "
              "anything; raise --refs or lower --rlimit-mb",
              file=sys.stderr)
        return 2

    resource.setrlimit(resource.RLIMIT_DATA, (cap_bytes, cap_bytes))
    print(f"RLIMIT_DATA capped at {args.rlimit_mb} MiB; "
          f"logical trace size {logical_bytes / (1 << 30):.2f} GiB "
          f"({args.refs} refs, {num_procs} procs)")

    tmpdir = None
    if args.out is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-stream-smoke-")
        out = Path(tmpdir.name) / "smoke.rpt"
    else:
        out = Path(args.out)

    t0 = time.monotonic()
    generate_streamed(out, total_refs=args.refs, num_procs=num_procs,
                      refs_per_phase=args.refs_per_phase,
                      pages=args.pages,
                      blocks_per_page=cfg.machine.blocks_per_page)
    gen_s = time.monotonic() - t0
    file_bytes = out.stat().st_size
    print(f"generated {out} ({file_bytes / (1 << 30):.2f} GiB on disk) "
          f"in {gen_s:.1f}s")

    trace = open_trace(out)
    per_proc = max(1, args.refs_per_phase // num_procs)
    phase_refs = per_proc * num_procs
    expected_refs = max(1, args.refs // phase_refs) * phase_refs
    assert trace.total_accesses() == expected_refs, "unexpected reference count"

    t0 = time.monotonic()
    with SweepRunner() as runner:
        results = runner.run_systems(trace, ["migrep"], cfg)
    run_s = time.monotonic() - t0
    norm = results["migrep"].normalized_time(results["perfect"])
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    streamed = runner.stats.bytes_streamed
    print(f"migrep/perfect normalized time: {norm:.3f} "
          f"({run_s:.1f}s, streamed {streamed / (1 << 30):.2f} GiB, "
          f"peak RSS {peak_kb / 1024:.0f} MiB)")

    expected = 2 * 9 * trace.total_accesses()   # two runs over the file
    if streamed < expected:
        print(f"error: streamed {streamed} B < expected {expected} B",
              file=sys.stderr)
        return 1
    if not (0.5 < norm < 50.0):
        print(f"error: implausible normalized time {norm}", file=sys.stderr)
        return 1
    print("stream smoke OK")
    if tmpdir is not None:
        tmpdir.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
