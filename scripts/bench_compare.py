#!/usr/bin/env python
"""Track and gate the engine benchmarks against BENCH_engine.json.

The repository commits ``BENCH_engine.json``: a recorded baseline of the
engine's headline numbers (the PR 4 engine on the miss-dense reference
configuration) plus the numbers recorded for the current tree.  This
script re-measures the same quantities and

* ``--record``  rewrites the ``current`` section (run on the machine
  whose numbers you want committed),
* ``--check``   fails (exit 1) when the fresh measurements regress —
  used in CI, so the comparisons are *ratios* (batched vs legacy on the
  same host, promotion on vs off, warm vs cold sweep workers), which
  transfer across machines, never absolute wall times.

Gates enforced by ``--check`` (record schema 5):

1. On the miss-dense configuration (``benchmarks/bench_engine_speedup.
   miss_dense_spec``) the batched engine's speedup over the legacy
   interpreter for ``migrep`` must be at least ``1.3x`` the PR 4
   baseline's recorded speedup (the dynamic-promotion / line-precise
   demotion / inlined-upgrade work), and ``rnuma`` must not regress
   below the baseline band.
2. Adaptive promotion (the default) must not lose to either forced
   mode: ``promotion_speedup`` (forced-on over adaptive) and
   ``nopromo_speedup`` (forced-off over adaptive) both stay within the
   tolerance band of 1.0.
3. The compiled residual kernel (``engine=kernel``) must hold a
   ``>= 5x`` miss-dense migrep speedup over the batched engine on the
   same host, and the full-family lanes added with schema 5 — ``rnuma``
   (the R-NUMA relocation lane), ``rnuma_migrep`` (the hybrid) and
   ``hysteresis`` (migrep under the adaptive hysteresis policy, its
   evaluation inlined in the compiled walk) — must each hold
   ``>= 4x``.  None may
   regress below the committed ``current`` band.  When no compiled
   backend exists on the host (no numba, no C toolchain) the lanes
   record their ``fallback_reason`` and the gates are skipped — the
   pure-Python install stays green.
4. The warm shared-memory ``jobs=2`` sweep must not be slower than the
   cold per-worker npz path beyond the tolerance band.
5. The hot-set batched-vs-legacy speedup must stay within the band of
   the committed ``current`` recording.
6. Streaming a trace from an on-disk trace file
   (:class:`repro.workloads.tracefile.StreamingTrace`) must cost at most
   10% over running the same trace in memory (schema 3, ``streaming``
   lane) — the mmap-served phase views are supposed to be within noise
   of heap arrays, and this lane keeps the out-of-core path honest.
7. A sweep checkpointing into a **cold** durable
   :class:`~repro.experiments.store.ResultStore` must cost at most 10%
   over the same sweep without a store (schema 4, ``store`` lane) —
   the per-run pickle+upsert is supposed to disappear next to
   simulation time.  The warm-store replay time is recorded
   informationally (it is bounded by unpickling, typically a tiny
   fraction of the cold sweep).

Every timing lane also asserts bit-identical results across engines and
promotion modes first — a speedup over wrong results is worthless.
Everything measured is also printed, so CI logs double as a perf record.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

BENCH_FILE = REPO / "BENCH_engine.json"


def _build_system(system):
    """Resolve a lane's system: registry names plus the bench-local
    ``hysteresis`` lane (migrep under the adaptive hysteresis policy)."""
    from repro.core.factory import build_system

    if system == "hysteresis":
        return build_system("migrep").derive("migrep-hysteresis",
                                             migrep_policy="hysteresis")
    return build_system(system)


def _one_run(cfg, system, trace, engine, env):
    """One timed run.  ``env`` pins ``REPRO_PROMOTION``: ``"1"`` /
    ``"0"`` force promotion on/off, ``""`` unsets it (the adaptive
    default), ``None`` leaves the ambient environment alone."""
    from repro.cluster.machine import Machine

    saved = None
    if env is not None:
        saved = os.environ.get("REPRO_PROMOTION")
        if env == "":
            os.environ.pop("REPRO_PROMOTION", None)
        else:
            os.environ["REPRO_PROMOTION"] = env
    try:
        machine = Machine(cfg, _build_system(system))
        t0 = time.perf_counter()
        stats = machine.run(trace, engine=engine)
        return time.perf_counter() - t0, stats
    finally:
        if env is not None:
            if saved is None:
                os.environ.pop("REPRO_PROMOTION", None)
            else:
                os.environ["REPRO_PROMOTION"] = saved


def _median_run(cfg, system, trace, engine, *, env=None, repeats=3):
    """Median-of-``repeats`` wall time for one (system, engine) lane."""
    (med,), (stats,) = _interleaved_runs(cfg, system, trace,
                                         [(engine, env)], repeats)
    return med, stats


def _interleaved_runs(cfg, system, trace, lanes, repeats):
    """Median times for several lanes, repeats interleaved round-robin.

    The lanes being compared are always ratioed against each other, and
    wall-clock drift on shared machines (CPU frequency, co-tenants)
    easily exceeds the effects being measured.  Interleaving the
    repeats spreads the drift over every lane instead of loading it
    onto whichever lane ran last.  Returns ``(medians, stats)`` in lane
    order; each lane gets one free warmup run first.
    """
    times = [[] for _ in lanes]
    stats = [None] * len(lanes)
    for j, (engine, env) in enumerate(lanes):
        _one_run(cfg, system, trace, engine, env)
    for _ in range(repeats):
        for j, (engine, env) in enumerate(lanes):
            t, st = _one_run(cfg, system, trace, engine, env)
            times[j].append(t)
            stats[j] = st
    return [statistics.median(t) for t in times], stats


def _assert_identical(system, a, b) -> None:
    if (a.execution_time != b.execution_time
            or a.stall_breakdown != b.stall_breakdown
            or a.nodes != b.nodes):
        raise SystemExit(
            f"engine results diverged for {system}: a speedup over "
            "wrong results is worthless")


def _kernel_lane(cfg, system, trace, batched_s, batched_stats,
                 repeats) -> dict:
    """Time ``engine=kernel`` on the same trace; assert bit-identity.

    When the kernel falls back (no compiled backend, ineligible
    system) the lane records the fallback reason instead of timings so
    the committed file documents *why* there is no kernel number.
    """
    kernel_s, kernel_stats = _median_run(cfg, system, trace, "kernel",
                                         repeats=repeats)
    prof = kernel_stats.engine_profile or {}
    if prof.get("engine") != "kernel":
        return {"fallback_reason": prof.get("fallback_reason", "?")}
    _assert_identical(system, batched_stats, kernel_stats)
    return {
        "backend": prof.get("backend", "?"),
        "kernel_s": round(kernel_s, 4),
        "refs_per_s": int(trace.total_accesses() / kernel_s),
        "speedup_vs_batched": round(batched_s / kernel_s, 3),
        "bails": int(prof.get("bails", 0)),
    }


def measure_miss_dense(scale: float, repeats: int) -> dict:
    """Engine and promotion-mode timings on the miss-dense configuration.

    ``batched_s`` is the adaptive-promotion default; the forced modes
    (``promo_on_s`` / ``nopromo_s``) quantify what the per-phase
    decision buys, and the ``kernel`` sub-record times the compiled
    residual kernel against the same trace.
    """
    from bench_engine_speedup import miss_dense_config, miss_dense_spec
    from repro.workloads.generator import TraceGenerator

    cfg = miss_dense_config()
    accesses = max(600, int(1500 * scale))
    trace = TraceGenerator(miss_dense_spec(accesses_per_proc=accesses),
                           cfg.machine, seed=0).generate()
    out = {"accesses": trace.total_accesses()}
    for system in ("migrep", "rnuma"):
        legacy_s, legacy_stats = _median_run(cfg, system, trace, "legacy",
                                             repeats=max(1, repeats - 1))
        lanes = [("batched", ""), ("batched", "1"), ("batched", "0")]
        ((batched_s, promo_on_s, nopromo_s),
         (batched_stats, promo_on_stats, nopromo_stats)) = _interleaved_runs(
            cfg, system, trace, lanes, repeats)
        for other in (batched_stats, promo_on_stats, nopromo_stats):
            _assert_identical(system, legacy_stats, other)
        prof = batched_stats.engine_profile or {}
        decisions = prof.get("phase_promotions") or []
        out[system] = {
            "legacy_s": round(legacy_s, 4),
            "batched_s": round(batched_s, 4),
            "promo_on_s": round(promo_on_s, 4),
            "nopromo_s": round(nopromo_s, 4),
            "refs_per_s": int(trace.total_accesses() / batched_s),
            "speedup_vs_legacy": round(legacy_s / batched_s, 3),
            "promotion_speedup": round(promo_on_s / batched_s, 3),
            "nopromo_speedup": round(nopromo_s / batched_s, 3),
            "promotion_mode": prof.get("promotion_mode", "?"),
            "phases_promoted": sum(
                1 for d in decisions if d.get("promotion")),
            "phases": len(decisions),
            "promoted": int(prof.get("promoted", 0)),
            "demoted": int(prof.get("demoted", 0)),
            "residual": int(prof.get("residual", 0)),
            "kernel": _kernel_lane(cfg, system, trace, batched_s,
                                   batched_stats, repeats),
        }
    # full-family kernel lanes (schema 5): the hybrid system and the
    # adaptive-policy ride-along get a lighter record — legacy, batched
    # and the gated kernel number — without the promotion-mode sweep
    for system, key in (("rnuma-migrep", "rnuma_migrep"),
                        ("hysteresis", "hysteresis")):
        legacy_s, legacy_stats = _median_run(cfg, system, trace, "legacy",
                                             repeats=max(1, repeats - 1))
        batched_s, batched_stats = _median_run(cfg, system, trace,
                                               "batched", env="",
                                               repeats=repeats)
        _assert_identical(system, legacy_stats, batched_stats)
        out[key] = {
            "legacy_s": round(legacy_s, 4),
            "batched_s": round(batched_s, 4),
            "refs_per_s": int(trace.total_accesses() / batched_s),
            "speedup_vs_legacy": round(legacy_s / batched_s, 3),
            "kernel": _kernel_lane(cfg, system, trace, batched_s,
                                   batched_stats, repeats),
        }
    return out


def measure_hot_set(scale: float, repeats: int) -> dict:
    """Batched-vs-legacy speedup on the high-hit-ratio workload."""
    from bench_engine_speedup import hot_set_spec
    from repro.config import base_config
    from repro.workloads.generator import TraceGenerator

    cfg = base_config(seed=0)
    accesses = max(1000, int(2000 * scale))
    trace = TraceGenerator(hot_set_spec(accesses_per_proc=accesses),
                           cfg.machine, seed=0).generate()
    legacy_s, legacy_stats = _median_run(cfg, "ccnuma", trace, "legacy",
                                         repeats=repeats)
    batched_s, batched_stats = _median_run(cfg, "ccnuma", trace, "batched",
                                           env="", repeats=repeats)
    _assert_identical("ccnuma", legacy_stats, batched_stats)
    return {
        "accesses": trace.total_accesses(),
        "legacy_s": round(legacy_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup_vs_legacy": round(legacy_s / batched_s, 3),
        "kernel": _kernel_lane(cfg, "ccnuma", trace, batched_s,
                               batched_stats, repeats),
    }


def measure_sweep(scale: float) -> dict:
    """Figure-sized jobs=2 sweep: warm shared-memory vs cold npz workers."""
    from repro.config import base_config
    from repro.experiments.runner import SweepRunner
    from repro.workloads import get_workload

    cfg = base_config(seed=0)
    traces = [get_workload(app, machine=cfg.machine, scale=max(0.05, scale),
                           seed=0) for app in ("lu", "radix", "barnes")]
    items = [(t, s, cfg) for t in traces
             for s in ("perfect", "ccnuma", "migrep", "rnuma")]

    def sweep():
        with SweepRunner(jobs=2, memoize=False) as runner:
            runner.map_runs(items)
            return runner.stats

    # two passes each, best-of: pool start-up and 2-worker scheduling on
    # small CI machines are noisy, and the gate compares the two numbers
    # against each other rather than against a committed recording
    cold_times = []
    os.environ["REPRO_NO_SHM"] = "1"
    try:
        for _ in range(2):
            t0 = time.perf_counter()
            sweep()
            cold_times.append(time.perf_counter() - t0)
    finally:
        os.environ.pop("REPRO_NO_SHM", None)
    warm_times = []
    for _ in range(2):
        t0 = time.perf_counter()
        stats = sweep()
        warm_times.append(time.perf_counter() - t0)
    cold_s = min(cold_times)
    warm_s = min(warm_times)
    return {
        "runs": len(items),
        "cold_npz_s": round(cold_s, 4),
        "warm_shm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 3),
        "shm_attaches": stats.shm_attaches,
        "worker_reuse": stats.worker_reuse,
    }


def measure_streaming(scale: float, repeats: int) -> dict:
    """In-memory vs streamed-from-file timings of the same trace.

    Writes a figure-sized trace to a trace file, then times the batched
    engine over the in-memory :class:`Trace` and over the mmap-backed
    :class:`StreamingTrace` of the same file, repeats interleaved to
    cancel drift.  Results must be bit-identical; the gate is on the
    overhead ratio.
    """
    import tempfile

    from repro.config import base_config
    from repro.workloads import get_workload
    from repro.workloads.tracefile import open_trace, write_trace_file

    cfg = base_config(seed=0)
    trace = get_workload("lu", machine=cfg.machine,
                         scale=max(0.05, 0.3 * scale), seed=0)
    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as d:
        path = write_trace_file(trace, Path(d) / "bench.rpt")
        streamed = open_trace(path)
        lanes = [("memory", trace), ("file", streamed)]
        times = {label: [] for label, _ in lanes}
        stats = {}
        for label, tr in lanes:            # warmup (maps the file once)
            _one_run(cfg, "migrep", tr, "batched", "")
        for _ in range(repeats):
            for label, tr in lanes:
                t, st = _one_run(cfg, "migrep", tr, "batched", "")
                times[label].append(t)
                stats[label] = st
        _assert_identical("migrep", stats["memory"], stats["file"])
        inmem_s = statistics.median(times["memory"])
        stream_s = statistics.median(times["file"])
        return {
            "accesses": trace.total_accesses(),
            "file_bytes": path.stat().st_size,
            "inmem_s": round(inmem_s, 4),
            "streamed_s": round(stream_s, 4),
            "overhead": round(stream_s / inmem_s, 3),
            "bytes_streamed": streamed.bytes_streamed,
        }


def measure_store(scale: float) -> dict:
    """Sweep wall time without a store vs checkpointing into a cold one.

    Each repetition of the store lane gets a fresh sqlite file, so the
    measured cost is the worst case: every run pickled and upserted.
    A final warm pass over the last populated store is recorded
    informationally — it is bounded by unpickling and should be a small
    fraction of the cold sweep.  Both gated sides are fresh best-of-two
    wall clocks, compared against each other (ratios transfer across
    machines).
    """
    import tempfile

    from repro.config import base_config
    from repro.experiments.runner import SweepRunner
    from repro.experiments.store import ResultStore
    from repro.workloads import get_workload

    cfg = base_config(seed=0)
    traces = [get_workload(app, machine=cfg.machine, scale=max(0.05, scale),
                           seed=0) for app in ("lu", "radix", "barnes")]
    items = [(t, s, cfg) for t in traces
             for s in ("perfect", "ccnuma", "migrep", "rnuma")]

    def sweep(store_path=None):
        with SweepRunner(jobs=2, memoize=False,
                         store=store_path) as runner:
            runner.map_runs(items)
            return runner.stats

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as d:
        nostore_times, cold_times = [], []
        store_path = None
        for rep in range(2):
            t0 = time.perf_counter()
            sweep()
            nostore_times.append(time.perf_counter() - t0)
            store_path = Path(d) / f"bench-{rep}.sqlite"
            t0 = time.perf_counter()
            cold_stats = sweep(store_path)
            cold_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        warm_stats = sweep(store_path)
        warm_s = time.perf_counter() - t0
        with ResultStore(store_path) as store:
            store_rows = len(store)
    nostore_s = min(nostore_times)
    cold_s = min(cold_times)
    return {
        "runs": len(items),
        "nostore_s": round(nostore_s, 4),
        "cold_store_s": round(cold_s, 4),
        "warm_store_s": round(warm_s, 4),
        "overhead": round(cold_s / nostore_s, 3),
        "warm_ratio": round(warm_s / nostore_s, 3),
        "store_misses": cold_stats.store_misses,
        "store_hits": warm_stats.store_hits,
        "store_rows": store_rows,
    }


def measure_all(scale: float, repeats: int) -> dict:
    return {
        "miss_dense": measure_miss_dense(scale, repeats),
        "hot_set": measure_hot_set(scale, repeats),
        "sweep_jobs2": measure_sweep(scale * 0.15),
        "streaming": measure_streaming(scale, repeats),
        "store": measure_store(scale * 0.15),
    }


def _fail(msgs, msg):
    msgs.append("FAIL: " + msg)


def check(measured: dict, recorded: dict, tolerance: float) -> int:
    """Compare fresh measurements against the committed record."""
    failures: list = []
    baseline = recorded.get("baseline", {})
    current = recorded.get("current", {})

    # 1. miss-dense speedup vs the PR 4 baseline (ratio of ratios)
    pr4_md = baseline.get("miss_dense", {})
    md = measured["miss_dense"]
    pr4_migrep = pr4_md.get("migrep", {}).get("speedup_vs_legacy")
    if pr4_migrep:
        need = pr4_migrep * 1.3 * (1 - tolerance)
        got = md["migrep"]["speedup_vs_legacy"]
        print(f"miss-dense migrep speedup vs legacy: {got:.2f} "
              f"(PR4 {pr4_migrep:.2f}; gate >= {need:.2f})")
        if got < need:
            _fail(failures, "miss-dense migrep speedup fell below 1.3x the "
                            "PR 4 baseline")
    pr4_rnuma = pr4_md.get("rnuma", {}).get("speedup_vs_legacy")
    if pr4_rnuma:
        need = pr4_rnuma * (1 - tolerance)
        got = md["rnuma"]["speedup_vs_legacy"]
        print(f"miss-dense rnuma speedup vs legacy: {got:.2f} "
              f"(PR4 {pr4_rnuma:.2f}; gate >= {need:.2f})")
        if got < need:
            _fail(failures, "miss-dense rnuma speedup regressed below the "
                            "PR 4 band")

    # 2. adaptive promotion must not lose to either forced mode
    for system in ("migrep", "rnuma"):
        for key, label in (("promotion_speedup", "forced-on"),
                           ("nopromo_speedup", "forced-off")):
            ratio = md[system].get(key)
            if ratio is None:
                continue
            print(f"miss-dense {system} {label} / adaptive: {ratio:.2f} "
                  f"(gate >= {1 - tolerance:.2f})")
            if ratio < 1 - tolerance:
                _fail(failures,
                      f"adaptive promotion loses to {label} on the "
                      f"{system} miss-dense run beyond the tolerance band")

    # 3. compiled kernel lanes: migrep >= 5x over batched on the same
    # host; the full-family lanes (rnuma relocation, the hybrid, and
    # migrep under the inlined hysteresis policy) >= 4x each — and
    # none below the band of the committed recording.  A fallback (no
    # compiled backend on this host) skips that lane's gate by design.
    for key, floor in (("migrep", 5.0), ("rnuma", 4.0),
                       ("rnuma_migrep", 4.0), ("hysteresis", 4.0)):
        kernel = md.get(key, {}).get("kernel", {})
        if "speedup_vs_batched" not in kernel:
            print(f"miss-dense {key} kernel: fell back "
                  f"({kernel.get('fallback_reason', 'no record')}) — gate "
                  "skipped")
            continue
        got = kernel["speedup_vs_batched"]
        need = floor * (1 - tolerance)
        print(f"miss-dense {key} kernel ({kernel.get('backend')}) vs "
              f"batched: x{got:.2f} at {kernel['refs_per_s']:,} refs/s "
              f"(gate >= x{need:.2f})")
        if got < need:
            _fail(failures, f"{key} kernel speedup over batched fell "
                            f"below the {floor:g}x floor")
        cur_kernel = (current.get("miss_dense", {}).get(key, {})
                      .get("kernel", {}).get("speedup_vs_batched"))
        if cur_kernel and got < cur_kernel * (1 - tolerance):
            _fail(failures, f"{key} kernel speedup regressed below the "
                            "committed band")

    # 4. warm shared-memory workers must not lose to the cold path.  Both
    # sides are fresh best-of-two wall clocks (no committed anchor), so
    # the margin is doubled to keep small shared CI machines from
    # flaking the build.
    sw = measured["sweep_jobs2"]
    print(f"jobs=2 sweep: warm {sw['warm_shm_s']}s vs cold "
          f"{sw['cold_npz_s']}s (x{sw['warm_speedup']})")
    if sw["warm_shm_s"] > sw["cold_npz_s"] * (1 + 2 * tolerance):
        _fail(failures, "warm shared-memory sweep slower than the cold npz "
                        "path")

    # 5. hot-set band vs the committed current recording
    cur_hot = current.get("hot_set", {}).get("speedup_vs_legacy")
    hot = measured["hot_set"]["speedup_vs_legacy"]
    if cur_hot:
        need = cur_hot * (1 - tolerance)
        print(f"hot-set speedup vs legacy: {hot:.2f} "
              f"(recorded {cur_hot:.2f}; gate >= {need:.2f})")
        if hot < need:
            _fail(failures, "hot-set batched speedup regressed")
    else:
        print(f"hot-set speedup vs legacy: {hot:.2f} (no recording)")

    # 6. streaming overhead: a file-served run may cost at most 10% over
    # the in-memory run of the same trace (both sides fresh wall clocks,
    # so the tolerance band widens the fixed gate rather than anchoring
    # to a committed number)
    stream = measured.get("streaming")
    if stream:
        limit = 1.10 * (1 + tolerance)
        print(f"streaming overhead vs in-memory: x{stream['overhead']:.3f} "
              f"(gate <= x{limit:.3f})")
        if stream["overhead"] > limit:
            _fail(failures, "file-streamed run exceeded the 10% overhead "
                            "budget over the in-memory run")

    # 7. cold-store checkpointing overhead: a sweep writing every result
    # into a fresh ResultStore may cost at most 10% over the same sweep
    # without a store (fixed gate widened by the tolerance band, same
    # shape as gate 6).  The warm number is informational: it is a
    # replay, not a simulation.
    store = measured.get("store")
    if store:
        limit = 1.10 * (1 + tolerance)
        print(f"cold-store sweep overhead vs no-store: "
              f"x{store['overhead']:.3f} (gate <= x{limit:.3f}; warm "
              f"replay x{store['warm_ratio']:.3f})")
        if store["overhead"] > limit:
            _fail(failures, "cold-store sweep exceeded the 10% overhead "
                            "budget over the storeless sweep")
        if store["store_hits"] != store["runs"]:
            _fail(failures, "warm store pass recomputed runs that were "
                            "already stored")

    for msg in failures:
        print(msg, file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", action="store_true",
                      help="measure and rewrite the `current` section of "
                           "BENCH_engine.json")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on regression vs the committed "
                           "BENCH_engine.json")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SCALE",
                                                     "1.0")),
                        help="workload scale factor (default: "
                             "REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per measurement (median)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="relative tolerance band for --check "
                             "(default 0.2)")
    parser.add_argument("--file", type=Path, default=BENCH_FILE,
                        help="benchmark record file (default: "
                             "BENCH_engine.json)")
    args = parser.parse_args(argv)

    recorded = {}
    if args.file.exists():
        recorded = json.loads(args.file.read_text())

    measured = measure_all(args.scale, args.repeats)
    print(json.dumps(measured, indent=2))

    if args.record:
        recorded["schema"] = 5
        recorded["current"] = {
            "scale": args.scale,
            **measured,
        }
        args.file.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"recorded -> {args.file}")
        return 0
    return check(measured, recorded, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
