#!/usr/bin/env python
"""Calibration helper: print Figure-5-style and Table-4-style numbers.

Not part of the public API — used while tuning the synthetic workload
parameters so the reproduced shapes track the paper (see EXPERIMENTS.md).

Usage::

    python scripts/calibrate.py [app ...] [--scale S] [--systems a,b,c]
"""

from __future__ import annotations

import argparse
import time

from repro import base_config, get_workload, run_experiment
from repro.workloads import list_workloads

DEFAULT_SYSTEMS = ("perfect", "ccnuma", "mig", "rep", "migrep",
                   "rnuma", "rnuma-inf")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("apps", nargs="*", default=[])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--systems", type=str, default=",".join(DEFAULT_SYSTEMS))
    args = parser.parse_args()

    apps = args.apps or list(list_workloads())
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    cfg = base_config(seed=args.seed)

    for app in apps:
        trace = get_workload(app, machine=cfg.machine, scale=args.scale,
                             seed=args.seed)
        print(f"=== {app}  accesses={trace.total_accesses()}")
        baseline = None
        for system in systems:
            t0 = time.time()
            res = run_experiment(trace, system, cfg)
            dt = time.time() - t0
            if system == "perfect":
                baseline = res.execution_time
            norm = res.execution_time / baseline if baseline else float("nan")
            ops = res.per_node_page_ops()
            print(f"  {system:<10s} norm {norm:5.2f}  "
                  f"remote {res.stats.per_node_remote_misses():8.0f}  "
                  f"capconf {res.stats.per_node_capacity_conflict():8.0f}  "
                  f"mig {ops['migrations']:6.1f} rep {ops['replications']:6.1f} "
                  f"reloc {ops['relocations']:7.1f}  ({dt:.1f}s)")


if __name__ == "__main__":
    main()
