#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md by running every experiment harness.

Usage::

    python scripts/make_experiments_md.py [--scale 0.5] [--seed 0]
                                          [--output EXPERIMENTS.md]

At the default scale the full run takes several minutes (it simulates
every (application, system) pair of Figures 5-8 and Table 4 plus the
ablations); use ``--scale 0.2 --apps lu,radix`` for a quick smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.report import build_report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--apps", type=str, default=None,
                        help="comma-separated application subset")
    parser.add_argument("--output", type=str,
                        default=str(Path(__file__).resolve().parent.parent
                                    / "EXPERIMENTS.md"))
    args = parser.parse_args()

    apps = ([a.strip() for a in args.apps.split(",") if a.strip()]
            if args.apps else None)

    def progress(stage: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] running {stage} ...", flush=True)

    report = build_report(scale=args.scale, seed=args.seed, apps=apps,
                          progress=progress)
    Path(args.output).write_text(report.to_markdown(), encoding="utf-8")

    checks = report.all_checks()
    passed = sum(1 for c in checks if c.passed)
    print(f"wrote {args.output}: {passed}/{len(checks)} shape checks passed "
          f"({report.elapsed_seconds:.0f}s)")
    for check in checks:
        if not check.passed:
            print(f"  FAIL: {check.claim}\n        measured {check.measured}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
