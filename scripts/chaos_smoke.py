#!/usr/bin/env python
"""CI chaos leg: prove the sweep-robustness invariants end to end.

Two checks, both runnable locally:

``python scripts/chaos_smoke.py chaos``
    Runs a figure5 sweep at ``jobs=2`` with crash+hang+error injectors
    afflicting a large fraction of worker runs and asserts the
    ``ResultSet`` rows are bit-identical to a fault-free run, with the
    recoveries visible in the runner counters.

``python scripts/chaos_smoke.py kill-resume``
    Launches a journaled sweep in a subprocess, SIGKILLs it mid-flight,
    reruns it with ``--resume`` to completion, then reruns once more and
    asserts zero runs were re-executed (everything served from the
    journal).

Exit code 0 means the invariants held.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

APPS = ["lu"]
SCALE = "0.05"


def _clean_env() -> dict:
    env = dict(os.environ)
    for var in ("REPRO_FAULTS", "REPRO_FAULTS_SEED", "REPRO_FAULTS_ATTEMPTS",
                "REPRO_FAULTS_HANG_S", "REPRO_JOBS"):
        env.pop(var, None)
    return env


def check_chaos() -> int:
    from repro.experiments.runner import SweepRunner
    from repro.experiments.scenario import run_scenario

    clean = run_scenario("figure5", apps=APPS, scale=float(SCALE))

    os.environ["REPRO_FAULTS"] = "crash=0.25,hang=0.15,error=0.15"
    os.environ["REPRO_FAULTS_HANG_S"] = "60"
    with SweepRunner(jobs=2, run_timeout=10.0, backoff=0.05) as runner:
        faulted = run_scenario("figure5", apps=APPS, scale=float(SCALE),
                               runner=runner)
        stats = runner.stats.as_dict()
    del os.environ["REPRO_FAULTS"]

    print("runner counters under injection:", json.dumps(stats))
    recoveries = stats["retries"] + stats["crashes"] + stats["timeouts"] \
        + stats["run_errors"]
    if recoveries == 0:
        print("FAIL: injection produced no faults (rates too low?)")
        return 1
    if faulted.rows != clean.rows:
        print("FAIL: faulted ResultSet differs from the fault-free run")
        return 1
    print(f"OK: {len(faulted.rows)} rows bit-identical under injection "
          f"({recoveries} recoveries)")
    return 0


def check_kill_resume() -> int:
    env = _clean_env()
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "sweep.jsonl"
        out_json = Path(tmp) / "out.json"
        argv = [sys.executable, "-m", "repro", "exp", "figure5",
                "--apps", ",".join(APPS), "--scale", SCALE, "--jobs", "2",
                "--journal", str(journal), "--json", str(out_json)]

        # 1) start a journaled sweep and SIGKILL it mid-flight (as soon
        # as the journal shows progress, so the kill lands mid-sweep)
        victim = subprocess.Popen(argv, env=env, cwd=tmp,
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() and journal.stat().st_size > 0:
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            print(f"killed mid-flight (journal: "
                  f"{journal.stat().st_size if journal.exists() else 0} bytes)")
        else:
            # tiny sweeps can finish before the kill lands; the resume
            # half of the check still proves the journal contract
            print("sweep finished before the kill; continuing with resume")

        # 2) resume to completion
        rc = subprocess.run(argv + ["--resume"], env=env, cwd=tmp).returncode
        if rc != 0:
            print(f"FAIL: resumed sweep exited {rc}")
            return 1
        first = json.loads(out_json.read_text())

        # 3) resume again: everything must come from the journal
        rc = subprocess.run(argv + ["--resume"], env=env, cwd=tmp).returncode
        if rc != 0:
            print(f"FAIL: second resume exited {rc}")
            return 1
        second = json.loads(out_json.read_text())
        runner = second.get("runner") or {}
        print("second-resume counters:", json.dumps(runner))
        if runner.get("runs") != 0:
            print(f"FAIL: resume re-executed {runner.get('runs')} runs")
            return 1
        if runner.get("journal_hits", 0) <= 0:
            print("FAIL: resume did not report journal hits")
            return 1
        if second["rows"] != first["rows"]:
            print("FAIL: resumed rows differ")
            return 1
    print("OK: kill-resume recomputed zero completed runs")
    return 0


def main() -> int:
    if len(sys.argv) != 2 or sys.argv[1] not in ("chaos", "kill-resume"):
        print(__doc__)
        return 2
    if sys.argv[1] == "chaos":
        return check_chaos()
    return check_kill_resume()


if __name__ == "__main__":
    sys.exit(main())
