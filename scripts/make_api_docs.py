#!/usr/bin/env python
"""Generate docs/api.md from the public surface of :mod:`repro`.

A pdoc-style walk over ``repro.__all__``: every exported name gets a
section with its signature and full docstring; classes additionally list
their public methods and properties (signature plus the docstring's
summary paragraph).  The output is deterministic — fixed ordering, no
memory addresses, no timestamps — so the checked-in ``docs/api.md`` can
be diff-checked in CI::

    python scripts/make_api_docs.py          # rewrite docs/api.md
    python scripts/make_api_docs.py --check  # exit 1 when out of date

Run from the repository root (the script resolves paths relative to
itself, so any working directory works).
"""

from __future__ import annotations

import argparse
import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402  (path set up above)

OUT_PATH = REPO_ROOT / "docs" / "api.md"

HEADER = """\
# `repro` API reference

Auto-generated from docstrings by `scripts/make_api_docs.py` — do not
edit by hand (CI diff-checks this file against a fresh generation).
Names appear in `repro.__all__` order, the order the package's module
docstring introduces them in.
"""

_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def _scrub(text: str) -> str:
    """Remove memory addresses so repeated runs are byte-identical."""
    return _ADDRESS.sub("0x...", text)


def _signature(obj: object) -> str:
    try:
        return _scrub(str(inspect.signature(obj)))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "(...)"


def _doc(obj: object) -> str:
    return inspect.cleandoc(getattr(obj, "__doc__", None) or "")


def _summary(obj: object) -> str:
    """First paragraph of the docstring, joined to one line."""
    doc = _doc(obj)
    first = doc.split("\n\n", 1)[0]
    return " ".join(line.strip() for line in first.splitlines())


def _anchor(heading: str) -> str:
    """GitHub-style anchor slug for a heading text."""
    slug = heading.lower().replace(" ", "-")
    return re.sub(r"[^a-z0-9_-]", "", slug)


def _class_members(cls: type):
    """Public methods/properties worth documenting, alphabetically."""
    members = []
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_") or not _doc(member):
            continue
        if isinstance(member, property):
            members.append((name, "property", "", _summary(member)))
        elif isinstance(member, (staticmethod, classmethod)):
            func = member.__func__
            members.append((name, "method", _signature(func), _summary(func)))
        elif inspect.isfunction(member):
            members.append((name, "method", _signature(member),
                            _summary(member)))
    return members


def _render_entry(name: str, obj: object) -> str:
    lines = []
    if inspect.isclass(obj):
        kind = "exception" if issubclass(obj, BaseException) else "class"
        lines.append(f"## {kind} `{name}`\n")
        if kind == "class" and not issubclass(obj, type):
            lines.append(f"```python\n{name}{_signature(obj)}\n```\n")
        doc = _doc(obj)
        if doc:
            lines.append(doc + "\n")
        members = _class_members(obj)
        if members:
            lines.append("### Members\n")
            for mname, mkind, sig, summary in members:
                shown = f"`{mname}{sig}`" if mkind == "method" else f"`{mname}`"
                lines.append(f"- {shown} ({mkind}) — {summary}")
            lines.append("")
    elif inspect.isfunction(obj):
        lines.append(f"## function `{name}`\n")
        lines.append(f"```python\n{name}{_signature(obj)}\n```\n")
        doc = _doc(obj)
        if doc:
            lines.append(doc + "\n")
    else:
        lines.append(f"## data `{name}`\n")
        value = _scrub(repr(obj))
        if len(value) > 200:
            value = value[:200] + "..."
        lines.append(f"```python\n{name} = {value}\n```\n")
        doc = _doc(type(obj))
        if doc and type(obj).__module__.startswith("repro"):
            lines.append(_summary(type(obj)) + "\n")
    return "\n".join(lines)


def generate() -> str:
    """Build the full Markdown document as a string."""
    names = [n for n in repro.__all__ if n != "__version__"]
    parts = [HEADER]
    parts.append("## Contents\n")
    parts.extend(f"- [`{name}`](#{_anchor(_kind_prefix(name))})"
                 for name in names)
    parts.append("")
    for name in names:
        parts.append(_render_entry(name, getattr(repro, name)))
    text = "\n".join(parts)
    return text.rstrip() + "\n"


def _kind_prefix(name: str) -> str:
    obj = getattr(repro, name)
    if inspect.isclass(obj):
        kind = ("exception" if issubclass(obj, BaseException) else "class")
    elif inspect.isfunction(obj):
        kind = "function"
    else:
        kind = "data"
    return f"{kind} {name}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when docs/api.md is stale "
                             "instead of rewriting it")
    args = parser.parse_args(argv)
    text = generate()
    if args.check:
        current = OUT_PATH.read_text(encoding="utf-8") if OUT_PATH.exists() else ""
        if current != text:
            print("docs/api.md is out of date; run "
                  "`python scripts/make_api_docs.py`", file=sys.stderr)
            return 1
        print("docs/api.md is up to date")
        return 0
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(text, encoding="utf-8")
    print(f"wrote {OUT_PATH} ({len(text.splitlines())} lines, "
          f"{len(repro.__all__) - 1} public names)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
