"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the experiment harnesses and the analysis tools without
writing any Python:

=====================  ====================================================
command                 what it does
=====================  ====================================================
``list``                list workloads, systems, placements, decision
                        policies and scenarios (``--json`` for
                        machine-readable output)
``run``                 run one (workload, system) pair and print a summary
``exp``                 run any registered scenario (``repro exp figure5``,
                        ``repro exp sweep-page-cache``, or one registered
                        by user code) with axis overrides
``figure5`` .. ``figure8``  regenerate one of the paper's figures
``table1`` .. ``table4``    regenerate one of the paper's tables
``sweep``               run one of the predefined parameter sweeps
``analyze``             sharing-pattern analysis of a workload trace
``trace``               out-of-core trace files: ``gen`` (generate a
                        workload straight to disk), ``import`` (convert
                        tab-separated or valgrind-lackey recordings),
                        ``info`` and ``verify``
``clean-shm``           unlink shared-memory trace segments orphaned by
                        dead repro processes
``store``               inspect the durable result store: ``ls``, ``verify``,
                        ``gc``, ``export``
``serve``               run the persistent sweep service (a warm daemon on a
                        Unix socket that dedupes and caches sweeps for any
                        number of ``repro exp --service`` clients)
=====================  ====================================================

``repro exp`` composes with both: ``--store PATH`` checkpoints every
completed run into a durable SQLite store (a second invocation — even in
a new process — replays from it without simulating), and ``--service
SOCKET`` submits the scenario to a running ``repro serve`` daemon
instead of executing locally.

Trace files plug back into every other command: ``repro exp <scenario>
--apps file:/path/to/trace.rpt`` streams the file through a scenario
without registering anything.

The figure/table commands are legacy spellings that delegate to the same
scenario machinery as ``exp`` (keeping their historical output and export
shapes); ``repro exp <scenario>`` is the generic path and renders/exports
every scenario — including user-registered ones — through one code path
(:mod:`repro.stats.export`).

Every command accepts ``--scale`` (workload size multiplier), ``--seed``
and, where meaningful, ``--apps`` / ``--systems`` selections.  Results can
be exported with ``--csv PATH`` / ``--json PATH`` (and, for ``exp``,
``--markdown PATH``) in addition to the plain-text table on stdout.
"""

from __future__ import annotations

import argparse
import json as _json
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.sharing import analyze_trace
from repro.analysis.sweeps import (
    SweepResult,
    migrep_threshold_sweep,
    network_latency_sweep,
    page_cache_sweep,
    placement_sweep,
    policy_sweep,
    rnuma_threshold_sweep,
)
from repro.config import SimulationConfig, base_config
from repro.core.decisions import POLICY_NAMES, apply_policy
from repro.core.factory import SYSTEM_NAMES
from repro.engine import ENGINE_NAMES
from repro.experiments import figure5, figure6, figure7, figure8
from repro.experiments import table1, table2, table3, table4
from repro.experiments.runner import SweepRunner
from repro.experiments.store import (
    STORE_ENV_VAR,
    ResultStore,
    StoreError,
    describe_key,
    dumps_export,
)
from repro.experiments.scenario import (
    ResultSet,
    Scenario,
    default_render,
    run_scenario,
)
from repro.kernel.placement import PLACEMENT_NAMES
from repro.registry import SCENARIOS, UnknownNameError
from repro.stats.export import (
    export_resultset,
    figure_to_rows,
    render_resultset,
    write_csv,
    write_json,
)
from repro.stats.plotting import grouped_bar_chart
from repro.workloads import get_workload, list_workloads


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _add_common(parser: argparse.ArgumentParser, *, apps: bool = True,
                systems: bool = False, runner: bool = True) -> None:
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    if runner:
        parser.add_argument("--jobs", "-j", type=int, default=None,
                            help="worker processes for independent runs "
                                 "(default: REPRO_JOBS or 1)")
        parser.add_argument("--engine", choices=ENGINE_NAMES, default=None,
                            help="simulation engine (default: batched, or "
                                 "REPRO_ENGINE)")
    parser.add_argument("--csv", type=str, default=None,
                        help="also write the result rows to this CSV file")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the result data to this JSON file")
    parser.add_argument("--chart", action="store_true",
                        help="render figure data as an ASCII bar chart")
    if apps:
        parser.add_argument("--apps", type=_csv_list, default=None,
                            help="comma-separated application subset")
    if systems:
        parser.add_argument("--systems", type=_csv_list, default=None,
                            help="comma-separated system subset")


def _export(args: argparse.Namespace, rows: Sequence[Dict[str, object]],
            data: object) -> None:
    if args.csv:
        write_csv(rows, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        write_json(data, args.json)
        print(f"wrote {args.json}")


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------


def _registry_listing() -> Dict[str, List[str]]:
    """Current contents of every open registry (plus the engines)."""
    return {
        "workloads": list(list_workloads()),
        "systems": list(SYSTEM_NAMES),
        "placements": list(PLACEMENT_NAMES),
        "policies": list(POLICY_NAMES),
        "scenarios": list(SCENARIOS.names()),
        "engines": list(ENGINE_NAMES),
    }


def _cmd_list(args: argparse.Namespace) -> int:
    listing = _registry_listing()
    if getattr(args, "json", False):
        print(_json.dumps(listing, indent=2))
        return 0
    print("workloads: " + ", ".join(listing["workloads"]))
    print("systems:   " + ", ".join(listing["systems"]))
    print("placement: " + ", ".join(listing["placements"]))
    print("policies:  " + ", ".join(listing["policies"]))
    print("scenarios: " + ", ".join(listing["scenarios"]))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = base_config(seed=args.seed).with_placement(args.placement)
    if getattr(args, "policy", None):
        cfg = apply_policy(cfg, args.policy)
    trace = get_workload(args.app, machine=cfg.machine, scale=args.scale,
                         seed=args.seed)
    with _make_runner(args) as runner:
        results = runner.run_systems(trace, [args.system], cfg)
    baseline = results["perfect"].execution_time
    res = results[args.system]
    summary = res.summary()
    summary["normalized_time"] = round(res.execution_time / baseline, 3)
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        print(f"{key:<{width}}  {value}")
    _export(args, [summary], summary)
    return 0


def _default_store(args: argparse.Namespace) -> Optional[str]:
    """``--store`` if given, else the ``REPRO_STORE`` environment default."""
    explicit = getattr(args, "store", None)
    if explicit:
        return explicit
    return os.environ.get(STORE_ENV_VAR) or None


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    kwargs = {}
    if getattr(args, "journal", None):
        kwargs["journal"] = args.journal
        kwargs["resume"] = bool(getattr(args, "resume", False))
    if getattr(args, "retries", None) is not None:
        kwargs["retries"] = args.retries
    if getattr(args, "run_timeout", None) is not None:
        kwargs["run_timeout"] = args.run_timeout
    store = _default_store(args)
    if store:
        kwargs["store"] = store
    return SweepRunner(jobs=getattr(args, "jobs", None),
                       engine=getattr(args, "engine", None), **kwargs)


# -- the generic scenario command -------------------------------------------


def _render_scenario(scenario: Scenario, rs: ResultSet) -> str:
    """Plain-text rendering: the scenario's renderer or the generic table.

    A scenario's custom renderer may assume the full declared axes (e.g.
    table4's needs all three systems); when an ``--apps``/``--systems``
    override leaves it short of rows, fall back to the generic rendering
    rather than failing the command.
    """
    if scenario.renderer is not None:
        try:
            return scenario.renderer(rs)
        except Exception:
            pass
    return default_render(rs)


def _policy_configs(scenario: Scenario, policy: str):
    """The scenario's config axis with every entry forced to ``policy``.

    Entries may be ready configurations or ``seed -> config`` factories;
    both are mapped through :func:`repro.core.decisions.apply_policy`
    (which selects the name only for the roles the family supports) so
    ``repro exp <scenario> --policy competitive`` reruns any scenario
    under the named decision policy.

    Scenarios whose config axis *already* selects policies (the axis
    keys are policy names, e.g. ``policy-adaptivity``/``sweep-policy``)
    are rejected: forcing one policy would collapse their axis into
    identical configs still labeled with the original policy names —
    a mislabeled, self-normalized table.
    """
    from repro.registry import POLICIES
    if any(isinstance(key, str) and key in POLICIES
           for key in scenario.configs):
        raise ValueError(
            f"scenario {scenario.name!r} already compares decision "
            "policies on its config axis; rerun without --policy (or use "
            "`repro sweep policy --values ...` to pick the set)")
    def apply(entry):
        if isinstance(entry, SimulationConfig):
            return apply_policy(entry, policy)
        return lambda seed, e=entry: apply_policy(e(seed), policy)
    return {key: apply(entry) for key, entry in scenario.configs.items()}


def _engine_label(prof: dict) -> str:
    """Lane label for one run: engine, kernel backend, or fallback."""
    engine = prof.get("engine", "?")
    if engine == "kernel":
        return f"kernel:{prof.get('backend', '?')}"
    if prof.get("requested_engine") == "kernel":
        return "kernel>batched"
    return engine


def _promo_label(prof: dict) -> str:
    """Promotion-lane label: the mode, with on/total phases if adaptive."""
    mode = prof.get("promotion_mode")
    if mode is None:  # pre-mode profile (plain bool)
        return "on" if prof.get("promotion_enabled") else "off"
    if mode != "adaptive":
        return mode
    decisions = prof.get("phase_promotions") or []
    n_on = sum(1 for d in decisions if d.get("promotion"))
    return f"ad:{n_on}/{len(decisions)}"


def _render_profile(runner: SweepRunner, rs: ResultSet) -> str:
    """Engine per-lane breakdown + runner counters for ``exp --profile``."""
    stats = rs.runner_stats or runner.stats.as_dict()
    kinds = stats.get("bail_kinds") or {}
    lines = ["runner: " + "  ".join(f"{k}={v}" for k, v in stats.items()
                                    if k != "bail_kinds")]
    lines.append("bails:  " + "  ".join(f"{k}={v}" for k, v in kinds.items())
                 + f"  total={sum(kinds.values())}")
    if runner.stats.shm_error_messages:
        lines.append("shm errors:")
        lines += [f"  {msg}" for msg in runner.stats.shm_error_messages]
    profs = [(r.workload, r.system, r.stats.engine_profile)
             for r in runner.iter_results()
             if r.stats.engine_profile is not None]
    if not profs:
        lines.append("(no engine profiles: the runs used the legacy engine)")
        return "\n".join(lines)
    header = (f"{'app':<12} {'system':<14} {'engine':<15} {'promo':<8} "
              f"{'refs':>9} {'fast':>9} {'promoted':>9} {'demoted':>8} "
              f"{'residual':>9} {'wall_s':>8} {'rss_mb':>7} {'strm_mb':>8}")
    lines += [header, "-" * len(header)]
    totals = {"references": 0, "fast": 0, "promoted": 0, "demoted": 0,
              "residual": 0, "wall_s": 0.0}
    peak_rss_kb = 0
    streamed = 0
    fallbacks = []
    for app, system_name, prof in profs:
        rss_kb = int(prof.get("peak_rss_kb") or 0)
        run_streamed = int(prof.get("bytes_streamed") or 0)
        lines.append(
            f"{app:<12} {system_name:<14} {_engine_label(prof):<15} "
            f"{_promo_label(prof):<8} {prof['references']:>9} "
            f"{prof['fast']:>9} {prof['promoted']:>9} {prof['demoted']:>8} "
            f"{prof['residual']:>9} {prof['wall_s']:>8.3f} "
            f"{rss_kb / 1024:>7.1f} {run_streamed / (1 << 20):>8.1f}")
        for k in totals:
            totals[k] += prof[k]
        peak_rss_kb = max(peak_rss_kb, rss_kb)
        streamed += run_streamed
        reason = prof.get("fallback_reason")
        if reason:
            fallbacks.append(f"  {app}/{system_name}: {reason}")
    lines.append(
        f"{'total':<12} {'':<14} {'':<15} {'':<8} {totals['references']:>9} "
        f"{totals['fast']:>9} {totals['promoted']:>9} {totals['demoted']:>8} "
        f"{totals['residual']:>9} {totals['wall_s']:>8.3f} "
        f"{peak_rss_kb / 1024:>7.1f} {streamed / (1 << 20):>8.1f}")
    if fallbacks:
        lines.append("kernel fallbacks:")
        lines += fallbacks
    return "\n".join(lines)


def _run_exp(args: argparse.Namespace, name: str):
    """Execute a scenario with the axis overrides given on the CLI.

    Returns ``(result_set, profile_text)``; the profile text is ``None``
    unless ``--profile`` was given.
    """
    policy = getattr(args, "policy", None)
    configs = (_policy_configs(SCENARIOS.resolve(name), policy)
               if policy else None)
    with _make_runner(args) as runner:
        rs = run_scenario(
            name,
            apps=getattr(args, "apps", None),
            systems=getattr(args, "systems", None),
            configs=configs,
            scale=getattr(args, "scale", None),
            seed=getattr(args, "seed", None),
            runner=runner,
        )
        profile = (_render_profile(runner, rs)
                   if getattr(args, "profile", False) else None)
    return rs, profile


def _cmd_clean_shm(args: argparse.Namespace) -> int:
    from repro.workloads.trace_io import cleanup_orphan_segments
    names = cleanup_orphan_segments(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for name in names:
        print(f"{verb} /dev/shm/{name}")
    print(f"{verb} {len(names)} orphaned segment(s)")
    return 0


def _store_path(args: argparse.Namespace) -> Optional[str]:
    path = _default_store(args)
    if not path:
        print("error: no store given (use --store PATH or set "
              f"{STORE_ENV_VAR})", file=sys.stderr)
    return path


def _cmd_store(args: argparse.Namespace) -> int:
    path = _store_path(args)
    if not path:
        return 2
    try:
        store = ResultStore(path)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.store_cmd == "ls":
            rows = store.rows()
            if getattr(args, "json", False):
                print(_json.dumps(rows, indent=2))
                return 0
            header = (f"{'digest':<16} {'system':<14} {'engine':<8} "
                      f"{'workload':<12} {'exec_time':>12} {'bytes':>9} "
                      f"{'wall_s':>7}")
            print(header)
            print("-" * len(header))
            for row in rows:
                print(f"{str(row['digest'])[:16]:<16} {row['system']:<14} "
                      f"{row['engine']:<8} {str(row['workload']):<12} "
                      f"{row['execution_time']:>12} "
                      f"{row['payload_bytes']:>9} "
                      f"{(row['wall_s'] or 0):>7.2f}")
            print(f"{len(rows)} row(s) in {path}")
        elif args.store_cmd == "verify":
            report = store.verify()
            for key in report["corrupt"]:
                print(f"corrupt: {describe_key(key)}")
            print(f"{report['ok']}/{report['rows']} row(s) ok")
            return 0 if not report["corrupt"] else 1
        elif args.store_cmd == "gc":
            removed = store.gc(max_age_s=args.max_age,
                               digests=args.digest or None,
                               everything=args.all,
                               dry_run=args.dry_run)
            verb = "would remove" if args.dry_run else "removed"
            for key in removed:
                print(f"{verb}: {describe_key(key)}")
            print(f"{verb} {len(removed)} row(s)")
        else:   # export
            text = dumps_export(store)
            if args.out:
                with open(args.out, "w") as fh:
                    fh.write(text)
                print(f"wrote {args.out}")
            else:
                print(text)
    finally:
        store.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments.service import ServiceError, SweepService
    store = _default_store(args)
    service = SweepService(args.socket, store=store, jobs=args.jobs,
                           engine=args.engine, retries=args.retries,
                           run_timeout=args.run_timeout)
    where = f"on {args.socket}" + (f" (store: {store})" if store
                                   else " (memory-only: no --store)")
    print(f"repro sweep service listening {where}", flush=True)
    try:
        service.serve_forever()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    return 0


#: ``repro exp`` flags that configure the *local* runner and therefore
#: conflict with ``--service`` (the daemon owns its runner, store and
#: journal; submissions only carry axis overrides).
_SERVICE_INCOMPATIBLE = ("jobs", "engine", "journal", "resume", "retries",
                         "run_timeout", "store", "policy")


def _cmd_exp_service(args: argparse.Namespace,
                     scenario: Scenario) -> int:
    """``repro exp <scenario> --service SOCKET``: submit to a daemon."""
    from repro.experiments.service import ServiceClient, ServiceError
    for flag in _SERVICE_INCOMPATIBLE:
        if getattr(args, flag, None):
            print(f"error: --{flag.replace('_', '-')} configures a local "
                  "runner and cannot be combined with --service (the "
                  "daemon owns the runner; set it up via `repro serve`)",
                  file=sys.stderr)
            return 2
    progress: Dict[str, object] = {}

    def on_event(event: Dict[str, object]) -> None:
        if event.get("event") == "accepted" and event.get("joined"):
            print("joined an identical in-flight submission",
                  file=sys.stderr)
        elif event.get("event") == "progress":
            progress.update(event.get("runner") or {})

    client = ServiceClient(args.service)
    try:
        rs = client.submit(scenario.name,
                           apps=getattr(args, "apps", None),
                           systems=getattr(args, "systems", None),
                           scale=getattr(args, "scale", None),
                           seed=getattr(args, "seed", None),
                           on_event=on_event)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(_render_scenario(scenario, rs))
    if getattr(args, "profile", False) and rs.runner_stats:
        print()
        print("runner: " + "  ".join(f"{k}={v}"
                                     for k, v in rs.runner_stats.items()))
    if args.chart and rs.series and rs.baseline is not None:
        print()
        print(render_resultset(rs, "chart"))
    written = export_resultset(rs, csv_path=args.csv, json_path=args.json,
                               markdown_path=args.markdown)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_exp(args: argparse.Namespace) -> int:
    if getattr(args, "resume", False) and not getattr(args, "journal", None):
        print("error: --resume requires --journal PATH", file=sys.stderr)
        return 2
    if getattr(args, "service", None):
        try:
            scenario = SCENARIOS.resolve(args.scenario)
        except UnknownNameError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _cmd_exp_service(args, scenario)
    try:
        scenario = SCENARIOS.resolve(args.scenario)
        rs, profile = _run_exp(args, scenario.name)
    except UnknownNameError as exc:
        # unknown scenario, or an unknown name in --apps/--systems
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # e.g. --policy on a scenario that already compares policies
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(_render_scenario(scenario, rs))
    if profile is not None:
        print()
        print(profile)
    if args.chart and rs.series and rs.baseline is not None:
        print()
        print(render_resultset(rs, "chart"))
    written = export_resultset(rs, csv_path=args.csv, json_path=args.json,
                               markdown_path=args.markdown)
    for path in written:
        print(f"wrote {path}")
    return 0


# -- legacy figure/table commands (delegate to the scenario machinery) ------


def _figure_command(figure_fn: Callable, renderer: Callable,
                    value_name: str = "normalized_time") -> Callable:
    def cmd(args: argparse.Namespace) -> int:
        kwargs = {"scale": args.scale, "seed": args.seed}
        if args.apps:
            kwargs["apps"] = args.apps
        with _make_runner(args) as runner:
            data = figure_fn(runner=runner, **kwargs)
        print(renderer(data))
        if getattr(args, "chart", False):
            systems = sorted({s for times in data.values() for s in times})
            print()
            print(grouped_bar_chart(data, systems,
                                    title="normalized execution time"))
        _export(args, figure_to_rows(data, value_name=value_name), data)
        return 0
    return cmd


def _cmd_table1(args: argparse.Namespace) -> int:
    matrix = table1.run_table1(scale=max(0.3, args.scale), seed=args.seed)
    print(table1.render_table1(matrix))
    rows = [{"mechanism": mech, "scenario": scen,
             "reduces_misses": cell.reduces_misses}
            for mech, cells in matrix.items() for scen, cell in cells.items()]
    _export(args, rows, rows)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = table2.run_table2()
    print(table2.render_table2(rows))
    _export(args, [vars(r) for r in rows], [vars(r) for r in rows])
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    rows = table3.run_table3()
    print(table3.render_table3(rows))
    _export(args, [vars(r) for r in rows], [vars(r) for r in rows])
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.apps:
        kwargs["apps"] = args.apps
    with _make_runner(args) as runner:
        rows = table4.run_table4(runner=runner, **kwargs)
    print(table4.render_table4(rows))
    flat = [{
        "app": r.app,
        "migrations_per_node": r.migrations_per_node,
        "replications_per_node": r.replications_per_node,
        "relocations_per_node": r.relocations_per_node,
        **{f"misses_{k}": v for k, v in r.misses.items()},
        **{f"capacity_conflict_{k}": v for k, v in r.capacity_conflict.items()},
    } for r in rows]
    _export(args, flat, flat)
    return 0


_SWEEPS: Dict[str, Callable[..., SweepResult]] = {
    "rnuma-threshold": rnuma_threshold_sweep,
    "migrep-threshold": migrep_threshold_sweep,
    "network-latency": network_latency_sweep,
    "page-cache": page_cache_sweep,
    "placement": placement_sweep,
    "policy": policy_sweep,
}

_SWEEP_DEFAULT_VALUES: Dict[str, List[object]] = {
    "rnuma-threshold": [8, 16, 32, 64, 128],
    "migrep-threshold": [200, 400, 800, 1600, 3200],
    "network-latency": [1.0, 2.0, 4.0, 8.0],
    "page-cache": [0.25, 0.5, 1.0, 2.0],
    "placement": None,  # resolved from the live placement registry
    "policy": None,     # resolved from the live policy registry
}


def _parse_sweep_value(sweep: str, text: str) -> object:
    if sweep in ("placement", "policy"):
        return text
    if sweep in ("network-latency", "page-cache"):
        return float(text)
    return int(text)


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep_fn = _SWEEPS[args.sweep]
    apps = args.apps or ["barnes", "lu", "radix"]
    if _SWEEP_DEFAULT_VALUES[args.sweep] is not None:
        default_values = _SWEEP_DEFAULT_VALUES[args.sweep]
    elif args.sweep == "policy":
        default_values = list(POLICY_NAMES)
    else:
        default_values = list(PLACEMENT_NAMES)
    values = ([_parse_sweep_value(args.sweep, v) for v in args.values]
              if args.values else default_values)
    with _make_runner(args) as runner:
        result = sweep_fn(values, apps=apps, scale=args.scale, seed=args.seed,
                          runner=runner)
    rows = result.rows()
    header = f"{result.parameter:<20} {'app':<10} {'system':<10} normalized"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{str(row['value']):<20} {row['app']:<10} {row['system']:<10} "
              f"{row['normalized_time']:.3f}")
    _export(args, rows, rows)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.traces import (
        TraceFileError,
        TraceImportError,
        import_trace_file,
        trace_file_info,
        verify_trace_file,
    )

    try:
        if args.trace_cmd == "gen":
            from repro.workloads.generator import TraceGenerator
            from repro.workloads.splash2.registry import get_spec
            cfg = base_config(seed=args.seed)
            gen = TraceGenerator(get_spec(args.app), cfg.machine,
                                 access_scale=args.scale,
                                 page_scale=args.page_scale, seed=args.seed)
            kwargs = {}
            if args.chunk_refs:
                kwargs["chunk_refs"] = args.chunk_refs
            path = gen.generate_to_file(args.out, **kwargs)
            info = trace_file_info(path)
        elif args.trace_cmd == "import":
            path = import_trace_file(
                args.src, args.out, fmt=args.format, name=args.name,
                block_size=args.block_size, page_size=args.page_size,
                phase_refs=args.phase_refs,
                include_instr=args.include_instr)
            info = trace_file_info(path)
        elif args.trace_cmd == "verify":
            info = verify_trace_file(args.path)
            print(f"ok: {info['path']} ({info['accesses']} refs, "
                  f"{info['chunks']} chunks, digest {info['digest']})")
            return 0
        else:   # info
            info = trace_file_info(args.path)
    except (TraceFileError, TraceImportError, UnknownNameError,
            FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        print(_json.dumps(info, indent=2))
        return 0
    width = max(len(k) for k in info)
    for key, value in info.items():
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    cfg = base_config(seed=args.seed)
    trace = get_workload(args.app, machine=cfg.machine, scale=args.scale,
                         seed=args.seed)
    report = analyze_trace(trace, cfg.machine)
    summary = report.summary()
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        print(f"{key:<{width}}  {value}")
    _export(args, [summary], summary)
    return 0


# ---------------------------------------------------------------------------
# parser assembly
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser.

    Built at invocation time so every ``choices=`` list reflects the
    *current* registries — systems/workloads/scenarios registered by user
    code before calling :func:`main` are accepted.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSM cluster simulator reproducing Lai & Falsafi (SPAA 2000)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list",
        help="list workloads, systems, placements, policies and scenarios")
    list_p.add_argument("--json", action="store_true",
                        help="print the listing as JSON")

    run_p = sub.add_parser("run", help="run one (workload, system) pair")
    run_p.add_argument("app", choices=list_workloads())
    run_p.add_argument("system", choices=SYSTEM_NAMES)
    run_p.add_argument("--placement", choices=PLACEMENT_NAMES,
                       default="first-touch")
    run_p.add_argument("--policy", choices=POLICY_NAMES, default=None,
                       help="decision policy for page operations "
                            "(default: static-threshold)")
    _add_common(run_p, apps=False)

    exp_p = sub.add_parser(
        "exp", help="run a registered scenario (see `repro list`)")
    exp_p.add_argument("scenario",
                       help="scenario name, e.g. figure5 or sweep-page-cache")
    exp_p.add_argument("--scale", type=float, default=None,
                       help="workload scale factor (default: the scenario's)")
    exp_p.add_argument("--seed", type=int, default=None, help="random seed")
    exp_p.add_argument("--apps", type=_csv_list, default=None,
                       help="comma-separated application axis override")
    exp_p.add_argument("--systems", type=_csv_list, default=None,
                       help="comma-separated system axis override")
    exp_p.add_argument("--policy", choices=POLICY_NAMES, default=None,
                       help="run every config of the scenario under this "
                            "decision policy")
    exp_p.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1)")
    exp_p.add_argument("--engine", choices=ENGINE_NAMES, default=None,
                       help="simulation engine (default: batched)")
    exp_p.add_argument("--journal", type=str, default=None,
                       help="checkpoint completed runs to this JSONL file")
    exp_p.add_argument("--resume", action="store_true",
                       help="restore already-journaled runs instead of "
                            "recomputing them (requires --journal)")
    exp_p.add_argument("--retries", type=int, default=None,
                       help="retry budget per run for crashed/hung/failed "
                            "workers (default: REPRO_RETRIES or 3)")
    exp_p.add_argument("--run-timeout", type=float, default=None,
                       help="per-run wall-clock timeout in seconds "
                            "(default: REPRO_RUN_TIMEOUT or none)")
    exp_p.add_argument("--store", type=str, default=None,
                       help="durable result store (SQLite): completed runs "
                            "are checkpointed into it and future sweeps — "
                            "in any process — replay from it (default: "
                            "REPRO_STORE if set)")
    exp_p.add_argument("--service", type=str, default=None,
                       metavar="SOCKET",
                       help="submit the scenario to a running `repro serve` "
                            "daemon on this Unix socket instead of "
                            "executing locally")
    exp_p.add_argument("--csv", type=str, default=None,
                       help="write the flat result rows to this CSV file")
    exp_p.add_argument("--json", type=str, default=None,
                       help="write the full ResultSet to this JSON file")
    exp_p.add_argument("--markdown", type=str, default=None,
                       help="write the rows as a Markdown table to this file")
    exp_p.add_argument("--chart", action="store_true",
                       help="also render an ASCII bar chart")
    exp_p.add_argument("--profile", action="store_true",
                       help="print the engine's per-lane breakdown (fast/"
                            "promoted/demoted/residual reference counts and "
                            "wall time) plus the runner's cache counters")

    for name in ("figure5", "figure6", "figure7", "figure8",
                 "table1", "table2", "table3", "table4"):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        # table1 drives bespoke scenario specs and tables 2/3 are static,
        # so only table4 goes through the SweepRunner
        _add_common(p, apps=name not in ("table1", "table2", "table3"),
                    runner=name not in ("table1", "table2", "table3"))

    sweep_p = sub.add_parser("sweep", help="run a predefined parameter sweep")
    sweep_p.add_argument("sweep", choices=sorted(_SWEEPS))
    sweep_p.add_argument("--values", nargs="*", default=None,
                         help="override the swept values")
    _add_common(sweep_p)

    analyze_p = sub.add_parser("analyze", help="sharing-pattern analysis of a workload")
    analyze_p.add_argument("app", choices=list_workloads())
    _add_common(analyze_p, apps=False)

    trace_p = sub.add_parser(
        "trace", help="generate, import, inspect and verify on-disk "
                      "trace files")
    tsub = trace_p.add_subparsers(dest="trace_cmd", required=True)

    gen_p = tsub.add_parser(
        "gen", help="generate a workload straight into a trace file "
                    "(out-of-core: one phase in memory at a time)")
    gen_p.add_argument("app", choices=list_workloads())
    gen_p.add_argument("out", help="output trace file path (*.rpt)")
    gen_p.add_argument("--scale", type=float, default=0.5,
                       help="workload scale factor (default 0.5)")
    gen_p.add_argument("--page-scale", type=float, default=1.0,
                       help="page-count scale factor (default 1.0)")
    gen_p.add_argument("--seed", type=int, default=0, help="random seed")
    gen_p.add_argument("--chunk-refs", type=int, default=None,
                       help="references per written chunk (default 1M)")

    imp_p = tsub.add_parser(
        "import", help="convert an external recording (tab-separated "
                       "'addr is_write [proc]' or valgrind-lackey "
                       "--trace-mem output) into a trace file")
    imp_p.add_argument("src", help="input text file")
    imp_p.add_argument("out", help="output trace file path (*.rpt)")
    imp_p.add_argument("--format", choices=("tsv", "lackey"), default=None,
                       help="input format (default: sniffed from the input)")
    imp_p.add_argument("--name", type=str, default=None,
                       help="trace name (default: the input's stem)")
    imp_p.add_argument("--block-size", type=int, default=64,
                       help="bytes per block of the recorded addresses "
                            "(default 64)")
    imp_p.add_argument("--page-size", type=int, default=4096,
                       help="bytes per page of the recorded addresses "
                            "(default 4096)")
    imp_p.add_argument("--phase-refs", type=int, default=1_000_000,
                       help="references per synthesized phase/barrier "
                            "(default 1M)")
    imp_p.add_argument("--include-instr", action="store_true",
                       help="lackey: import instruction fetches as reads")

    info_p = tsub.add_parser("info", help="print a trace file's header")
    info_p.add_argument("path")
    info_p.add_argument("--json", action="store_true",
                        help="print the header as JSON")

    verify_p = tsub.add_parser(
        "verify", help="fully scan a trace file, checking every chunk "
                       "digest and the whole-trace digest")
    verify_p.add_argument("path")

    clean_p = sub.add_parser(
        "clean-shm",
        help="unlink shared-memory trace segments orphaned by dead "
             "repro processes")
    clean_p.add_argument("--dry-run", action="store_true",
                         help="list the orphans without removing them")

    store_p = sub.add_parser(
        "store", help="inspect or prune a durable result store")
    store_p.add_argument("--store", type=str, default=None,
                         help=f"store file (default: {STORE_ENV_VAR})")
    ssub = store_p.add_subparsers(dest="store_cmd", required=True)
    ls_p = ssub.add_parser("ls", help="list stored runs (metadata only)")
    ls_p.add_argument("--json", action="store_true",
                      help="print the rows as JSON")
    ssub.add_parser(
        "verify", help="recompute every checksum and unpickle every "
                       "payload; exit 1 if any row is corrupt")
    gc_p = ssub.add_parser("gc", help="delete rows by age or digest prefix")
    gc_p.add_argument("--max-age", type=float, default=None,
                      metavar="SECONDS",
                      help="delete rows older than this many seconds")
    gc_p.add_argument("--digest", action="append", default=None,
                      metavar="PREFIX",
                      help="delete rows whose trace digest starts with "
                           "this hex prefix (repeatable)")
    gc_p.add_argument("--all", action="store_true",
                      help="delete every row")
    gc_p.add_argument("--dry-run", action="store_true",
                      help="report what would be deleted without deleting")
    exp_store_p = ssub.add_parser(
        "export", help="full-fidelity JSON export (metadata + base64 "
                       "payloads)")
    exp_store_p.add_argument("--out", type=str, default=None,
                             help="write to this file instead of stdout")

    serve_p = sub.add_parser(
        "serve", help="run the persistent sweep service on a Unix socket")
    serve_p.add_argument("--socket", type=str, required=True,
                         help="Unix socket path to listen on")
    serve_p.add_argument("--store", type=str, default=None,
                         help="durable result store backing the service "
                              f"(default: {STORE_ENV_VAR}; omit for "
                              "memory-only)")
    serve_p.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS or 1)")
    serve_p.add_argument("--engine", choices=ENGINE_NAMES, default=None,
                         help="simulation engine (default: batched)")
    serve_p.add_argument("--retries", type=int, default=None,
                         help="retry budget per run (default: REPRO_RETRIES "
                              "or 3)")
    serve_p.add_argument("--run-timeout", type=float, default=None,
                         help="per-run wall-clock timeout in seconds")

    return parser


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "list": _cmd_list,
    "run": _cmd_run,
    "exp": _cmd_exp,
    "figure5": _figure_command(figure5.run_figure5, figure5.render_figure5),
    "figure6": _figure_command(figure6.run_figure6, figure6.render_figure6),
    "figure7": _figure_command(figure7.run_figure7, figure7.render_figure7),
    "figure8": _figure_command(figure8.run_figure8, figure8.render_figure8),
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "sweep": _cmd_sweep,
    "analyze": _cmd_analyze,
    "trace": _cmd_trace,
    "clean-shm": _cmd_clean_shm,
    "store": _cmd_store,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
