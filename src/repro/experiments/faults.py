"""Deterministic fault injection for sweep workers.

The supervised :class:`~repro.experiments.runner.SweepRunner` promises
that a sweep survives its own workers dying: crashed or hung runs are
retried on a respawned pool and repeat offenders degrade to safer
execution lanes, with the final :class:`ResultSet` bit-identical to a
fault-free run.  This module provides the *proof harness* for that
invariant — environment-driven injectors that kill, hang or poison a
chosen fraction of worker runs, selected **deterministically** from the
run's trace digest and system name so repeated sweeps fault the exact
same cells.

Injection is configured entirely through the environment (it must reach
pool workers, which inherit the parent's environment):

``REPRO_FAULTS``
    Comma-separated ``kind=rate`` pairs, e.g. ``"crash=0.3,hang=0.1"``.
    Kinds: ``crash`` (the worker process dies via ``os._exit``),
    ``hang`` (the run sleeps until the runner's wall-clock timeout kills
    it) and ``error`` (the run raises :class:`InjectedFault`).  Rates
    are fractions in ``[0, 1]`` of (digest, system) cells afflicted.
``REPRO_FAULTS_SEED``
    Salt mixed into the selection hash (default ``"0"``); varying it
    moves the faults to different cells.
``REPRO_FAULTS_ATTEMPTS``
    How many attempts of an afflicted run fault before it is allowed to
    succeed (default ``1`` — the first attempt faults, the retry runs
    clean).  Set it ``>= retries`` to force the runner all the way down
    the shm → npz → inline degradation ladder.
``REPRO_FAULTS_HANG_S``
    Sleep duration of the ``hang`` injector in seconds (default 3600);
    must exceed the runner's ``run_timeout`` to trigger the kill path.

Injection happens only in the worker entry points (``_execute_shm_run``
/ ``_execute_stored_run`` / ``_execute_file_run``); the runner's inline
degradation lane executes in the supervising process and is never
injected — which is exactly what makes the ladder a safe landing.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

#: Environment variable holding the ``kind=rate`` injection spec.
FAULTS_ENV_VAR = "REPRO_FAULTS"
#: Environment variable salting the deterministic cell selection.
SEED_ENV_VAR = "REPRO_FAULTS_SEED"
#: Environment variable: attempts of an afflicted run that fault.
ATTEMPTS_ENV_VAR = "REPRO_FAULTS_ATTEMPTS"
#: Environment variable: sleep seconds of the ``hang`` injector.
HANG_ENV_VAR = "REPRO_FAULTS_HANG_S"

#: Recognized injector kinds.
FAULT_KINDS = ("crash", "hang", "error")


class InjectedFault(RuntimeError):
    """Raised by the ``error`` injector inside an afflicted worker run."""


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, deterministic fault-injection plan.

    Attributes
    ----------
    rates:
        Mapping of injector kind to afflicted fraction in ``[0, 1]``.
    seed:
        Salt mixed into the selection hash.
    attempts:
        Number of attempts of an afflicted run that fault (attempt
        numbers ``>= attempts`` run clean, so retries converge).
    hang_s:
        Sleep duration of the ``hang`` injector.
    """

    rates: Mapping[str, float]
    seed: str = "0"
    attempts: int = 1
    hang_s: float = 3600.0

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        """Parse the plan from ``environ`` (default ``os.environ``).

        Returns ``None`` when no injection is configured.  Malformed
        entries are ignored rather than crashing the worker — a fault
        injector that faults by accident proves nothing.
        """
        env = os.environ if environ is None else environ
        spec = (env.get(FAULTS_ENV_VAR) or "").strip()
        if not spec:
            return None
        rates: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part or "=" not in part:
                continue
            kind, _, raw = part.partition("=")
            kind = kind.strip().lower()
            if kind not in FAULT_KINDS:
                continue
            try:
                rate = float(raw)
            except ValueError:
                continue
            rates[kind] = min(1.0, max(0.0, rate))
        if not any(rates.values()):
            return None
        try:
            attempts = max(1, int(env.get(ATTEMPTS_ENV_VAR, "1")))
        except ValueError:
            attempts = 1
        try:
            hang_s = max(0.0, float(env.get(HANG_ENV_VAR, "3600")))
        except ValueError:
            hang_s = 3600.0
        return cls(rates=dict(rates), seed=env.get(SEED_ENV_VAR, "0"),
                   attempts=attempts, hang_s=hang_s)

    def decide(self, digest: str, system: str) -> Optional[str]:
        """Injector kind afflicting ``(digest, system)``, or ``None``.

        The decision hashes ``seed|digest|system`` into a uniform value
        in ``[0, 1)`` and walks the kinds in declaration order over
        cumulative rate buckets — deterministic, independent of attempt
        number, worker identity and submission order.
        """
        h = hashlib.blake2b(f"{self.seed}|{digest}|{system}".encode(),
                            digest_size=8)
        u = int.from_bytes(h.digest(), "big") / 2.0 ** 64
        cum = 0.0
        for kind in FAULT_KINDS:
            cum += self.rates.get(kind, 0.0)
            if u < cum:
                return kind
        return None

    def fault_for(self, digest: str, system: str,
                  attempt: int) -> Optional[str]:
        """The fault to inject for this attempt, or ``None`` to run clean."""
        if attempt >= self.attempts:
            return None
        return self.decide(digest, system)


def inject_from_env(digest: str, system: str, attempt: int) -> None:
    """Execute the configured injector for this run, if any.

    Called at the top of the worker entry points.  ``crash`` terminates
    the worker process immediately (``os._exit``, bypassing cleanup — a
    faithful stand-in for OOM kills and segfaults), ``hang`` sleeps for
    the configured duration, ``error`` raises :class:`InjectedFault`.
    """
    plan = FaultPlan.from_env()
    if plan is None:
        return
    kind = plan.fault_for(digest, system, attempt)
    if kind is None:
        return
    if kind == "crash":
        os._exit(99)
    if kind == "hang":
        deadline = time.monotonic() + plan.hang_s
        while time.monotonic() < deadline:
            time.sleep(min(0.2, plan.hang_s))
        return
    raise InjectedFault(
        f"injected fault for {system} run {digest[:12]} (attempt {attempt})")
