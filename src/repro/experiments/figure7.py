"""Figure 7 — sensitivity to network latency.

Section 6.3 re-runs CC-NUMA, CC-NUMA+MigRep and R-NUMA with the network
latency scaled so the remote-to-local access ratio is ~16 (four times the
base system), as in loosely-coupled clusters such as Sequent NUMA-Q.

Expected shape: CC-NUMA degrades the most (it has the most remote
misses), MigRep sits in the middle, and R-NUMA — having eliminated most
remote misses — degrades the least.  Normalisation is against the perfect
CC-NUMA *at the same network latency*, as in the paper.

The experiment is the declarative ``figure7``
:class:`~repro.experiments.scenario.Scenario`, run under the
long-latency configuration of :func:`repro.config.long_latency_config`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.config import SimulationConfig, long_latency_config
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import run_scenario

from repro.stats.report import format_normalized_figure

#: Systems plotted in Figure 7.
FIGURE7_SYSTEMS: tuple[str, ...] = ("ccnuma", "migrep", "rnuma")


def run_figure7_app(app: str, *, config: Optional[SimulationConfig] = None,
                    latency_factor: float = 4.0, scale: float = 1.0,
                    seed: int = 0,
                    runner: Optional[SweepRunner] = None) -> Dict[str, float]:
    """Run one application at the long network latency.

    Returns normalized execution times for the Figure 7 systems.
    """
    cfg = (config if config is not None
           else long_latency_config(seed=seed, factor=latency_factor))
    rs = run_scenario("figure7", apps=(app,), config=cfg, scale=scale,
                      seed=seed, runner=runner)
    return rs.figure_data()[app]


def run_figure7(*, apps: Optional[Sequence[str]] = None,
                latency_factor: float = 4.0, scale: float = 1.0,
                seed: int = 0,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 7 for every application (one parallel batch)."""
    cfg = long_latency_config(seed=seed, factor=latency_factor)
    rs = run_scenario("figure7", apps=apps, config=cfg, scale=scale,
                      seed=seed, runner=runner)
    return rs.figure_data()


def render_figure7(per_app: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 7 data as a plain-text table."""
    return format_normalized_figure(
        "Figure 7: 4x network latency, normalized to perfect CC-NUMA",
        per_app, list(FIGURE7_SYSTEMS))


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_figure7(run_figure7()))


if __name__ == "__main__":  # pragma: no cover
    main()
