"""Figure 7 — sensitivity to network latency.

Section 6.3 re-runs CC-NUMA, CC-NUMA+MigRep and R-NUMA with the network
latency scaled so the remote-to-local access ratio is ~16 (four times the
base system), as in loosely-coupled clusters such as Sequent NUMA-Q.

Expected shape: CC-NUMA degrades the most (it has the most remote
misses), MigRep sits in the middle, and R-NUMA — having eliminated most
remote misses — degrades the least.  Normalisation is against the perfect
CC-NUMA *at the same network latency*, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.config import SimulationConfig, long_latency_config
from repro.experiments.runner import SweepRunner, ensure_runner
from repro.stats.report import format_normalized_figure
from repro.workloads import get_workload, list_workloads

#: Systems plotted in Figure 7.
FIGURE7_SYSTEMS: tuple[str, ...] = ("ccnuma", "migrep", "rnuma")


def run_figure7_app(app: str, *, config: Optional[SimulationConfig] = None,
                    latency_factor: float = 4.0, scale: float = 1.0,
                    seed: int = 0,
                    runner: Optional[SweepRunner] = None) -> Dict[str, float]:
    """Run one application at the long network latency.

    Returns normalized execution times for the Figure 7 systems.
    """
    cfg = (config if config is not None
           else long_latency_config(seed=seed, factor=latency_factor))
    trace = get_workload(app, machine=cfg.machine, scale=scale, seed=seed)
    runner, owned = ensure_runner(runner)
    try:
        results = runner.run_systems(trace, FIGURE7_SYSTEMS, cfg)
    finally:
        if owned:
            runner.close()
    baseline = results["perfect"].execution_time
    return {name: res.execution_time / baseline
            for name, res in results.items() if name != "perfect"}


def run_figure7(*, apps: Optional[Sequence[str]] = None,
                latency_factor: float = 4.0, scale: float = 1.0,
                seed: int = 0,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 7 for every application."""
    app_names = tuple(apps) if apps is not None else list_workloads()
    cfg = long_latency_config(seed=seed, factor=latency_factor)
    run_names = list(dict.fromkeys(["perfect", *FIGURE7_SYSTEMS]))
    runner, owned = ensure_runner(runner)
    try:
        # one batch across all (app, system) pairs: fully parallel under
        # a multi-process runner
        traces = {app: get_workload(app, machine=cfg.machine, scale=scale,
                                    seed=seed) for app in app_names}
        results = iter(runner.map_runs(
            [(traces[app], name, cfg)
             for app in app_names for name in run_names]))
        out = {}
        for app in app_names:
            per_system = {name: next(results) for name in run_names}
            baseline = per_system["perfect"].execution_time
            out[app] = {name: res.execution_time / baseline
                        for name, res in per_system.items()
                        if name != "perfect"}
        return out
    finally:
        if owned:
            runner.close()


def render_figure7(per_app: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 7 data as a plain-text table."""
    return format_normalized_figure(
        "Figure 7: 4x network latency, normalized to perfect CC-NUMA",
        per_app, list(FIGURE7_SYSTEMS))


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_figure7(run_figure7()))


if __name__ == "__main__":  # pragma: no cover
    main()
