"""Figure 5 — base performance comparison.

The paper's Figure 5 plots execution time normalized to perfect CC-NUMA
for seven systems: CC-NUMA, Rep, Mig, MigRep, R-NUMA and R-NUMA-Inf, over
the seven applications.  The expected shape (Section 6.1):

* CC-NUMA averages ~60 % slower than perfect CC-NUMA,
* MigRep improves on CC-NUMA by roughly 20 % on average,
* R-NUMA improves on CC-NUMA by roughly 40 % and is best overall,
* Mig alone *hurts* barnes, lu benefits mainly from Rep,
  ocean/radix have little MigRep opportunity, and cholesky/radix show
  R-NUMA's relocation overhead.

The experiment itself is the declarative ``figure5``
:class:`~repro.experiments.scenario.Scenario` (see
:mod:`repro.experiments.scenarios`); :func:`run_figure5` is kept as a
compatibility shim returning exactly the data it always returned.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.experiments.runner import ExperimentResult, SweepRunner, ensure_runner
from repro.experiments.scenario import run_scenario
from repro.stats.report import format_normalized_figure
from repro.workloads import get_workload

#: Systems plotted in Figure 5, in the paper's legend order.
FIGURE5_SYSTEMS: tuple[str, ...] = (
    "ccnuma", "rep", "mig", "migrep", "rnuma", "rnuma-inf",
)


def run_figure5_app(app: str, *, config: Optional[SimulationConfig] = None,
                    scale: float = 1.0, seed: int = 0,
                    systems: Sequence[str] = FIGURE5_SYSTEMS,
                    runner: Optional[SweepRunner] = None
                    ) -> Dict[str, ExperimentResult]:
    """Run every Figure 5 system (plus the perfect baseline) for one app.

    Unlike :func:`run_figure5` this returns the raw
    :class:`ExperimentResult` objects (callers who only need normalized
    times should run the ``figure5`` scenario instead).
    """
    from repro.config import base_config
    cfg = config if config is not None else base_config(seed=seed)
    trace = get_workload(app, machine=cfg.machine, scale=scale, seed=seed)
    runner, owned = ensure_runner(runner)
    try:
        return runner.run_systems(trace, systems, cfg)
    finally:
        if owned:
            runner.close()


def normalized_times(results: Mapping[str, ExperimentResult]) -> Dict[str, float]:
    """Normalize every system's execution time against the perfect run."""
    baseline = results["perfect"].execution_time
    return {
        name: res.execution_time / baseline
        for name, res in results.items()
        if name != "perfect"
    }


def run_figure5(*, apps: Optional[Sequence[str]] = None,
                config: Optional[SimulationConfig] = None,
                scale: float = 1.0, seed: int = 0,
                systems: Sequence[str] = FIGURE5_SYSTEMS,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 5: normalized execution time per app per system.

    Compatibility shim over ``run_scenario("figure5")``: all (app, system)
    runs are one batch through the :class:`SweepRunner` (parallel across
    processes when the runner has ``jobs > 1``, memoized against repeated
    invocations).
    """
    rs = run_scenario("figure5", apps=apps, systems=systems, config=config,
                      scale=scale, seed=seed, runner=runner)
    return rs.figure_data()


def render_figure5(per_app: Mapping[str, Mapping[str, float]],
                   systems: Sequence[str] = FIGURE5_SYSTEMS) -> str:
    """Render the Figure 5 data as a plain-text table."""
    return format_normalized_figure(
        "Figure 5: execution time normalized to perfect CC-NUMA",
        per_app, list(systems))


def main() -> None:  # pragma: no cover - CLI convenience
    data = run_figure5()
    print(render_figure5(data))


if __name__ == "__main__":  # pragma: no cover
    main()
