"""Run (workload, system) experiments: one-shot helpers and the SweepRunner.

:func:`run_experiment` is the basic entry point: build a machine for a
named system, run a trace through it and wrap the statistics in an
:class:`ExperimentResult`.  Because the paper reports everything
normalized to a perfect CC-NUMA run of the same application,
:func:`run_pair` and :func:`run_systems` bundle the baseline run together
with the systems of interest.

The figure/table/ablation harnesses go through a :class:`SweepRunner`
instead: it executes independent (workload, system, config) runs across
worker *processes* (``--jobs`` on the CLI, ``REPRO_JOBS`` in the
environment) and memoizes results keyed by a digest of the trace content,
the system name and the configuration — so e.g. the perfect-CC-NUMA
baseline of an application is simulated once per sweep, not once per
figure, and re-renders are free.

Parallel dispatch is *zero-copy* with respect to the trace streams: the
runner publishes each distinct trace once into a digest-keyed
shared-memory pool (:class:`SharedTracePool`, via
:func:`repro.workloads.trace_io.trace_to_shm`) and submits only
``(meta, digest, system, config)`` to the pool.  Warm workers attach a
segment the first time they see its digest — one ``mmap``, no
deserialization — and keep it in a per-process cache, so repeated runs
of the same trace cost nothing to ship.  When the platform offers no
shared memory (or ``REPRO_NO_SHM`` is set) the runner falls back to the
digest-keyed on-disk npz store (:class:`TraceStore`): workers then load
a trace the first time they see its digest and cache it per process, so
a figure-sized sweep still pickles no stream arrays at all.

File-backed traces (:class:`repro.workloads.tracefile.StreamingTrace`)
ride their own lane: the trace already *is* a digest-carrying on-disk
artifact, so the runner submits just its path — workers mmap the file
and stream phases out of core, and nothing is ever published to shm or
spilled to npz.  Their content digest comes from the file footer, so
memoization, journaling and resume work without hashing a single stream
byte.

Parallel execution is *supervised*: futures are harvested as they
complete, so one dying worker cannot orphan finished results.  Failures
are classified — worker crash (``BrokenProcessPool``), wall-clock
timeout (the runner kills the hung pool), or an exception raised by the
run itself — and failed runs are retried on a respawned pool with
capped exponential backoff, degrading repeat offenders from the
shared-memory lane to the npz lane to inline execution in the
supervising process (which cannot crash the sweep).  Completed results
can additionally be checkpointed to an append-only
:class:`SweepJournal`, letting an interrupted or killed sweep resume
without recomputing anything (``repro exp --journal/--resume``).  The
deterministic fault injectors in :mod:`repro.experiments.faults` prove
the invariant: a sweep under injected crashes/hangs returns results
bit-identical to a fault-free run.

The memo table itself can be made durable: a content-addressed
:class:`~repro.experiments.store.ResultStore` (``store=`` /
``repro exp --store``) is consulted before any pending run executes and
upserted after, sharing the exact memo/journal key scheme — so a sweep
re-run in a fresh process serves entirely from the store, and the
persistent sweep service (:mod:`repro.experiments.service`) keeps one
warm store shared by every client.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
import weakref
import zlib
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.cluster.machine import Machine
from repro.config import SimulationConfig, base_config
from repro.core.factory import SystemSpec, build_system
from repro.engine import default_engine
from repro.engine.kernel import BAIL_KIND_NAMES
from repro.experiments import faults as _faults
from repro.experiments.store import ResultStore
from repro.stats.counters import MachineStats
from repro.workloads.trace import Trace
from repro.workloads.trace_io import (
    load_trace,
    save_trace,
    trace_from_shm,
    trace_to_shm,
)
from repro.workloads.tracefile import StreamingTrace, trace_digest

#: Environment variable disabling the shared-memory trace pool (any
#: non-empty value): parallel dispatch then falls back to the on-disk
#: npz store with per-worker deserialization.
NO_SHM_ENV_VAR = "REPRO_NO_SHM"

#: Environment variable giving the default retry budget per run.
RETRIES_ENV_VAR = "REPRO_RETRIES"

#: Environment variable giving the default per-run wall-clock timeout in
#: seconds (empty/unset: no timeout).
RUN_TIMEOUT_ENV_VAR = "REPRO_RUN_TIMEOUT"


@dataclass
class ExperimentResult:
    """Results of running one workload under one system configuration."""

    workload: str
    system: str
    config: SimulationConfig
    stats: MachineStats

    # -- headline numbers ---------------------------------------------------------

    @property
    def execution_time(self) -> int:
        """Execution time of the run, in processor cycles."""
        return self.stats.execution_time

    def normalized_time(self, baseline: "ExperimentResult | int | float") -> float:
        """Execution time normalized against ``baseline`` (perfect CC-NUMA)."""
        base = (baseline.execution_time
                if isinstance(baseline, ExperimentResult) else float(baseline))
        if base <= 0:
            raise ValueError("baseline execution time must be positive")
        return self.execution_time / base

    # -- Table 4 style numbers -----------------------------------------------------

    def per_node_page_ops(self) -> Dict[str, float]:
        """Per-node migrations, replications and relocations."""
        return {
            "migrations": self.stats.per_node_migrations(),
            "replications": self.stats.per_node_replications(),
            "relocations": self.stats.per_node_relocations(),
        }

    def per_node_misses(self) -> Dict[str, float]:
        """Per-node overall and capacity/conflict remote misses."""
        return {
            "overall": self.stats.per_node_remote_misses(),
            "capacity_conflict": self.stats.per_node_capacity_conflict(),
        }

    def summary(self) -> Dict[str, object]:
        """Flat dictionary of the headline results (reports and tests)."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "execution_time": self.execution_time,
            "remote_misses": self.stats.total_remote_misses,
            "capacity_conflict_misses": self.stats.total_capacity_conflict_misses,
            "coherence_misses": self.stats.total_coherence_misses,
            "cold_misses": self.stats.total_cold_misses,
            "local_misses": self.stats.total_local_misses,
            "network_messages": self.stats.network_messages,
            "network_bytes": self.stats.network_bytes,
        }
        out.update({f"per_node_{k}": v for k, v in self.per_node_page_ops().items()})
        return out


def run_experiment(trace: Trace, system: Union[str, SystemSpec],
                   config: Optional[SimulationConfig] = None) -> ExperimentResult:
    """Run ``trace`` under ``system`` and return the result.

    ``system`` may be a name (see :data:`repro.core.factory.SYSTEM_NAMES`)
    or an explicit :class:`SystemSpec`; ``config`` defaults to the base
    (reduced-machine, fast-page-op) configuration.
    """
    spec = build_system(system) if isinstance(system, str) else system
    cfg = config if config is not None else base_config()
    machine = Machine(cfg, spec)
    stats = machine.run(trace)
    return ExperimentResult(workload=trace.name, system=spec.name,
                            config=cfg, stats=stats)


def run_pair(trace: Trace, system: Union[str, SystemSpec],
             config: Optional[SimulationConfig] = None,
             baseline: str = "perfect") -> tuple[ExperimentResult, ExperimentResult]:
    """Run ``system`` and the normalisation ``baseline`` on the same trace."""
    base = run_experiment(trace, baseline, config)
    result = run_experiment(trace, system, config)
    return result, base


def run_systems(trace: Trace, systems: Sequence[Union[str, SystemSpec]],
                config: Optional[SimulationConfig] = None,
                baseline: Optional[str] = "perfect"
                ) -> Dict[str, ExperimentResult]:
    """Run several systems on the same trace.

    Returns a mapping from system name to result; when ``baseline`` is not
    None it is included under its own name (so callers can normalize).
    """
    results: Dict[str, ExperimentResult] = {}
    if baseline is not None:
        results[baseline] = run_experiment(trace, baseline, config)
    for system in systems:
        spec = build_system(system) if isinstance(system, str) else system
        if spec.name in results:
            continue
        results[spec.name] = run_experiment(trace, spec, config)
    return results


# ---------------------------------------------------------------------------
# SweepRunner: parallel, memoized execution of independent runs
# ---------------------------------------------------------------------------


#: Environment variable giving the default worker-process count.
JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker processes used when a SweepRunner is built without ``jobs``."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def default_retries() -> int:
    """Retry budget used when a SweepRunner is built without ``retries``."""
    raw = os.environ.get(RETRIES_ENV_VAR, "").strip()
    try:
        return max(0, int(raw)) if raw else 3
    except ValueError:
        return 3


def default_run_timeout() -> Optional[float]:
    """Per-run timeout used when a SweepRunner is built without one."""
    raw = os.environ.get(RUN_TIMEOUT_ENV_VAR, "").strip()
    try:
        value = float(raw) if raw else 0.0
    except ValueError:
        return None
    return value if value > 0 else None


def _trace_digest(trace: Trace) -> str:
    """Content digest of a trace (streams, geometry and phase costs).

    The canonical scheme lives in
    :func:`repro.workloads.tracefile.trace_digest`; traces that already
    carry their digest (a :class:`StreamingTrace` reads it from its file
    footer, where the writer stored the identical hash) skip the stream
    scan entirely.
    """
    carried = getattr(trace, "digest", None)
    if carried:
        return str(carried)
    return trace_digest(trace)


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        peak //= 1024
    return int(peak)


def _execute_run(trace: Trace, system_name: str, cfg: SimulationConfig,
                 engine: str) -> ExperimentResult:
    """Worker entry point: one independent simulation (also used inline).

    The run's ``engine_profile`` (when the engine produces one) is
    annotated with the executing process's peak RSS and, for streamed
    traces, the logical stream bytes this run pulled through the trace —
    the observability behind ``repro exp --profile`` on out-of-core
    sweeps.
    """
    streamed_before = getattr(trace, "bytes_streamed", None)
    machine = Machine(cfg, build_system(system_name))
    stats = machine.run(trace, engine=engine)
    profile = stats.engine_profile
    if isinstance(profile, dict):
        profile["peak_rss_kb"] = _peak_rss_kb()
        if streamed_before is not None:
            profile["bytes_streamed"] = (
                getattr(trace, "bytes_streamed", 0) - streamed_before)
    return ExperimentResult(workload=trace.name, system=system_name,
                            config=cfg, stats=stats)


# ---------------------------------------------------------------------------
# Digest-keyed on-disk trace store (zero-copy parallel dispatch)
# ---------------------------------------------------------------------------


class TraceStore:
    """Digest-keyed on-disk store of traces shared with worker processes.

    Each distinct trace is spilled exactly once, as ``<digest>.npz``
    (written via :func:`repro.workloads.trace_io.save_trace`, whose
    round-trip is bit-exact), into ``root``.  Workers re-load the file on
    first use and cache the trace per process, so submitting N runs of the
    same trace moves its streams across the process boundary zero times —
    only the path string travels.

    Parameters
    ----------
    root:
        Directory for the archives.  ``None`` (the default) creates a
        private temporary directory on first use and removes it on
        :meth:`close`; an explicit directory is reused across runners and
        never deleted.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self._root = Path(root) if root is not None else None
        self._owned = root is None
        self._saved: set = set()
        #: number of archives this store has actually written to disk
        self.spills = 0

    @property
    def root(self) -> Path:
        """The store directory (created on first use)."""
        if self._root is None:
            self._root = Path(tempfile.mkdtemp(prefix="repro-traces-"))
        else:
            self._root.mkdir(parents=True, exist_ok=True)
        return self._root

    def path_for(self, digest: str) -> Path:
        """Path of the archive holding the trace with ``digest``."""
        return self.root / f"{digest}.npz"

    def ensure(self, trace: Trace, digest: str) -> Path:
        """Spill ``trace`` under ``digest`` if not already stored; return its path.

        The archive is written to a temporary name and renamed into place
        so concurrent runners sharing an explicit ``root`` never observe a
        half-written file.
        """
        path = self.path_for(digest)
        if digest not in self._saved:
            if not path.exists():
                # save_trace itself is atomic (tmp + os.replace)
                save_trace(trace, path)
                self.spills += 1
            self._saved.add(digest)
        return path

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Remove the store directory (only when this store created it)."""
        if self._owned and self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None
            self._saved.clear()


#: Per-worker-process LRU cache of traces loaded from a TraceStore.
#: Bounded: map_runs submits runs of the same trace back to back, so a
#: small cache gets the same hit rate as an unbounded one without letting
#: long multi-trace sweeps accumulate every trace in every worker.
_WORKER_TRACES: "Dict[str, Trace]" = {}
_WORKER_TRACE_LIMIT = 4


def _execute_stored_run(trace_path: str, digest: str, system_name: str,
                        cfg: SimulationConfig, engine: str,
                        attempt: int = 0) -> ExperimentResult:
    """Worker entry point taking a stored trace reference instead of arrays."""
    _faults.inject_from_env(digest, system_name, attempt)
    trace = _WORKER_TRACES.pop(digest, None)
    if trace is None:
        trace = load_trace(trace_path)
        while len(_WORKER_TRACES) >= _WORKER_TRACE_LIMIT:
            _WORKER_TRACES.pop(next(iter(_WORKER_TRACES)))
    _WORKER_TRACES[digest] = trace   # re-insert = move to MRU position
    return _execute_run(trace, system_name, cfg, engine)


# ---------------------------------------------------------------------------
# Warm shared-memory workers
# ---------------------------------------------------------------------------


class SharedTracePool:
    """Digest-keyed pool of traces published in shared memory.

    The publishing (runner) process copies each distinct trace once into
    a named ``multiprocessing.shared_memory`` segment; worker processes
    attach by name and rebuild a zero-copy trace
    (:func:`repro.workloads.trace_io.trace_from_shm`), so a run costs one
    ``mmap`` the first time a worker sees a digest and *nothing* after
    that — the per-run npz decompression of the cold path disappears.
    The pool owns the segments: :meth:`close` unlinks them (workers'
    attaches are deregistered from their resource trackers, so nothing
    else ever unlinks a segment) and returns a description of any
    cleanup race it hit instead of swallowing it, so the runner can
    surface the failure in :class:`RunnerStats`.  Worker death never
    leaks a segment held by a *live* publisher; segments orphaned by a
    killed publisher are reclaimed by
    :func:`repro.workloads.trace_io.cleanup_orphan_segments`
    (``repro clean-shm``).
    """

    def __init__(self) -> None:
        self._segments: Dict[str, Tuple[object, Dict[str, object]]] = {}
        #: number of segments this pool has published
        self.segments = 0

    def ensure(self, trace: Trace, digest: str) -> Dict[str, object]:
        """Publish ``trace`` under ``digest`` if new; return its attach meta."""
        entry = self._segments.get(digest)
        if entry is None:
            name = f"repro_{digest[:16]}_{os.getpid()}"
            shm, meta = trace_to_shm(trace, name)
            entry = (shm, meta)
            self._segments[digest] = entry
            self.segments += 1
        return entry[1]

    def close(self) -> List[str]:
        """Unlink every published segment; return cleanup error messages."""
        errors: List[str] = []
        for shm, _meta in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except Exception as exc:  # pragma: no cover - platform races
                errors.append(f"unlink {getattr(shm, 'name', '?')}: "
                              f"{type(exc).__name__}: {exc}")
        self._segments.clear()
        return errors


#: Per-worker cache of shared-memory traces: digest -> (trace, shm).
#: The shm handle must stay referenced while the trace's arrays (views
#: into the segment) are alive; eviction drops both together and lets
#: reference counting tear the mapping down.
_WORKER_SHM: "Dict[str, Tuple[Trace, object]]" = {}
_WORKER_SHM_LIMIT = 4


def _execute_shm_run(meta: Dict[str, object], digest: str, system_name: str,
                     cfg: SimulationConfig, engine: str, attempt: int = 0
                     ) -> Tuple[ExperimentResult, bool]:
    """Worker entry point for shared-memory traces.

    Returns ``(result, attached)`` — ``attached`` is True when this call
    had to map the segment (a cold worker), False when the warm cache
    served it; the runner aggregates these into
    :class:`RunnerStats.shm_attaches` / ``worker_reuse``.
    """
    _faults.inject_from_env(digest, system_name, attempt)
    entry = _WORKER_SHM.pop(digest, None)
    attached = False
    if entry is None:
        trace, shm = trace_from_shm(meta)
        attached = True
        while len(_WORKER_SHM) >= _WORKER_SHM_LIMIT:
            _WORKER_SHM.pop(next(iter(_WORKER_SHM)))
        entry = (trace, shm)
    _WORKER_SHM[digest] = entry   # re-insert = move to MRU position
    return _execute_run(entry[0], system_name, cfg, engine), attached


# ---------------------------------------------------------------------------
# File-backed traces (out-of-core parallel dispatch)
# ---------------------------------------------------------------------------


#: Per-worker cache of open streaming traces, keyed by digest.  An open
#: :class:`StreamingTrace` holds one read-only mmap plus cached phase
#: *views* (not data), so the cache is cheap no matter how large the
#: traces are; keeping it warm preserves the per-phase classification
#: schedules across repeated runs of the same file.
_WORKER_FILES: "Dict[str, StreamingTrace]" = {}
_WORKER_FILE_LIMIT = 4


def _execute_file_run(trace_path: str, digest: str, system_name: str,
                      cfg: SimulationConfig, engine: str,
                      attempt: int = 0) -> Tuple[ExperimentResult, bool]:
    """Worker entry point for file-backed (streaming) traces.

    Only the path string crosses the process boundary — the worker mmaps
    the trace file on first sight of its digest and streams phases from
    it, never materializing the trace.  Returns ``(result, opened)``;
    ``opened`` is True when this call had to open/map the file (a cold
    worker), mirroring the shm lane's attach accounting.
    """
    _faults.inject_from_env(digest, system_name, attempt)
    trace = _WORKER_FILES.pop(digest, None)
    opened = False
    if trace is None:
        trace = StreamingTrace(trace_path)
        opened = True
        while len(_WORKER_FILES) >= _WORKER_FILE_LIMIT:
            _WORKER_FILES.pop(next(iter(_WORKER_FILES)))
    _WORKER_FILES[digest] = trace   # re-insert = move to MRU position
    return _execute_run(trace, system_name, cfg, engine), opened


# ---------------------------------------------------------------------------
# Sweep journal: crash-safe checkpoint of completed results
# ---------------------------------------------------------------------------


#: The memo/journal key: (trace digest, system, config repr, engine).
RunKey = Tuple[str, str, str, str]

#: Journal record format version (bump on incompatible change).
JOURNAL_FORMAT = 1


class SweepJournal:
    """Append-only JSONL checkpoint of completed sweep results.

    Each record is one line — ``{"v": 1, "key": [digest, system, config,
    engine], "result": <base64(zlib(pickle))>}`` — appended and flushed
    as soon as the run is harvested, so a sweep killed at any instant
    loses at most the in-flight runs.  On resume (``resume=True``) the
    journal is parsed leniently: a torn trailing record from a killed
    writer is skipped, everything before it is restored.  Restored
    results pre-populate the owning :class:`SweepRunner`'s memo table,
    so a resumed sweep re-executes **zero** already-completed runs
    (observable as ``RunnerStats.runs == 0`` /
    ``RunnerStats.journal_hits``).

    The journal key is the runner's content-addressed memo key — trace
    digest, system name, canonical config description and engine — so
    resuming is safe across processes and machines: a changed workload,
    config or engine simply misses the journal and recomputes.

    .. note:: records embed pickled :class:`ExperimentResult` objects;
       load journals only from paths you trust, like any pickle.

    Parameters
    ----------
    path:
        The journal file.  Parent directories are created on first
        append.
    resume:
        ``True`` loads existing records into :attr:`loaded`; ``False``
        (the default) truncates any existing file and starts fresh.
    """

    def __init__(self, path: Union[str, Path], *, resume: bool = False) -> None:
        self.path = Path(path)
        self._fh = None
        self.loaded: Dict[RunKey, ExperimentResult] = {}
        if resume:
            self.loaded = self._load()
        elif self.path.exists():
            self.path.unlink()

    def _load(self) -> Dict[RunKey, ExperimentResult]:
        out: Dict[RunKey, ExperimentResult] = {}
        if not self.path.exists():
            return out
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    key = tuple(rec["key"])
                    blob = zlib.decompress(base64.b64decode(rec["result"]))
                    result = pickle.loads(blob)
                except Exception:
                    continue   # torn tail record from a killed writer
                if len(key) == 4 and isinstance(result, ExperimentResult):
                    out[key] = result   # type: ignore[index]
        return out

    def append(self, key: RunKey, result: ExperimentResult) -> None:
        """Checkpoint one completed run (flushed immediately).

        Opening an existing journal for append first *heals* a torn
        tail: when a killed writer left the file without a trailing
        newline, a newline is written before the new record so the torn
        fragment stays isolated on its own line (skipped by the lenient
        loader) instead of corrupting the first record of the resumed
        sweep.
        """
        if self._fh is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            heal = False
            try:
                with open(self.path, "rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    heal = existing.read(1) != b"\n"
            except (OSError, ValueError):
                pass   # missing or empty file: nothing to heal
            self._fh = open(self.path, "a", encoding="utf-8")
            if heal:
                self._fh.write("\n")
        blob = base64.b64encode(zlib.compress(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))).decode("ascii")
        self._fh.write(json.dumps(
            {"v": JOURNAL_FORMAT, "key": list(key), "result": blob}) + "\n")
        self._fh.flush()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying file (appends reopen it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


@dataclass
class RunnerStats:
    """Bookkeeping of a SweepRunner's cache, dispatch and fault behaviour."""

    runs: int = 0           # simulations actually executed
    memo_hits: int = 0      # results served from the memo table
    parallel_runs: int = 0  # runs dispatched to worker processes
    traces_spilled: int = 0  # distinct traces written to the on-disk store
    shm_segments: int = 0   # traces published as shared-memory segments
    shm_attaches: int = 0   # cold worker attaches (one mmap each)
    worker_reuse: int = 0   # parallel runs served by a warm worker's trace
    file_runs: int = 0      # runs dispatched on the file (streaming) lane
    file_maps: int = 0      # cold worker opens of a trace file (one mmap each)
    bytes_streamed: int = 0  # logical stream bytes served from trace files
    peak_rss_kb: int = 0    # max peak RSS observed across executed runs
    kernel_runs: int = 0    # runs executed by the compiled kernel engine
    kernel_fallbacks: int = 0  # kernel requests served by batched fallback
    retries: int = 0        # re-attempts scheduled after a failed run
    crashes: int = 0        # runs charged with killing a worker process
    timeouts: int = 0       # runs killed by the per-run wall-clock timeout
    run_errors: int = 0     # runs whose execution raised an exception
    degradations: int = 0   # lane demotions (shm -> npz -> inline)
    journal_hits: int = 0   # results restored from a resumed journal
    store_hits: int = 0     # pending runs served from the durable store
    store_misses: int = 0   # pending runs the durable store had never seen
    inflight_joins: int = 0  # submissions joined to an identical in-flight
    #                          run (set by the sweep service's deduper)
    shm_errors: int = 0     # shared-memory publish/cleanup failures
    #: kernel bail counts by kind, summed over executed runs — always
    #: carries the full stable key set, even when every count is zero
    bail_kinds: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in BAIL_KIND_NAMES})
    #: the recorded shm failure messages (capped; not part of as_dict)
    shm_error_messages: List[str] = field(default_factory=list)

    _SHM_ERROR_CAP = 16

    def as_dict(self) -> Dict[str, object]:
        """Plain dictionary of the counters (JSON export).

        All values are ints except ``bail_kinds``, a stable
        ``{kind: count}`` dict keyed by :data:`BAIL_KIND_NAMES`.
        """
        return {
            "runs": self.runs,
            "memo_hits": self.memo_hits,
            "parallel_runs": self.parallel_runs,
            "traces_spilled": self.traces_spilled,
            "shm_segments": self.shm_segments,
            "shm_attaches": self.shm_attaches,
            "worker_reuse": self.worker_reuse,
            "file_runs": self.file_runs,
            "file_maps": self.file_maps,
            "bytes_streamed": self.bytes_streamed,
            "peak_rss_kb": self.peak_rss_kb,
            "kernel_runs": self.kernel_runs,
            "kernel_fallbacks": self.kernel_fallbacks,
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "run_errors": self.run_errors,
            "degradations": self.degradations,
            "journal_hits": self.journal_hits,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "inflight_joins": self.inflight_joins,
            "shm_errors": self.shm_errors,
            "bail_kinds": {name: self.bail_kinds.get(name, 0)
                           for name in BAIL_KIND_NAMES},
        }

    def note_profile(self, profile) -> None:
        """Fold one executed run's ``engine_profile`` into the counters."""
        if not isinstance(profile, dict):
            return
        if profile.get("engine") == "kernel":
            self.kernel_runs += 1
            kinds = profile.get("bail_kinds")
            if isinstance(kinds, dict):
                for kind, count in kinds.items():
                    self.bail_kinds[kind] = (
                        self.bail_kinds.get(kind, 0) + int(count))
        elif profile.get("requested_engine") == "kernel":
            self.kernel_fallbacks += 1
        self.bytes_streamed += int(profile.get("bytes_streamed") or 0)
        peak = int(profile.get("peak_rss_kb") or 0)
        if peak > self.peak_rss_kb:
            self.peak_rss_kb = peak

    def note_shm_error(self, message: str) -> None:
        """Record one shared-memory failure (count + capped message list)."""
        self.shm_errors += 1
        if len(self.shm_error_messages) < self._SHM_ERROR_CAP:
            self.shm_error_messages.append(message)


#: Execution lanes of the degradation ladder, safest last.
LANE_SHM = "shm"
LANE_NPZ = "npz"
LANE_INLINE = "inline"

#: Dispatch lane of file-backed (streaming) traces: only the file path
#: travels; workers mmap and stream.  File-backed runs stay on this lane
#: through every retry short of inline — spilling them to shm/npz would
#: materialize the very streams the file format exists to keep on disk.
LANE_FILE = "file"


class SweepRunner:
    """Executes independent (trace, system, config) runs, possibly in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default, or ``REPRO_JOBS`` unset)
        runs everything inline; ``N > 1`` dispatches cache-missing runs of
        a batch to a supervised ``ProcessPoolExecutor``.  Results are
        bit-identical either way — runs are independent and the simulator
        is deterministic — including under worker crashes and timeouts,
        which are retried (see ``retries`` / ``run_timeout``).
    memoize:
        Keep a result table keyed by ``(trace digest, system, config,
        engine)`` so repeated runs (e.g. the per-app perfect baseline
        shared by several figures) are simulated once.
    engine:
        Execution engine for all runs (default: the session default, see
        :mod:`repro.engine`).
    trace_store:
        On-disk trace store used for parallel dispatch (see
        :class:`TraceStore`).  The default builds a private store in a
        temporary directory, used lazily (only when runs are actually
        dispatched to workers) and removed on :meth:`close`.  Pass a
        shared store to reuse spilled traces across runners.
    journal:
        Checkpoint completed results to this :class:`SweepJournal` (or a
        path, opened with ``resume=``).  Restored records pre-populate
        the memo table so a resumed sweep recomputes nothing.
    resume:
        When ``journal`` is a path: load existing records instead of
        truncating the file.
    store:
        A durable content-addressed
        :class:`~repro.experiments.store.ResultStore` (or a path to one,
        opened — and closed — by this runner).  Pending runs consult the
        store before executing (``RunnerStats.store_hits`` /
        ``store_misses``) and completed runs are upserted into it, so
        results survive the process: a sweep re-run against the same
        store in a fresh process executes zero simulations.  When both a
        resumed journal and a store are configured they are reconciled
        first — the store wins on key match, journal-only rows are
        backfilled into the store (see
        :meth:`~repro.experiments.store.ResultStore.reconcile_journal`).
    retries:
        Retry budget per run for crash/timeout/error failures (default
        3, or ``REPRO_RETRIES``).  The final attempts walk the
        degradation ladder: the second-to-last runs through the npz
        lane, the last runs inline in the supervising process.
        ``retries=0`` degenerates to all-inline execution.
    run_timeout:
        Per-run wall-clock timeout in seconds (default none, or
        ``REPRO_RUN_TIMEOUT``).  A run exceeding it has its pool killed
        and is retried like a crash; timeouts are not enforced on the
        inline lane.
    backoff / backoff_cap:
        Base delay and cap of the capped exponential backoff slept
        between retry waves (seconds).

    Use as a context manager (or call :meth:`close`) to release the worker
    pool and the private trace store; a runner with ``jobs=1`` holds no
    pool resources.
    """

    def __init__(self, jobs: Optional[int] = None, *, memoize: bool = True,
                 engine: Optional[str] = None,
                 trace_store: Optional[TraceStore] = None,
                 journal: Optional[Union[str, Path, SweepJournal]] = None,
                 resume: bool = False,
                 store: Optional[Union[str, Path, ResultStore]] = None,
                 retries: Optional[int] = None,
                 run_timeout: Optional[float] = None,
                 backoff: float = 0.25,
                 backoff_cap: float = 4.0) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.engine = engine if engine is not None else default_engine()
        self.memoize = memoize
        self.stats = RunnerStats()
        self.trace_store = trace_store if trace_store is not None else TraceStore()
        self._owns_store = trace_store is None
        self.retries = default_retries() if retries is None else max(0, int(retries))
        self.run_timeout = (default_run_timeout() if run_timeout is None
                            else (float(run_timeout) if run_timeout > 0 else None))
        self.backoff = max(0.0, float(backoff))
        self.backoff_cap = max(0.0, float(backoff_cap))
        self._memo: Dict[RunKey, ExperimentResult] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._trace_keys: Dict[int, str] = {}
        self._shm_pool: Optional[SharedTracePool] = None
        self._shm_broken = False   # platform refused a segment: stay on npz
        if journal is None or isinstance(journal, SweepJournal):
            self.journal = journal
            self._owns_journal = False
        else:
            self.journal = SweepJournal(journal, resume=resume)
            self._owns_journal = True
        if store is None or isinstance(store, ResultStore):
            self.store = store
            self._owns_result_store = False
        else:
            self.store = ResultStore(store)
            self._owns_result_store = True
        # keys restored from a resumed journal: their memo hits count as
        # journal_hits too, so the hit shows up in per-sweep stat deltas
        # (run_scenario reports the delta across its batch, and the
        # preload happens before any batch starts)
        self._journal_keys: Set[RunKey] = set()
        if self.journal is not None and self.journal.loaded:
            for key, result in self.journal.loaded.items():
                self._memo[tuple(key)] = result
            self._journal_keys = set(self._memo)
        # a resumed journal and a durable store can disagree after a torn
        # write: reconcile before the first batch — the store's
        # checksummed rows win on key match (replacing the journal's
        # memo preload), journal-only rows are backfilled into the store
        if self.store is not None and self._journal_keys:
            self.store.reconcile_journal(self.journal)
            for key in self._journal_keys:
                stored = self.store.get(key)
                if stored is not None:
                    self._memo[key] = stored

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool, the shm pool, the store and the journal."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._shm_pool is not None:
            for message in self._shm_pool.close():
                self.stats.note_shm_error(message)
            self._shm_pool = None
        if self._owns_store:
            self.trace_store.close()
        if self.journal is not None and self._owns_journal:
            self.journal.close()
        if self.store is not None and self._owns_result_store:
            self.store.close()

    # -- keys ---------------------------------------------------------------

    def _key(self, trace: Trace, system_name: str,
             cfg: SimulationConfig) -> RunKey:
        # id()-keyed digest cache: sweeps reuse the same trace object for
        # many systems, and hashing the streams repeatedly would dominate.
        # A finalizer drops the entry when the trace dies, so a recycled
        # id() can never serve a stale digest.
        tkey = self._trace_keys.get(id(trace))
        if tkey is None:
            tkey = _trace_digest(trace)
            self._trace_keys[id(trace)] = tkey
            weakref.finalize(trace, self._trace_keys.pop, id(trace), None)
        return (tkey, system_name, repr(sorted(cfg.describe().items())),
                self.engine)

    # -- supervised parallel execution --------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _kill_pool(self) -> None:
        """Forcibly tear down the worker pool (hung or broken workers)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already-dead workers
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor races
            pass

    def _publish_shm(self, trace: Trace, digest: str) -> Optional[Dict[str, object]]:
        """Publish ``trace`` to shared memory; None (and record why) on failure."""
        if self._shm_pool is None:
            self._shm_pool = SharedTracePool()
        before = self._shm_pool.segments
        try:
            meta = self._shm_pool.ensure(trace, digest)
        except Exception as exc:
            self._shm_broken = True
            self.stats.note_shm_error(
                f"publish {digest[:12]}: {type(exc).__name__}: {exc}")
            return None
        self.stats.shm_segments += self._shm_pool.segments - before
        return meta

    def _lane_for(self, attempt: int, prefer_shm: bool) -> str:
        """Execution lane of the degradation ladder for this attempt."""
        if attempt >= self.retries:
            return LANE_INLINE
        if attempt == self.retries - 1 or not prefer_shm:
            return LANE_NPZ
        return LANE_SHM

    def _submit_worker(self, pool: ProcessPoolExecutor, key: RunKey,
                       trace: Trace, name: str, cfg: SimulationConfig,
                       lane: str, attempt: int) -> Tuple[Future, str]:
        """Submit one run to the pool through its lane; returns (future, lane)."""
        digest = key[0]
        if isinstance(trace, StreamingTrace):
            # file-backed traces ship as a path string on every
            # non-inline attempt; shm/npz publication would materialize
            # the streams this lane exists to keep out of core
            fut = pool.submit(_execute_file_run, str(trace.path), digest,
                              name, cfg, self.engine, attempt)
            self.stats.file_runs += 1
            return fut, LANE_FILE
        if lane == LANE_SHM:
            # one failed publication flips _shm_broken; later submits of
            # the same wave reroute silently instead of re-recording it
            meta = (None if self._shm_broken
                    else self._publish_shm(trace, digest))
            if meta is not None:
                fut = pool.submit(_execute_shm_run, meta, digest, name, cfg,
                                  self.engine, attempt)
                return fut, LANE_SHM
            lane = LANE_NPZ   # publication failed: this run rides npz
            self.stats.degradations += 1
        spills_before = self.trace_store.spills
        path = self.trace_store.ensure(trace, digest)
        self.stats.traces_spilled += self.trace_store.spills - spills_before
        fut = pool.submit(_execute_stored_run, str(path), digest, name, cfg,
                          self.engine, attempt)
        return fut, LANE_NPZ

    def _harvest(self, key: RunKey, payload, lane: str) -> ExperimentResult:
        """Fold one completed worker payload into stats + journal."""
        if lane == LANE_SHM:
            result, attached = payload
            if attached:
                self.stats.shm_attaches += 1
            else:
                self.stats.worker_reuse += 1
        elif lane == LANE_FILE:
            result, opened = payload
            if opened:
                self.stats.file_maps += 1
            else:
                self.stats.worker_reuse += 1
        else:
            result = payload
        self.stats.note_profile(result.stats.engine_profile)
        self._journal_append(key, result)
        return result

    def _journal_append(self, key: RunKey, result: ExperimentResult) -> None:
        """Checkpoint one completed run to the journal and the store."""
        if self.journal is not None:
            self.journal.append(key, result)
        if self.store is not None:
            self.store.put(key, result)

    def _run_supervised(self, pending: Dict[RunKey, Tuple[Trace, str,
                                                          SimulationConfig]]
                        ) -> Dict[RunKey, ExperimentResult]:
        """Execute ``pending`` across the worker pool under supervision.

        Futures are harvested as they complete, so results finished
        before a crash are never lost.  Failed runs are classified and
        retried in *waves*: each wave submits everything still missing,
        sleeps a capped exponential backoff first, and walks repeat
        offenders down the lane ladder (shm → npz → inline).  Worker
        crashes break the whole ``ProcessPoolExecutor``; blame is
        assigned to the runs observed executing at the break (or to all
        unharvested runs of the wave when none were observed, which
        guarantees progress), everything else retries for free.  The
        inline lane runs in this process — it cannot crash the sweep,
        and any exception it raises is a genuine simulation error and
        propagates.
        """
        executed: Dict[RunKey, ExperimentResult] = {}
        attempts: Dict[RunKey, int] = {key: 0 for key in pending}
        lanes: Dict[RunKey, str] = {}
        todo: Set[RunKey] = set(pending)
        wave = 0

        def penalize(key: RunKey, penalized: Set[RunKey]) -> None:
            if key in penalized:
                return
            penalized.add(key)
            attempts[key] += 1
            self.stats.retries += 1

        while todo:
            if wave and self.backoff > 0:
                time.sleep(min(self.backoff_cap,
                               self.backoff * (2 ** (wave - 1))))
            wave += 1
            prefer_shm = (not self._shm_broken
                          and not os.environ.get(NO_SHM_ENV_VAR))
            wave_lane: Dict[RunKey, str] = {}
            for key in todo:
                lane = self._lane_for(attempts[key], prefer_shm)
                prev = lanes.get(key)
                if prev is not None and lane != prev:
                    self.stats.degradations += 1
                lanes[key] = lane
                wave_lane[key] = lane

            futures: Dict[Future, RunKey] = {}
            fut_lane: Dict[Future, str] = {}
            pool_keys = [k for k in todo if wave_lane[k] != LANE_INLINE]
            inline_keys = [k for k in todo if wave_lane[k] == LANE_INLINE]
            if pool_keys:
                pool = self._ensure_pool()
                for key in pool_keys:
                    trace, name, cfg = pending[key]
                    try:
                        fut, lane = self._submit_worker(
                            pool, key, trace, name, cfg, wave_lane[key],
                            attempts[key])
                    except BrokenExecutor:
                        # pool died mid-submission: the submitted futures
                        # resolve broken below; the rest retry next wave
                        break
                    futures[fut] = key
                    fut_lane[fut] = lane
                    self.stats.parallel_runs += 1

            # the inline lane executes here, in parallel with the pool
            for key in inline_keys:
                trace, name, cfg = pending[key]
                result = _execute_run(trace, name, cfg, self.engine)
                self.stats.note_profile(result.stats.engine_profile)
                self._journal_append(key, result)
                executed[key] = result
                todo.discard(key)

            penalized: Set[RunKey] = set()
            started: Dict[Future, float] = {}
            broke = False
            not_done: Set[Future] = set(futures)
            while not_done:
                poll = 0.05 if self.run_timeout is not None else 0.25
                done, not_done = wait(not_done, timeout=poll,
                                      return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for fut in not_done:
                    if fut not in started and fut.running():
                        started[fut] = now
                for fut in done:
                    key = futures[fut]
                    try:
                        payload = fut.result()
                    except BrokenExecutor:
                        broke = True   # blame assigned below
                    except Exception as exc:
                        # the run itself raised (e.g. an injected poison
                        # fault or a transient MemoryError): retry it; a
                        # deterministic error resurfaces on the inline
                        # lane and propagates from there
                        self.stats.run_errors += 1
                        penalize(key, penalized)
                        del exc
                    else:
                        executed[key] = self._harvest(key, payload,
                                                      fut_lane[fut])
                        todo.discard(key)
                if broke:
                    break
                if self.run_timeout is not None:
                    expired = [f for f in not_done
                               if f in started
                               and now - started[f] >= self.run_timeout]
                    if expired:
                        for fut in expired:
                            self.stats.timeouts += 1
                            penalize(futures[fut], penalized)
                        broke = True   # surviving runs retry for free
                        break

            if broke:
                self._kill_pool()
                victims = {futures[f] for f in futures} & todo
                observed = ({futures[f] for f in started} & victims) - penalized
                blamed = observed or (victims - penalized)
                for key in blamed:
                    self.stats.crashes += 1
                    penalize(key, penalized)
        return executed

    # -- execution ----------------------------------------------------------

    def run(self, trace: Trace, system: Union[str, SystemSpec],
            config: Optional[SimulationConfig] = None) -> ExperimentResult:
        """Run one (trace, system) pair through the memo table."""
        return self.map_runs([(trace, system, config)])[0]

    def map_runs(self, items: Sequence[Tuple[Trace, Union[str, SystemSpec],
                                             Optional[SimulationConfig]]]
                 ) -> List[ExperimentResult]:
        """Run a batch of independent (trace, system, config) items.

        Cache-missing items are deduplicated and executed — across the
        supervised worker pool when ``jobs > 1`` — and every result lands
        in the memo table (and the journal, when one is attached).  The
        returned list is aligned with ``items``.

        Explicit :class:`SystemSpec` objects (rather than registry names)
        may carry arbitrary protocol factories, so they are executed
        inline and bypass the memo table, the worker pool and the
        journal — a customised spec can never be conflated with the
        registry system of the same name.
        """
        keyed: List[Tuple[Optional[RunKey], Trace,
                          Union[str, SystemSpec], SimulationConfig]] = []
        for trace, system, config in items:
            cfg = config if config is not None else base_config()
            key = (self._key(trace, system, cfg)
                   if isinstance(system, str) else None)
            keyed.append((key, trace, system, cfg))

        pending: Dict[RunKey, Tuple[Trace, str, SimulationConfig]] = {}
        for key, trace, system, cfg in keyed:
            if key is not None and key not in self._memo and key not in pending:
                pending[key] = (trace, system, cfg)

        self.stats.memo_hits += sum(1 for key, *_ in keyed
                                    if key is not None and key in self._memo)
        self.stats.journal_hits += sum(1 for key, *_ in keyed
                                       if key is not None
                                       and key in self._journal_keys)

        # consult the durable store before executing anything: hits are
        # pulled into the memo table (so later batches hit the memo
        # directly), misses execute below and are upserted on harvest
        if self.store is not None and pending:
            for key in list(pending):
                stored = self.store.get(key)
                if stored is not None:
                    self._memo[key] = stored
                    self.stats.store_hits += 1
                    del pending[key]
                else:
                    self.stats.store_misses += 1

        if pending:
            self.stats.runs += len(pending)
            if self.jobs > 1 and len(pending) > 1:
                for key, result in self._run_supervised(pending).items():
                    self._memo[key] = result
            else:
                for key, (trace, name, cfg) in pending.items():
                    result = _execute_run(trace, name, cfg, self.engine)
                    self.stats.note_profile(result.stats.engine_profile)
                    self._memo[key] = result
                    self._journal_append(key, result)

        results = []
        for key, trace, system, cfg in keyed:
            if key is not None:
                results.append(self._memo[key])
            else:
                # explicit SystemSpec: fresh, unmemoized inline run
                self.stats.runs += 1
                machine = Machine(cfg, system)
                stats = machine.run(trace, engine=self.engine)
                self.stats.note_profile(stats.engine_profile)
                results.append(ExperimentResult(workload=trace.name,
                                                system=system.name,
                                                config=cfg, stats=stats))
        if not self.memoize:
            self._memo.clear()
            self._trace_keys.clear()
        return results

    def iter_results(self) -> List[ExperimentResult]:
        """The memoized results accumulated so far (insertion order).

        Used e.g. by ``repro exp --profile`` to aggregate the engines'
        per-lane execution profiles across a scenario's runs.
        """
        return list(self._memo.values())

    def run_systems(self, trace: Trace,
                    systems: Sequence[Union[str, SystemSpec]],
                    config: Optional[SimulationConfig] = None,
                    baseline: Optional[str] = "perfect"
                    ) -> Dict[str, ExperimentResult]:
        """Memoized, batched equivalent of :func:`run_systems`."""
        ordered: List[Union[str, SystemSpec]] = (
            [baseline] if baseline is not None else [])
        names = [baseline] if baseline is not None else []
        for system in systems:
            name = system if isinstance(system, str) else system.name
            if name not in names:
                names.append(name)
                ordered.append(system)
        results = self.map_runs([(trace, system, config)
                                 for system in ordered])
        return dict(zip(names, results))


def ensure_runner(runner: Optional[SweepRunner],
                  **runner_kwargs) -> Tuple[SweepRunner, bool]:
    """Return ``(runner, owned)`` — creating a default one when None.

    Harness entry points accept an optional shared runner; when the caller
    did not supply one, a private runner is created (with
    ``runner_kwargs`` forwarded to :class:`SweepRunner`) and the caller
    is responsible for closing it (``owned`` is True) — use
    ``try/finally`` or the runner's context manager so pools, shm
    segments and the trace store are released even when the harness
    raises mid-sweep.  Passing both a shared runner *and* runner kwargs
    is a conflict and raises ``ValueError``.
    """
    if runner is not None:
        conflicts = {k: v for k, v in runner_kwargs.items() if v}
        if conflicts:
            raise ValueError(
                "cannot combine a shared runner with runner options "
                f"({', '.join(sorted(conflicts))}); configure the "
                "SweepRunner directly instead")
        return runner, False
    return SweepRunner(**runner_kwargs), True
