"""Run (workload, system) experiments: one-shot helpers and the SweepRunner.

:func:`run_experiment` is the basic entry point: build a machine for a
named system, run a trace through it and wrap the statistics in an
:class:`ExperimentResult`.  Because the paper reports everything
normalized to a perfect CC-NUMA run of the same application,
:func:`run_pair` and :func:`run_systems` bundle the baseline run together
with the systems of interest.

The figure/table/ablation harnesses go through a :class:`SweepRunner`
instead: it executes independent (workload, system, config) runs across
worker *processes* (``--jobs`` on the CLI, ``REPRO_JOBS`` in the
environment) and memoizes results keyed by a digest of the trace content,
the system name and the configuration — so e.g. the perfect-CC-NUMA
baseline of an application is simulated once per sweep, not once per
figure, and re-renders are free.

Parallel dispatch is *zero-copy* with respect to the trace streams: the
runner publishes each distinct trace once into a digest-keyed
shared-memory pool (:class:`SharedTracePool`, via
:func:`repro.workloads.trace_io.trace_to_shm`) and submits only
``(meta, digest, system, config)`` to the pool.  Warm workers attach a
segment the first time they see its digest — one ``mmap``, no
deserialization — and keep it in a per-process cache, so repeated runs
of the same trace cost nothing to ship.  When the platform offers no
shared memory (or ``REPRO_NO_SHM`` is set) the runner falls back to the
digest-keyed on-disk npz store (:class:`TraceStore`): workers then load
a trace the first time they see its digest and cache it per process, so
a figure-sized sweep still pickles no stream arrays at all.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.machine import Machine
from repro.config import SimulationConfig, base_config
from repro.core.factory import SystemSpec, build_system
from repro.engine import default_engine
from repro.stats.counters import MachineStats
from repro.workloads.trace import Trace
from repro.workloads.trace_io import (
    load_trace,
    save_trace,
    trace_from_shm,
    trace_to_shm,
)

#: Environment variable disabling the shared-memory trace pool (any
#: non-empty value): parallel dispatch then falls back to the on-disk
#: npz store with per-worker deserialization.
NO_SHM_ENV_VAR = "REPRO_NO_SHM"


@dataclass
class ExperimentResult:
    """Results of running one workload under one system configuration."""

    workload: str
    system: str
    config: SimulationConfig
    stats: MachineStats

    # -- headline numbers ---------------------------------------------------------

    @property
    def execution_time(self) -> int:
        """Execution time of the run, in processor cycles."""
        return self.stats.execution_time

    def normalized_time(self, baseline: "ExperimentResult | int | float") -> float:
        """Execution time normalized against ``baseline`` (perfect CC-NUMA)."""
        base = (baseline.execution_time
                if isinstance(baseline, ExperimentResult) else float(baseline))
        if base <= 0:
            raise ValueError("baseline execution time must be positive")
        return self.execution_time / base

    # -- Table 4 style numbers -----------------------------------------------------

    def per_node_page_ops(self) -> Dict[str, float]:
        """Per-node migrations, replications and relocations."""
        return {
            "migrations": self.stats.per_node_migrations(),
            "replications": self.stats.per_node_replications(),
            "relocations": self.stats.per_node_relocations(),
        }

    def per_node_misses(self) -> Dict[str, float]:
        """Per-node overall and capacity/conflict remote misses."""
        return {
            "overall": self.stats.per_node_remote_misses(),
            "capacity_conflict": self.stats.per_node_capacity_conflict(),
        }

    def summary(self) -> Dict[str, object]:
        """Flat dictionary of the headline results (reports and tests)."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "execution_time": self.execution_time,
            "remote_misses": self.stats.total_remote_misses,
            "capacity_conflict_misses": self.stats.total_capacity_conflict_misses,
            "coherence_misses": self.stats.total_coherence_misses,
            "cold_misses": self.stats.total_cold_misses,
            "local_misses": self.stats.total_local_misses,
            "network_messages": self.stats.network_messages,
            "network_bytes": self.stats.network_bytes,
        }
        out.update({f"per_node_{k}": v for k, v in self.per_node_page_ops().items()})
        return out


def run_experiment(trace: Trace, system: Union[str, SystemSpec],
                   config: Optional[SimulationConfig] = None) -> ExperimentResult:
    """Run ``trace`` under ``system`` and return the result.

    ``system`` may be a name (see :data:`repro.core.factory.SYSTEM_NAMES`)
    or an explicit :class:`SystemSpec`; ``config`` defaults to the base
    (reduced-machine, fast-page-op) configuration.
    """
    spec = build_system(system) if isinstance(system, str) else system
    cfg = config if config is not None else base_config()
    machine = Machine(cfg, spec)
    stats = machine.run(trace)
    return ExperimentResult(workload=trace.name, system=spec.name,
                            config=cfg, stats=stats)


def run_pair(trace: Trace, system: Union[str, SystemSpec],
             config: Optional[SimulationConfig] = None,
             baseline: str = "perfect") -> tuple[ExperimentResult, ExperimentResult]:
    """Run ``system`` and the normalisation ``baseline`` on the same trace."""
    base = run_experiment(trace, baseline, config)
    result = run_experiment(trace, system, config)
    return result, base


def run_systems(trace: Trace, systems: Sequence[Union[str, SystemSpec]],
                config: Optional[SimulationConfig] = None,
                baseline: Optional[str] = "perfect"
                ) -> Dict[str, ExperimentResult]:
    """Run several systems on the same trace.

    Returns a mapping from system name to result; when ``baseline`` is not
    None it is included under its own name (so callers can normalize).
    """
    results: Dict[str, ExperimentResult] = {}
    if baseline is not None:
        results[baseline] = run_experiment(trace, baseline, config)
    for system in systems:
        spec = build_system(system) if isinstance(system, str) else system
        if spec.name in results:
            continue
        results[spec.name] = run_experiment(trace, spec, config)
    return results


# ---------------------------------------------------------------------------
# SweepRunner: parallel, memoized execution of independent runs
# ---------------------------------------------------------------------------


#: Environment variable giving the default worker-process count.
JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker processes used when a SweepRunner is built without ``jobs``."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _trace_digest(trace: Trace) -> str:
    """Content digest of a trace (streams, geometry and phase costs)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(f"{trace.name}|{trace.num_procs}|{len(trace.phases)}".encode())
    for phase in trace.phases:
        h.update(f"|{phase.name}|{phase.compute_per_access}".encode())
        for blocks, writes in zip(phase.blocks, phase.writes):
            # frame each stream with its length so identical bytes split
            # differently across processors cannot collide
            h.update(f"#{len(blocks)}".encode())
            h.update(np.ascontiguousarray(np.asarray(blocks, dtype=np.int64)))
            h.update(np.ascontiguousarray(np.asarray(writes, dtype=np.int8)))
    return h.hexdigest()


def _execute_run(trace: Trace, system_name: str, cfg: SimulationConfig,
                 engine: str) -> ExperimentResult:
    """Worker entry point: one independent simulation (also used inline)."""
    machine = Machine(cfg, build_system(system_name))
    stats = machine.run(trace, engine=engine)
    return ExperimentResult(workload=trace.name, system=system_name,
                            config=cfg, stats=stats)


# ---------------------------------------------------------------------------
# Digest-keyed on-disk trace store (zero-copy parallel dispatch)
# ---------------------------------------------------------------------------


class TraceStore:
    """Digest-keyed on-disk store of traces shared with worker processes.

    Each distinct trace is spilled exactly once, as ``<digest>.npz``
    (written via :func:`repro.workloads.trace_io.save_trace`, whose
    round-trip is bit-exact), into ``root``.  Workers re-load the file on
    first use and cache the trace per process, so submitting N runs of the
    same trace moves its streams across the process boundary zero times —
    only the path string travels.

    Parameters
    ----------
    root:
        Directory for the archives.  ``None`` (the default) creates a
        private temporary directory on first use and removes it on
        :meth:`close`; an explicit directory is reused across runners and
        never deleted.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self._root = Path(root) if root is not None else None
        self._owned = root is None
        self._saved: set = set()
        #: number of archives this store has actually written to disk
        self.spills = 0

    @property
    def root(self) -> Path:
        """The store directory (created on first use)."""
        if self._root is None:
            self._root = Path(tempfile.mkdtemp(prefix="repro-traces-"))
        else:
            self._root.mkdir(parents=True, exist_ok=True)
        return self._root

    def path_for(self, digest: str) -> Path:
        """Path of the archive holding the trace with ``digest``."""
        return self.root / f"{digest}.npz"

    def ensure(self, trace: Trace, digest: str) -> Path:
        """Spill ``trace`` under ``digest`` if not already stored; return its path.

        The archive is written to a temporary name and renamed into place
        so concurrent runners sharing an explicit ``root`` never observe a
        half-written file.
        """
        path = self.path_for(digest)
        if digest not in self._saved:
            if not path.exists():
                tmp = path.with_name(f".{digest}.{os.getpid()}.tmp")
                save_trace(trace, tmp)
                tmp.replace(path)
                self.spills += 1
            self._saved.add(digest)
        return path

    def close(self) -> None:
        """Remove the store directory (only when this store created it)."""
        if self._owned and self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None
            self._saved.clear()


#: Per-worker-process LRU cache of traces loaded from a TraceStore.
#: Bounded: map_runs submits runs of the same trace back to back, so a
#: small cache gets the same hit rate as an unbounded one without letting
#: long multi-trace sweeps accumulate every trace in every worker.
_WORKER_TRACES: "Dict[str, Trace]" = {}
_WORKER_TRACE_LIMIT = 4


def _execute_stored_run(trace_path: str, digest: str, system_name: str,
                        cfg: SimulationConfig, engine: str) -> ExperimentResult:
    """Worker entry point taking a stored trace reference instead of arrays."""
    trace = _WORKER_TRACES.pop(digest, None)
    if trace is None:
        trace = load_trace(trace_path)
        while len(_WORKER_TRACES) >= _WORKER_TRACE_LIMIT:
            _WORKER_TRACES.pop(next(iter(_WORKER_TRACES)))
    _WORKER_TRACES[digest] = trace   # re-insert = move to MRU position
    return _execute_run(trace, system_name, cfg, engine)


# ---------------------------------------------------------------------------
# Warm shared-memory workers
# ---------------------------------------------------------------------------


class SharedTracePool:
    """Digest-keyed pool of traces published in shared memory.

    The publishing (runner) process copies each distinct trace once into
    a named ``multiprocessing.shared_memory`` segment; worker processes
    attach by name and rebuild a zero-copy trace
    (:func:`repro.workloads.trace_io.trace_from_shm`), so a run costs one
    ``mmap`` the first time a worker sees a digest and *nothing* after
    that — the per-run npz decompression of the cold path disappears.
    The pool owns the segments: :meth:`close` unlinks them (workers'
    attaches are deregistered from their resource trackers, so nothing
    else ever unlinks a segment).
    """

    def __init__(self) -> None:
        self._segments: Dict[str, Tuple[object, Dict[str, object]]] = {}
        #: number of segments this pool has published
        self.segments = 0

    def ensure(self, trace: Trace, digest: str) -> Dict[str, object]:
        """Publish ``trace`` under ``digest`` if new; return its attach meta."""
        entry = self._segments.get(digest)
        if entry is None:
            name = f"repro_{digest[:16]}_{os.getpid()}"
            shm, meta = trace_to_shm(trace, name)
            entry = (shm, meta)
            self._segments[digest] = entry
            self.segments += 1
        return entry[1]

    def close(self) -> None:
        """Unlink every published segment."""
        for shm, _meta in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - platform cleanup races
                pass
        self._segments.clear()


#: Per-worker cache of shared-memory traces: digest -> (trace, shm).
#: The shm handle must stay referenced while the trace's arrays (views
#: into the segment) are alive; eviction drops both together and lets
#: reference counting tear the mapping down.
_WORKER_SHM: "Dict[str, Tuple[Trace, object]]" = {}
_WORKER_SHM_LIMIT = 4


def _execute_shm_run(meta: Dict[str, object], digest: str, system_name: str,
                     cfg: SimulationConfig, engine: str
                     ) -> Tuple[ExperimentResult, bool]:
    """Worker entry point for shared-memory traces.

    Returns ``(result, attached)`` — ``attached`` is True when this call
    had to map the segment (a cold worker), False when the warm cache
    served it; the runner aggregates these into
    :class:`RunnerStats.shm_attaches` / ``worker_reuse``.
    """
    entry = _WORKER_SHM.pop(digest, None)
    attached = False
    if entry is None:
        trace, shm = trace_from_shm(meta)
        attached = True
        while len(_WORKER_SHM) >= _WORKER_SHM_LIMIT:
            _WORKER_SHM.pop(next(iter(_WORKER_SHM)))
        entry = (trace, shm)
    _WORKER_SHM[digest] = entry   # re-insert = move to MRU position
    return _execute_run(entry[0], system_name, cfg, engine), attached


@dataclass
class RunnerStats:
    """Bookkeeping of a SweepRunner's cache behaviour."""

    runs: int = 0           # simulations actually executed
    memo_hits: int = 0      # results served from the memo table
    parallel_runs: int = 0  # runs dispatched to worker processes
    traces_spilled: int = 0  # distinct traces written to the on-disk store
    shm_segments: int = 0   # traces published as shared-memory segments
    shm_attaches: int = 0   # cold worker attaches (one mmap each)
    worker_reuse: int = 0   # parallel runs served by a warm worker's trace
    kernel_runs: int = 0    # runs executed by the compiled kernel engine
    kernel_fallbacks: int = 0  # kernel requests served by batched fallback

    def as_dict(self) -> Dict[str, int]:
        """Plain dictionary of the counters (JSON export)."""
        return {
            "runs": self.runs,
            "memo_hits": self.memo_hits,
            "parallel_runs": self.parallel_runs,
            "traces_spilled": self.traces_spilled,
            "shm_segments": self.shm_segments,
            "shm_attaches": self.shm_attaches,
            "worker_reuse": self.worker_reuse,
            "kernel_runs": self.kernel_runs,
            "kernel_fallbacks": self.kernel_fallbacks,
        }

    def note_profile(self, profile) -> None:
        """Fold one executed run's ``engine_profile`` into the counters."""
        if not isinstance(profile, dict):
            return
        if profile.get("engine") == "kernel":
            self.kernel_runs += 1
        elif profile.get("requested_engine") == "kernel":
            self.kernel_fallbacks += 1


class SweepRunner:
    """Executes independent (trace, system, config) runs, possibly in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default, or ``REPRO_JOBS`` unset)
        runs everything inline; ``N > 1`` dispatches cache-missing runs of
        a batch to a ``ProcessPoolExecutor``.  Results are bit-identical
        either way — runs are independent and the simulator is
        deterministic.
    memoize:
        Keep a result table keyed by ``(trace digest, system, config,
        engine)`` so repeated runs (e.g. the per-app perfect baseline
        shared by several figures) are simulated once.
    engine:
        Execution engine for all runs (default: the session default, see
        :mod:`repro.engine`).
    trace_store:
        On-disk trace store used for parallel dispatch (see
        :class:`TraceStore`).  The default builds a private store in a
        temporary directory, used lazily (only when runs are actually
        dispatched to workers) and removed on :meth:`close`.  Pass a
        shared store to reuse spilled traces across runners.

    Use as a context manager (or call :meth:`close`) to release the worker
    pool and the private trace store; a runner with ``jobs=1`` holds no
    resources.
    """

    def __init__(self, jobs: Optional[int] = None, *, memoize: bool = True,
                 engine: Optional[str] = None,
                 trace_store: Optional[TraceStore] = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.engine = engine if engine is not None else default_engine()
        self.memoize = memoize
        self.stats = RunnerStats()
        self.trace_store = trace_store if trace_store is not None else TraceStore()
        self._owns_store = trace_store is None
        self._memo: Dict[Tuple[str, str, str, str], ExperimentResult] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._trace_keys: Dict[int, str] = {}
        self._shm_pool: Optional[SharedTracePool] = None
        self._shm_broken = False   # platform refused a segment: stay on npz

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool, the shm pool and the trace store."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._shm_pool is not None:
            self._shm_pool.close()
            self._shm_pool = None
        if self._owns_store:
            self.trace_store.close()

    # -- keys ---------------------------------------------------------------

    def _key(self, trace: Trace, system_name: str,
             cfg: SimulationConfig) -> Tuple[str, str, str, str]:
        # id()-keyed digest cache: sweeps reuse the same trace object for
        # many systems, and hashing the streams repeatedly would dominate.
        # A finalizer drops the entry when the trace dies, so a recycled
        # id() can never serve a stale digest.
        tkey = self._trace_keys.get(id(trace))
        if tkey is None:
            tkey = _trace_digest(trace)
            self._trace_keys[id(trace)] = tkey
            weakref.finalize(trace, self._trace_keys.pop, id(trace), None)
        return (tkey, system_name, repr(sorted(cfg.describe().items())),
                self.engine)

    # -- execution ----------------------------------------------------------

    def run(self, trace: Trace, system: Union[str, SystemSpec],
            config: Optional[SimulationConfig] = None) -> ExperimentResult:
        """Run one (trace, system) pair through the memo table."""
        return self.map_runs([(trace, system, config)])[0]

    def map_runs(self, items: Sequence[Tuple[Trace, Union[str, SystemSpec],
                                             Optional[SimulationConfig]]]
                 ) -> List[ExperimentResult]:
        """Run a batch of independent (trace, system, config) items.

        Cache-missing items are deduplicated and executed — across the
        worker pool when ``jobs > 1`` — and every result lands in the memo
        table.  The returned list is aligned with ``items``.

        Explicit :class:`SystemSpec` objects (rather than registry names)
        may carry arbitrary protocol factories, so they are executed
        inline and bypass both the memo table and the worker pool — a
        customised spec can never be conflated with the registry system
        of the same name.
        """
        keyed: List[Tuple[Optional[Tuple[str, str, str, str]], Trace,
                          Union[str, SystemSpec], SimulationConfig]] = []
        for trace, system, config in items:
            cfg = config if config is not None else base_config()
            key = (self._key(trace, system, cfg)
                   if isinstance(system, str) else None)
            keyed.append((key, trace, system, cfg))

        pending: Dict[Tuple[str, str, str, str],
                      Tuple[Trace, str, SimulationConfig]] = {}
        for key, trace, system, cfg in keyed:
            if key is not None and key not in self._memo and key not in pending:
                pending[key] = (trace, system, cfg)

        self.stats.memo_hits += sum(1 for key, *_ in keyed
                                    if key is not None and key in self._memo)

        if pending:
            self.stats.runs += len(pending)
            if self.jobs > 1 and len(pending) > 1:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                # zero-copy dispatch: publish each distinct trace once
                # (the digest is the first component of the memo key) as a
                # shared-memory segment the warm workers attach and keep —
                # only (meta, digest, system, config) travels.  When the
                # platform refuses shared memory (or REPRO_NO_SHM is set),
                # spill to the digest-keyed npz store instead and let
                # workers deserialize on first use.
                use_shm = (not self._shm_broken
                           and not os.environ.get(NO_SHM_ENV_VAR))
                store = self.trace_store
                futures = {}
                shm_keys = set()
                for key, (trace, name, cfg) in pending.items():
                    digest = key[0]
                    meta = None
                    if use_shm:
                        if self._shm_pool is None:
                            self._shm_pool = SharedTracePool()
                        before = self._shm_pool.segments
                        try:
                            meta = self._shm_pool.ensure(trace, digest)
                        except Exception:
                            self._shm_broken = True
                            use_shm = False
                        else:
                            self.stats.shm_segments += (
                                self._shm_pool.segments - before)
                    if meta is not None:
                        futures[key] = self._pool.submit(
                            _execute_shm_run, meta, digest, name, cfg,
                            self.engine)
                        shm_keys.add(key)
                    else:
                        spills_before = store.spills
                        path = store.ensure(trace, digest)
                        self.stats.traces_spilled += (store.spills
                                                      - spills_before)
                        futures[key] = self._pool.submit(
                            _execute_stored_run, str(path), digest, name,
                            cfg, self.engine)
                self.stats.parallel_runs += len(futures)
                for key, future in futures.items():
                    if key in shm_keys:
                        result, attached = future.result()
                        if attached:
                            self.stats.shm_attaches += 1
                        else:
                            self.stats.worker_reuse += 1
                        self._memo[key] = result
                    else:
                        self._memo[key] = future.result()
                    self.stats.note_profile(
                        self._memo[key].stats.engine_profile)
            else:
                for key, (trace, name, cfg) in pending.items():
                    result = _execute_run(trace, name, cfg, self.engine)
                    self.stats.note_profile(result.stats.engine_profile)
                    self._memo[key] = result

        results = []
        for key, trace, system, cfg in keyed:
            if key is not None:
                results.append(self._memo[key])
            else:
                # explicit SystemSpec: fresh, unmemoized inline run
                self.stats.runs += 1
                machine = Machine(cfg, system)
                stats = machine.run(trace, engine=self.engine)
                self.stats.note_profile(stats.engine_profile)
                results.append(ExperimentResult(workload=trace.name,
                                                system=system.name,
                                                config=cfg, stats=stats))
        if not self.memoize:
            self._memo.clear()
            self._trace_keys.clear()
        return results

    def iter_results(self) -> List[ExperimentResult]:
        """The memoized results accumulated so far (insertion order).

        Used e.g. by ``repro exp --profile`` to aggregate the engines'
        per-lane execution profiles across a scenario's runs.
        """
        return list(self._memo.values())

    def run_systems(self, trace: Trace,
                    systems: Sequence[Union[str, SystemSpec]],
                    config: Optional[SimulationConfig] = None,
                    baseline: Optional[str] = "perfect"
                    ) -> Dict[str, ExperimentResult]:
        """Memoized, batched equivalent of :func:`run_systems`."""
        ordered: List[Union[str, SystemSpec]] = (
            [baseline] if baseline is not None else [])
        names = [baseline] if baseline is not None else []
        for system in systems:
            name = system if isinstance(system, str) else system.name
            if name not in names:
                names.append(name)
                ordered.append(system)
        results = self.map_runs([(trace, system, config)
                                 for system in ordered])
        return dict(zip(names, results))


def ensure_runner(runner: Optional[SweepRunner]) -> Tuple[SweepRunner, bool]:
    """Return ``(runner, owned)`` — creating a default one when None.

    Harness entry points accept an optional shared runner; when the caller
    did not supply one, a private runner is created and the caller is
    responsible for closing it (``owned`` is True).
    """
    if runner is not None:
        return runner, False
    return SweepRunner(), True
