"""Run one (workload, system) pair and collect results.

:func:`run_experiment` is the single entry point every experiment module,
example and benchmark uses: build a machine for a named system, run a
trace through it and wrap the statistics in an :class:`ExperimentResult`.
Because the paper reports everything normalized to a perfect CC-NUMA run
of the same application, :func:`run_pair` and :func:`run_systems` bundle
the baseline run together with the systems of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.cluster.machine import Machine
from repro.config import SimulationConfig, base_config
from repro.core.factory import SystemSpec, build_system
from repro.stats.counters import MachineStats
from repro.workloads.trace import Trace


@dataclass
class ExperimentResult:
    """Results of running one workload under one system configuration."""

    workload: str
    system: str
    config: SimulationConfig
    stats: MachineStats

    # -- headline numbers ---------------------------------------------------------

    @property
    def execution_time(self) -> int:
        """Execution time of the run, in processor cycles."""
        return self.stats.execution_time

    def normalized_time(self, baseline: "ExperimentResult | int | float") -> float:
        """Execution time normalized against ``baseline`` (perfect CC-NUMA)."""
        base = (baseline.execution_time
                if isinstance(baseline, ExperimentResult) else float(baseline))
        if base <= 0:
            raise ValueError("baseline execution time must be positive")
        return self.execution_time / base

    # -- Table 4 style numbers -----------------------------------------------------

    def per_node_page_ops(self) -> Dict[str, float]:
        """Per-node migrations, replications and relocations."""
        return {
            "migrations": self.stats.per_node_migrations(),
            "replications": self.stats.per_node_replications(),
            "relocations": self.stats.per_node_relocations(),
        }

    def per_node_misses(self) -> Dict[str, float]:
        """Per-node overall and capacity/conflict remote misses."""
        return {
            "overall": self.stats.per_node_remote_misses(),
            "capacity_conflict": self.stats.per_node_capacity_conflict(),
        }

    def summary(self) -> Dict[str, object]:
        """Flat dictionary of the headline results (reports and tests)."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "execution_time": self.execution_time,
            "remote_misses": self.stats.total_remote_misses,
            "capacity_conflict_misses": self.stats.total_capacity_conflict_misses,
            "coherence_misses": self.stats.total_coherence_misses,
            "cold_misses": self.stats.total_cold_misses,
            "local_misses": self.stats.total_local_misses,
            "network_messages": self.stats.network_messages,
            "network_bytes": self.stats.network_bytes,
        }
        out.update({f"per_node_{k}": v for k, v in self.per_node_page_ops().items()})
        return out


def run_experiment(trace: Trace, system: Union[str, SystemSpec],
                   config: Optional[SimulationConfig] = None) -> ExperimentResult:
    """Run ``trace`` under ``system`` and return the result.

    ``system`` may be a name (see :data:`repro.core.factory.SYSTEM_NAMES`)
    or an explicit :class:`SystemSpec`; ``config`` defaults to the base
    (reduced-machine, fast-page-op) configuration.
    """
    spec = build_system(system) if isinstance(system, str) else system
    cfg = config if config is not None else base_config()
    machine = Machine(cfg, spec)
    stats = machine.run(trace)
    return ExperimentResult(workload=trace.name, system=spec.name,
                            config=cfg, stats=stats)


def run_pair(trace: Trace, system: Union[str, SystemSpec],
             config: Optional[SimulationConfig] = None,
             baseline: str = "perfect") -> tuple[ExperimentResult, ExperimentResult]:
    """Run ``system`` and the normalisation ``baseline`` on the same trace."""
    base = run_experiment(trace, baseline, config)
    result = run_experiment(trace, system, config)
    return result, base


def run_systems(trace: Trace, systems: Sequence[Union[str, SystemSpec]],
                config: Optional[SimulationConfig] = None,
                baseline: Optional[str] = "perfect"
                ) -> Dict[str, ExperimentResult]:
    """Run several systems on the same trace.

    Returns a mapping from system name to result; when ``baseline`` is not
    None it is included under its own name (so callers can normalize).
    """
    results: Dict[str, ExperimentResult] = {}
    if baseline is not None:
        results[baseline] = run_experiment(trace, baseline, config)
    for system in systems:
        spec = build_system(system) if isinstance(system, str) else system
        if spec.name in results:
            continue
        results[spec.name] = run_experiment(trace, spec, config)
    return results
