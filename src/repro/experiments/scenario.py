"""Declarative experiment plans: ``Scenario`` → ``run_scenario`` → ``ResultSet``.

Every figure and table of the paper's evaluation — and every ablation this
reproduction adds — is a grid of (application × system × configuration)
simulations normalized against a baseline run.  Earlier revisions spelled
that grid out eight times over in ``figure5.py`` … ``table4.py``; this
module factors the shape into three pieces:

:class:`Scenario`
    a frozen declaration of the grid's axes (apps, systems, configs,
    scales, seeds), its normalisation baseline, and how traces are built.
    The built-in scenarios live in
    :mod:`repro.experiments.scenarios` and are registered in
    :data:`repro.registry.SCENARIOS`; user code registers its own with
    :func:`repro.registry.register_scenario`.

:func:`run_scenario`
    the one executor.  It expands the axes into independent cells,
    submits them as a single batch to a
    :class:`repro.experiments.runner.SweepRunner` (parallel across
    processes, memoized by trace/config digest) and assembles the flat
    result rows.  Runtime keyword arguments override any axis, which is
    what ``repro exp <scenario> --apps … --systems … --scale …`` maps to.

:class:`ResultSet`
    the returned artifact: one flat dictionary per (app, system, config,
    scale, seed) cell carrying execution time, the full miss breakdown,
    page-operation counts and the derived ``normalized_time`` column,
    plus pivot/filter/mean helpers and exporters
    (:mod:`repro.stats.export` renders CSV/JSON/Markdown from this one
    shape).

The legacy ``run_figureN`` / ``run_tableN`` entry points are thin shims
over scenarios declared in :mod:`repro.experiments.scenarios`; they
return bit-identical data to what they produced before the redesign
(enforced by ``tests/test_scenario.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.config import MachineConfig, SimulationConfig, base_config
from repro.experiments.runner import ExperimentResult, SweepRunner, ensure_runner
from repro.registry import SCENARIOS
from repro.workloads import get_workload, list_workloads
from repro.workloads.trace import Trace

#: A config axis entry: a ready configuration or a ``seed -> config`` factory.
ConfigLike = Union[SimulationConfig, Callable[[int], SimulationConfig]]

#: Builds the trace for one cell: ``(app, machine, scale, seed) -> Trace``.
TraceFactory = Callable[[str, MachineConfig, float, int], Trace]


def _default_configs() -> Dict[str, ConfigLike]:
    return {"base": lambda seed: base_config(seed=seed)}


@dataclass(frozen=True)
class ScenarioContext:
    """Resolved axes handed to a static scenario's row builder."""

    apps: Tuple[str, ...]
    scale: float
    seed: int
    configs: Mapping[str, SimulationConfig]


@dataclass(frozen=True)
class Scenario:
    """A declarative experiment plan.

    Attributes
    ----------
    name / title / description:
        Registry key, headline used by renderers, and a one-line summary
        shown by ``repro list``.
    systems:
        System names to run (resolved through the open system registry).
    apps:
        Application names; ``None`` means *all currently registered
        workloads* (resolved at run time, so user registrations join in).
    configs:
        The configuration axis: an ordered mapping from axis key (a
        string for named variants like ``"fast"``/``"slow"``, or any
        value for parameter sweeps) to a :class:`SimulationConfig` or a
        ``seed -> SimulationConfig`` factory.
    scales / seeds:
        Optional extra axes; ``None`` means a single value taken from the
        runtime arguments (``default_scale`` / seed 0).
    baseline:
        System normalized against (``None`` disables normalisation).
    baseline_config:
        Config-axis key the baseline runs under; ``None`` runs the
        baseline under *each* config (per-value normalisation, as the
        sweeps do), a fixed key pins it (Figure 6 normalizes everything
        against the *fast* perfect run).
    trace_factory:
        Overrides trace construction (defaults to
        :func:`repro.workloads.get_workload`); Table 1 uses this to drive
        its synthetic sharing-scenario specs.
    static_rows:
        For scenarios without simulations (Tables 2 and 3): a callable
        producing the result rows directly from a
        :class:`ScenarioContext`.
    renderer:
        Optional ``ResultSet -> str`` plain-text renderer used by the CLI
        (defaults to the generic normalized-figure table).
    """

    name: str
    title: str
    systems: Tuple[str, ...] = ()
    apps: Optional[Tuple[str, ...]] = None
    configs: Mapping[Any, ConfigLike] = field(default_factory=_default_configs)
    scales: Optional[Tuple[float, ...]] = None
    seeds: Optional[Tuple[int, ...]] = None
    default_scale: float = 1.0
    baseline: Optional[str] = "perfect"
    baseline_config: Optional[Any] = None
    trace_factory: Optional[TraceFactory] = None
    static_rows: Optional[Callable[[ScenarioContext], List[Dict[str, object]]]] = None
    renderer: Optional[Callable[["ResultSet"], str]] = None
    description: str = ""

    def with_axes(self, *, apps: Optional[Sequence[str]] = None,
                  systems: Optional[Sequence[str]] = None,
                  configs: Optional[Mapping[Any, ConfigLike]] = None
                  ) -> "Scenario":
        """Return a copy with the given axes replaced (None keeps an axis)."""
        out = self
        if apps is not None:
            out = replace(out, apps=tuple(apps))
        if systems is not None:
            out = replace(out, systems=tuple(systems))
        if configs is not None:
            out = replace(out, configs=dict(configs))
        return out


class ResultSet:
    """Flat result rows of one scenario run, with pivot/export helpers.

    ``rows`` is a list of plain dictionaries — one per executed cell —
    whose columns include the axis values (``app``, ``system``,
    ``config``, ``scale``, ``seed``), the derived ``series`` label and
    ``normalized_time``, and the full measurement set (execution time,
    miss breakdown, page-operation counts, per-node rates).  Baseline
    runs are included with ``is_baseline=True`` so derived tables can
    reach their raw numbers.

    Parameters
    ----------
    scenario / title:
        Name and headline of the scenario that produced the rows.
    rows:
        The flat result rows.
    series:
        Ordered non-baseline series labels (legend order).
    axes:
        The resolved axis values (``{"app": (...), "system": (...)}``).
    baseline:
        Name of the normalisation system, or ``None``.

    Examples
    --------
    >>> rs = ResultSet("demo", "Demo", [
    ...     {"app": "lu", "system": "rnuma", "series": "rnuma",
    ...      "normalized_time": 1.5},
    ...     {"app": "lu", "system": "perfect", "series": "perfect",
    ...      "normalized_time": 1.0, "is_baseline": True},
    ... ], series=("rnuma",), baseline="perfect")
    >>> len(rs)
    2
    >>> rs.only(app="lu", system="rnuma")["normalized_time"]
    1.5
    >>> rs.figure_data()
    {'lu': {'rnuma': 1.5}}
    >>> rs.mean()
    {'rnuma': 1.5}
    """

    def __init__(self, scenario: str, title: str,
                 rows: List[Dict[str, object]], *,
                 series: Tuple[str, ...] = (),
                 axes: Optional[Dict[str, Tuple]] = None,
                 baseline: Optional[str] = None,
                 runner_stats: Optional[Dict[str, int]] = None) -> None:
        self.scenario = scenario
        self.title = title
        self.rows = rows
        self.series = tuple(series)
        self.axes = dict(axes or {})
        self.baseline = baseline
        #: cache/dispatch counters of the SweepRunner that executed the
        #: plan (memo hits, parallel runs, shared-memory attaches, warm
        #: worker reuse) — set by :func:`run_scenario`, ``None`` for
        #: hand-built sets
        self.runner_stats = dict(runner_stats) if runner_stats else None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return (f"ResultSet({self.scenario!r}, {len(self.rows)} rows, "
                f"series={list(self.series)})")

    # -- selection ----------------------------------------------------------

    def filter(self, **selectors: object) -> "ResultSet":
        """Rows matching every ``column=value`` selector, as a new ResultSet.

        Parameters
        ----------
        **selectors:
            Column/value equality constraints, combined with AND.

        Returns
        -------
        ResultSet
            A new set sharing this one's metadata (series, axes,
            baseline) with only the matching rows.

        Examples
        --------
        >>> rs = ResultSet("d", "D", [{"app": "lu"}, {"app": "ocean"}])
        >>> [r["app"] for r in rs.filter(app="lu")]
        ['lu']
        """
        rows = [r for r in self.rows
                if all(r.get(k) == v for k, v in selectors.items())]
        return ResultSet(self.scenario, self.title, rows, series=self.series,
                         axes=self.axes, baseline=self.baseline)

    def only(self, **selectors: object) -> Dict[str, object]:
        """The single row matching the selectors.

        Parameters
        ----------
        **selectors:
            Column/value constraints, as for :meth:`filter`.

        Returns
        -------
        dict
            The one matching row.

        Raises
        ------
        ValueError
            When zero or more than one row matches.

        Examples
        --------
        >>> rs = ResultSet("d", "D", [{"app": "lu"}, {"app": "ocean"}])
        >>> rs.only(app="ocean")
        {'app': 'ocean'}
        >>> rs.only(app="fft")
        Traceback (most recent call last):
            ...
        ValueError: expected exactly one row for {'app': 'fft'}, found 0
        """
        rows = self.filter(**selectors).rows
        if len(rows) != 1:
            raise ValueError(f"expected exactly one row for {selectors}, "
                             f"found {len(rows)}")
        return rows[0]

    # -- pivots -------------------------------------------------------------

    def pivot(self, index: str = "app", columns: str = "series",
              values: str = "normalized_time", *,
              include_baseline: bool = False) -> Dict[object, Dict[object, object]]:
        """Nest rows as ``{index: {column: value}}`` in row order.

        Parameters
        ----------
        index / columns / values:
            Row columns providing the outer key, inner key and cell
            value respectively.
        include_baseline:
            Keep rows flagged ``is_baseline`` (dropped by default).

        Returns
        -------
        dict of dict
            The nested shape; later rows overwrite earlier ones on key
            collisions.

        Examples
        --------
        >>> rs = ResultSet("d", "D", [
        ...     {"app": "lu", "series": "rnuma", "normalized_time": 1.5}])
        >>> rs.pivot()
        {'lu': {'rnuma': 1.5}}
        """
        out: Dict[object, Dict[object, object]] = {}
        for row in self.rows:
            if not include_baseline and row.get("is_baseline"):
                continue
            out.setdefault(row[index], {})[row[columns]] = row[values]
        return out

    def figure_data(self) -> Dict[str, Dict[str, float]]:
        """The ``{app: {series: normalized_time}}`` shape the figures use."""
        return self.pivot("app", "series", "normalized_time")

    def mean(self, values: str = "normalized_time",
             by: str = "series") -> Dict[object, float]:
        """Mean of ``values`` grouped by ``by``.

        Parameters
        ----------
        values:
            Numeric column to average; rows where it is ``None`` are
            skipped, as are baseline rows.
        by:
            Grouping column.

        Returns
        -------
        dict
            ``{group: arithmetic mean}`` in first-seen group order.
        """
        sums: Dict[object, List[float]] = {}
        for row in self.rows:
            if row.get("is_baseline") or row.get(values) is None:
                continue
            sums.setdefault(row[by], []).append(float(row[values]))  # type: ignore[arg-type]
        return {k: sum(v) / len(v) for k, v in sums.items()}

    def normalize(self, column: str = "execution_time",
                  against: str = "perfect",
                  into: str = "renormalized") -> "ResultSet":
        """Derive ``into`` = ``column`` / baseline ``column`` per cell group.

        Parameters
        ----------
        column:
            Numeric column to normalize (any metric column works, e.g.
            ``"remote_misses"``).
        against:
            System name providing the denominator row.
        into:
            Name of the derived column added to every row.

        Returns
        -------
        ResultSet
            A new set whose rows carry the extra column (``None`` when
            no denominator row exists for a group).

        The baseline row is the one whose ``system`` equals ``against``
        within the same (app, scale, seed) group and — when the scenario
        pinned a baseline config — the same config axis value.
        """
        base: Dict[Tuple, float] = {}
        for row in self.rows:
            if row.get("system") == against:
                base[(row.get("app"), row.get("scale"), row.get("seed"),
                      row.get("config"))] = float(row[column])  # type: ignore[arg-type]
        rows = []
        for row in self.rows:
            key = (row.get("app"), row.get("scale"), row.get("seed"),
                   row.get("config"))
            if key not in base:  # fall back to any config of the group
                candidates = [v for k, v in base.items() if k[:3] == key[:3]]
                denom = candidates[0] if candidates else None
            else:
                denom = base[key]
            new = dict(row)
            new[into] = (float(row[column]) / denom  # type: ignore[arg-type]
                         if denom else None)
            rows.append(new)
        return ResultSet(self.scenario, self.title, rows, series=self.series,
                         axes=self.axes, baseline=self.baseline)

    # -- export (one code path, in repro.stats.export) ----------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary: metadata, axes and the flat rows."""
        out = {
            "scenario": self.scenario,
            "title": self.title,
            "series": list(self.series),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "rows": self.rows,
        }
        if self.runner_stats is not None:
            out["runner"] = self.runner_stats
        return out

    def to_csv(self) -> str:
        """Render the rows as CSV text."""
        from repro.stats.export import render_resultset
        return render_resultset(self, "csv")

    def to_json(self) -> str:
        """Render :meth:`as_dict` as JSON text."""
        from repro.stats.export import render_resultset
        return render_resultset(self, "json")

    def to_markdown(self) -> str:
        """Render the rows as a GitHub-flavoured Markdown table."""
        from repro.stats.export import render_resultset
        return render_resultset(self, "markdown")


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def default_render(rs: ResultSet) -> str:
    """Generic plain-text rendering of a ResultSet.

    Normalized scenarios render as the classic per-app/per-series table
    (in the ResultSet's actual series order, so axis overrides degrade
    gracefully); scenarios without series render their rows as Markdown.
    This is the fallback used by ``repro exp`` when a scenario declares
    no ``renderer`` (or its renderer cannot handle the selected axes).
    """
    if rs.series and rs.baseline is not None:
        from repro.stats.report import format_normalized_figure
        return format_normalized_figure(rs.title, rs.figure_data(),
                                        list(rs.series))
    from repro.stats.export import render_resultset
    return rs.title + "\n\n" + render_resultset(rs, "markdown")


def get_scenario(name: str) -> Scenario:
    """Resolve a registered scenario by name.

    Parameters
    ----------
    name:
        A registered scenario name (case-insensitive).

    Returns
    -------
    Scenario
        The registered (frozen) scenario.

    Raises
    ------
    repro.registry.UnknownNameError
        A ``ValueError`` with a did-you-mean suggestion.

    Examples
    --------
    >>> get_scenario("figure5").baseline
    'perfect'
    """
    return SCENARIOS.resolve(name)


def list_scenarios() -> Tuple[str, ...]:
    """Names of every registered scenario, in registration order.

    Returns
    -------
    tuple of str
        Built-in scenarios first, then user registrations.

    Examples
    --------
    >>> "figure5" in list_scenarios()
    True
    """
    return SCENARIOS.names()


def _metrics(res: ExperimentResult) -> Dict[str, object]:
    """The measurement columns of one cell's row."""
    s = res.stats
    return {
        "execution_time": s.execution_time,
        "remote_misses": s.total_remote_misses,
        "capacity_conflict_misses": s.total_capacity_conflict_misses,
        "coherence_misses": s.total_coherence_misses,
        "cold_misses": s.total_cold_misses,
        "local_misses": s.total_local_misses,
        "network_messages": s.network_messages,
        "network_bytes": s.network_bytes,
        "migrations": s.total_migrations,
        "replications": s.total_replications,
        "relocations": s.total_relocations,
        "num_nodes": s.num_nodes,
        "per_node_migrations": s.per_node_migrations(),
        "per_node_replications": s.per_node_replications(),
        "per_node_relocations": s.per_node_relocations(),
        "per_node_remote_misses": s.per_node_remote_misses(),
        "per_node_capacity_conflict": s.per_node_capacity_conflict(),
    }


def run_scenario(scenario: Union[str, Scenario], *,
                 apps: Optional[Sequence[str]] = None,
                 systems: Optional[Sequence[str]] = None,
                 configs: Optional[Mapping[Any, ConfigLike]] = None,
                 config: Optional[SimulationConfig] = None,
                 scale: Optional[float] = None,
                 seed: Optional[int] = None,
                 runner: Optional[SweepRunner] = None,
                 journal: Optional[Union[str, "Path"]] = None,
                 resume: bool = False,
                 store: Optional[Union[str, "Path"]] = None) -> ResultSet:
    """Execute ``scenario`` and return its :class:`ResultSet`.

    Parameters
    ----------
    scenario:
        A registered name or a :class:`Scenario` object.
    apps / systems:
        Replace the corresponding axis values.
    configs:
        Replace the whole config axis (mapping of axis key to a
        :class:`~repro.config.SimulationConfig` or ``seed -> config``
        factory).
    config:
        Replace the *value* of a single-entry config axis (the common
        "run the same plan under this configuration" case).
    scale / seed:
        Pin the scale/seed axes to one value.
    runner:
        A shared :class:`~repro.experiments.runner.SweepRunner`; a
        private one is created (and closed) when omitted.
    journal / resume:
        Checkpoint completed runs to this
        :class:`~repro.experiments.runner.SweepJournal` path, and (with
        ``resume=True``) restore any already-journaled results so an
        interrupted sweep recomputes nothing.  Only valid when the
        scenario creates its own runner — configure a shared runner's
        journal directly.
    store:
        Durable content-addressed result store
        (:class:`~repro.experiments.store.ResultStore` path): pending
        runs are served from the store when it already holds them and
        upserted into it after execution, so a scenario re-run against
        the same store — even in a fresh process — executes zero
        simulations (``runner_stats["store_hits"]``).  Only valid when
        the scenario creates its own runner, like ``journal``.

    Returns
    -------
    ResultSet
        One flat row per executed (app, system, config, scale, seed)
        cell, baseline rows included.

    All cells are submitted to the runner as one batch, so the plan runs
    fully parallel under a multi-process :class:`SweepRunner` and repeated
    cells (e.g. a baseline shared between scenarios) are memoized.
    """
    scn = get_scenario(scenario) if isinstance(scenario, str) else scenario

    app_names: Tuple[str, ...] = (
        tuple(apps) if apps is not None
        else scn.apps if scn.apps is not None
        else tuple(list_workloads()))
    system_names: Tuple[str, ...] = (tuple(systems) if systems is not None
                                     else tuple(scn.systems))
    scales: Tuple[float, ...] = ((scale,) if scale is not None
                                 else scn.scales or (scn.default_scale,))
    seeds: Tuple[int, ...] = ((seed,) if seed is not None
                              else scn.seeds or (0,))

    config_axis: Mapping[Any, ConfigLike]
    if configs is not None:
        config_axis = dict(configs)
    elif config is not None:
        if len(scn.configs) != 1:
            raise ValueError(
                f"scenario {scn.name!r} has {len(scn.configs)} config-axis "
                "entries; pass configs={...} instead of config=")
        config_axis = {next(iter(scn.configs)): config}
    else:
        config_axis = scn.configs
    config_keys = list(config_axis)
    if (scn.baseline is not None and scn.baseline_config is not None
            and scn.baseline_config not in config_axis):
        raise ValueError(
            f"scenario {scn.name!r} normalizes against the "
            f"{scn.baseline_config!r} config, so a configs= override must "
            f"include that key (got: {', '.join(map(repr, config_keys))})")

    # materialize configs per (key, seed)
    def make_cfg(key: Any, seed_value: int) -> SimulationConfig:
        entry = config_axis[key]
        return entry if isinstance(entry, SimulationConfig) else entry(seed_value)

    cfgs: Dict[Tuple[Any, int], SimulationConfig] = {
        (key, sd): make_cfg(key, sd) for sd in seeds for key in config_keys}

    # -- static scenarios (no simulations) ----------------------------------
    if scn.static_rows is not None:
        ctx = ScenarioContext(
            apps=app_names, scale=scales[0], seed=seeds[0],
            configs={key: cfgs[(key, seeds[0])] for key in config_keys})
        rows = [dict(row) for row in scn.static_rows(ctx)]
        return ResultSet(scn.name, scn.title, rows,
                         axes={"app": app_names}, baseline=None)

    multi_config = len(config_keys) > 1

    def series_name(system: str, key: Any) -> str:
        return f"{system}-{key}" if multi_config else str(system)

    # -- expand the axes into unique cells, baseline first per app ----------
    Cell = Tuple[str, str, Any, float, int]   # (app, system, config, scale, seed)
    cells: List[Cell] = []
    seen: set = set()

    def add(app: str, system: str, key: Any, sc: float, sd: int) -> None:
        cell = (app, system, key, sc, sd)
        if cell not in seen:
            seen.add(cell)
            cells.append(cell)

    baseline_keys = ([scn.baseline_config] if scn.baseline_config is not None
                     else config_keys)
    for sd in seeds:
        for sc in scales:
            for app in app_names:
                if scn.baseline is not None:
                    for key in baseline_keys:
                        add(app, scn.baseline, key, sc, sd)
                for key in config_keys:
                    for system in system_names:
                        add(app, system, key, sc, sd)

    # -- build traces (one per distinct (app, scale, seed, machine)) --------
    make_trace = scn.trace_factory or (
        lambda app, machine, sc, sd: get_workload(app, machine=machine,
                                                  scale=sc, seed=sd))
    traces: Dict[Tuple, Trace] = {}

    def trace_for(app: str, key: Any, sc: float, sd: int) -> Trace:
        machine = cfgs[(key, sd)].machine
        tkey = (app, sc, sd, machine)
        if tkey not in traces:
            traces[tkey] = make_trace(app, machine, sc, sd)
        return traces[tkey]

    # -- one batch through the runner ---------------------------------------
    runner, owned = ensure_runner(runner, journal=journal, resume=resume,
                                  store=store)
    try:
        # report only this plan's share of a (possibly shared) runner's
        # counters: the delta across the batch, not the lifetime totals
        stats_before = runner.stats.as_dict()
        results = runner.map_runs([
            (trace_for(app, key, sc, sd), system, cfgs[(key, sd)])
            for app, system, key, sc, sd in cells])

        def _delta(after, before):
            # bail_kinds is a nested {kind: count} dict; everything
            # else is a plain integer counter
            if isinstance(after, dict):
                prior = before if isinstance(before, dict) else {}
                return {k: v - prior.get(k, 0) for k, v in after.items()}
            return after - (before or 0)

        runner_stats = {k: _delta(v, stats_before.get(k))
                        for k, v in runner.stats.as_dict().items()}
    finally:
        if owned:
            runner.close()
    by_cell: Dict[Cell, ExperimentResult] = dict(zip(cells, results))

    # -- assemble rows -------------------------------------------------------
    def baseline_time(app: str, key: Any, sc: float, sd: int) -> Optional[int]:
        if scn.baseline is None:
            return None
        bkey = scn.baseline_config if scn.baseline_config is not None else key
        return by_cell[(app, scn.baseline, bkey, sc, sd)].execution_time

    rows: List[Dict[str, object]] = []
    for cell in cells:
        app, system, key, sc, sd = cell
        res = by_cell[cell]
        base = baseline_time(app, key, sc, sd)
        row: Dict[str, object] = {
            "scenario": scn.name,
            "app": app,
            "system": system,
            "config": key,
            "scale": sc,
            "seed": sd,
            "series": series_name(system, key),
            "is_baseline": (system == scn.baseline
                            and (scn.baseline_config is None
                                 or key == scn.baseline_config)),
        }
        row.update(_metrics(res))
        row["normalized_time"] = (res.execution_time / base
                                  if base is not None else None)
        rows.append(row)

    series = tuple(series_name(system, key)
                   for system in system_names for key in config_keys
                   if not (system == scn.baseline
                           and (scn.baseline_config is None
                                or key == scn.baseline_config)))
    axes: Dict[str, Tuple] = {
        "app": app_names, "system": system_names,
        "config": tuple(config_keys), "scale": scales, "seed": seeds}
    return ResultSet(scn.name, scn.title, rows, series=series, axes=axes,
                     baseline=scn.baseline,
                     runner_stats=runner_stats)
