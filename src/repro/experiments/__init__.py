"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.experiments.runner` — run (workload, system) experiments:
  one-shot helpers and the parallel, memoizing :class:`SweepRunner`
  every harness executes through.
* :mod:`repro.experiments.table1` — the qualitative opportunity/overhead
  matrix (Table 1).
* :mod:`repro.experiments.table2` — applications and inputs (Table 2).
* :mod:`repro.experiments.table3` — cost-model constants (Table 3).
* :mod:`repro.experiments.figure5` — base performance comparison.
* :mod:`repro.experiments.table4` — per-node page operations and misses.
* :mod:`repro.experiments.figure6` — sensitivity to page-operation
  overhead.
* :mod:`repro.experiments.figure7` — sensitivity to network latency.
* :mod:`repro.experiments.figure8` — R-NUMA page-cache size / hybrid
  study.
"""

from repro.experiments.runner import (
    ExperimentResult,
    RunnerStats,
    SweepRunner,
    ensure_runner,
    run_experiment,
    run_pair,
    run_systems,
)

__all__ = [
    "ExperimentResult",
    "RunnerStats",
    "SweepRunner",
    "ensure_runner",
    "run_experiment",
    "run_pair",
    "run_systems",
]
