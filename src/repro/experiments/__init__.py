"""Experiment harnesses: declarative scenarios plus the classic modules.

* :mod:`repro.experiments.runner` — run (workload, system) experiments:
  one-shot helpers and the parallel, memoizing :class:`SweepRunner`
  every harness executes through.
* :mod:`repro.experiments.scenario` — the declarative experiment API:
  :class:`Scenario` plans, the single :func:`run_scenario` executor and
  the :class:`ResultSet` artifact.
* :mod:`repro.experiments.store` — the durable content-addressed
  :class:`ResultStore` (SQLite) every completed run can checkpoint into.
* :mod:`repro.experiments.service` — the persistent sweep service: a
  warm daemon (:class:`SweepService`) deduping and caching sweeps for
  concurrent :class:`ServiceClient` submitters.
* :mod:`repro.experiments.scenarios` — the built-in scenario registry:
  Figures 5-8, Tables 1-4 and the ablations/sweeps as declarations.
* :mod:`repro.experiments.table1` … :mod:`repro.experiments.figure8` —
  one module per table/figure of the paper, now thin compatibility shims
  over the corresponding scenario (identical return values).
"""

from repro.experiments.runner import (
    ExperimentResult,
    RunnerStats,
    SweepRunner,
    ensure_runner,
    run_experiment,
    run_pair,
    run_systems,
)
from repro.experiments.scenario import (
    ResultSet,
    Scenario,
    get_scenario,
    list_scenarios,
    run_scenario,
)
from repro.experiments.service import ServiceClient, ServiceError, SweepService
from repro.experiments.store import ResultStore, StoreError
from repro.experiments import scenarios as _builtin_scenarios  # noqa: F401  (registers the built-ins)

__all__ = [
    "ExperimentResult",
    "RunnerStats",
    "SweepRunner",
    "ensure_runner",
    "run_experiment",
    "run_pair",
    "run_systems",
    "Scenario",
    "ResultSet",
    "run_scenario",
    "get_scenario",
    "list_scenarios",
    "ResultStore",
    "StoreError",
    "SweepService",
    "ServiceClient",
    "ServiceError",
]
