"""Table 4 — per-node page operations and remote misses.

The paper's Table 4 lists, for every application:

* per-node page operations — migrations and replications in
  CC-NUMA+MigRep, page-cache relocations in R-NUMA — and
* the per-node number of overall remote misses (with capacity/conflict
  misses in parentheses) for CC-NUMA, CC-NUMA+MigRep and R-NUMA.

The expected shape: MigRep's page operations are far less frequent than
R-NUMA's relocations; R-NUMA leaves the fewest capacity/conflict misses;
radix has the most relocations and a large residual miss count from page
cache pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.config import SimulationConfig, base_config
from repro.experiments.runner import (
    ExperimentResult,
    SweepRunner,
    ensure_runner,
)
from repro.stats.report import format_table
from repro.workloads import get_workload, list_workloads

#: The three systems whose misses Table 4 breaks down.
TABLE4_SYSTEMS: tuple[str, ...] = ("ccnuma", "migrep", "rnuma")


@dataclass
class Table4Row:
    """One application's row of Table 4."""

    app: str
    migrations_per_node: float
    replications_per_node: float
    relocations_per_node: float
    misses: Dict[str, float]             # system -> per-node overall misses
    capacity_conflict: Dict[str, float]  # system -> per-node cap/conflict misses


def run_table4_app(app: str, *, config: Optional[SimulationConfig] = None,
                   scale: float = 1.0, seed: int = 0,
                   runner: Optional[SweepRunner] = None) -> Table4Row:
    """Compute one application's Table 4 row."""
    cfg = config if config is not None else base_config(seed=seed)
    trace = get_workload(app, machine=cfg.machine, scale=scale, seed=seed)
    runner, owned = ensure_runner(runner)
    try:
        results = runner.run_systems(trace, TABLE4_SYSTEMS, cfg,
                                     baseline=None)
    finally:
        if owned:
            runner.close()

    migrep = results["migrep"]
    rnuma = results["rnuma"]
    return Table4Row(
        app=app,
        migrations_per_node=migrep.stats.per_node_migrations(),
        replications_per_node=migrep.stats.per_node_replications(),
        relocations_per_node=rnuma.stats.per_node_relocations(),
        misses={name: res.stats.per_node_remote_misses()
                for name, res in results.items()},
        capacity_conflict={name: res.stats.per_node_capacity_conflict()
                           for name, res in results.items()},
    )


def run_table4(*, apps: Optional[Sequence[str]] = None,
               config: Optional[SimulationConfig] = None,
               scale: float = 1.0, seed: int = 0,
               runner: Optional[SweepRunner] = None) -> List[Table4Row]:
    """Reproduce Table 4 for every application."""
    app_names = tuple(apps) if apps is not None else list_workloads()
    runner, owned = ensure_runner(runner)
    try:
        return [run_table4_app(app, config=config, scale=scale, seed=seed,
                               runner=runner)
                for app in app_names]
    finally:
        if owned:
            runner.close()


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Render Table 4 rows as a plain-text table."""
    headers = ["benchmark", "mig/node", "rep/node", "reloc/node",
               "ccnuma misses (cc)", "migrep misses (cc)", "rnuma misses (cc)"]
    table_rows = []
    for row in rows:
        def fmt(system: str) -> str:
            return (f"{row.misses[system]:.0f} "
                    f"({row.capacity_conflict[system]:.0f})")
        table_rows.append([
            row.app,
            row.migrations_per_node,
            row.replications_per_node,
            row.relocations_per_node,
            fmt("ccnuma"),
            fmt("migrep"),
            fmt("rnuma"),
        ])
    title = "Table 4: per-node page operations and remote misses"
    return title + "\n" + format_table(headers, table_rows, float_fmt="{:.1f}")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table4(run_table4()))


if __name__ == "__main__":  # pragma: no cover
    main()
