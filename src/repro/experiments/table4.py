"""Table 4 — per-node page operations and remote misses.

The paper's Table 4 lists, for every application:

* per-node page operations — migrations and replications in
  CC-NUMA+MigRep, page-cache relocations in R-NUMA — and
* the per-node number of overall remote misses (with capacity/conflict
  misses in parentheses) for CC-NUMA, CC-NUMA+MigRep and R-NUMA.

The expected shape: MigRep's page operations are far less frequent than
R-NUMA's relocations; R-NUMA leaves the fewest capacity/conflict misses;
radix has the most relocations and a large residual miss count from page
cache pressure.

The runs are the declarative ``table4``
:class:`~repro.experiments.scenario.Scenario` (no normalisation
baseline); :func:`run_table4` reshapes its ResultSet into the classic
:class:`Table4Row` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import ResultSet, run_scenario
from repro.stats.report import format_table

#: The three systems whose misses Table 4 breaks down.
TABLE4_SYSTEMS: tuple[str, ...] = ("ccnuma", "migrep", "rnuma")


@dataclass
class Table4Row:
    """One application's row of Table 4."""

    app: str
    migrations_per_node: float
    replications_per_node: float
    relocations_per_node: float
    misses: Dict[str, float]             # system -> per-node overall misses
    capacity_conflict: Dict[str, float]  # system -> per-node cap/conflict misses


def rows_from_resultset(rs: ResultSet, apps: Sequence[str]) -> List[Table4Row]:
    """Reshape the ``table4`` scenario's ResultSet into Table4Row records."""
    out: List[Table4Row] = []
    for app in apps:
        migrep = rs.only(app=app, system="migrep")
        rnuma = rs.only(app=app, system="rnuma")
        per_system = {name: rs.only(app=app, system=name)
                      for name in TABLE4_SYSTEMS}
        out.append(Table4Row(
            app=app,
            migrations_per_node=float(migrep["per_node_migrations"]),
            replications_per_node=float(migrep["per_node_replications"]),
            relocations_per_node=float(rnuma["per_node_relocations"]),
            misses={name: float(row["per_node_remote_misses"])
                    for name, row in per_system.items()},
            capacity_conflict={name: float(row["per_node_capacity_conflict"])
                               for name, row in per_system.items()},
        ))
    return out


def run_table4_app(app: str, *, config: Optional[SimulationConfig] = None,
                   scale: float = 1.0, seed: int = 0,
                   runner: Optional[SweepRunner] = None) -> Table4Row:
    """Compute one application's Table 4 row."""
    rs = run_scenario("table4", apps=(app,), config=config, scale=scale,
                      seed=seed, runner=runner)
    return rows_from_resultset(rs, (app,))[0]


def run_table4(*, apps: Optional[Sequence[str]] = None,
               config: Optional[SimulationConfig] = None,
               scale: float = 1.0, seed: int = 0,
               runner: Optional[SweepRunner] = None) -> List[Table4Row]:
    """Reproduce Table 4 for every application (one parallel batch)."""
    rs = run_scenario("table4", apps=apps, config=config, scale=scale,
                      seed=seed, runner=runner)
    return rows_from_resultset(rs, rs.axes["app"])


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Render Table 4 rows as a plain-text table."""
    headers = ["benchmark", "mig/node", "rep/node", "reloc/node",
               "ccnuma misses (cc)", "migrep misses (cc)", "rnuma misses (cc)"]
    table_rows = []
    for row in rows:
        def fmt(system: str) -> str:
            return (f"{row.misses[system]:.0f} "
                    f"({row.capacity_conflict[system]:.0f})")
        table_rows.append([
            row.app,
            row.migrations_per_node,
            row.replications_per_node,
            row.relocations_per_node,
            fmt("ccnuma"),
            fmt("migrep"),
            fmt("rnuma"),
        ])
    title = "Table 4: per-node page operations and remote misses"
    return title + "\n" + format_table(headers, table_rows, float_fmt="{:.1f}")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table4(run_table4()))


if __name__ == "__main__":  # pragma: no cover
    main()
