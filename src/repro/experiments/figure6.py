"""Figure 6 — sensitivity to page-operation overhead.

Section 6.2 compares CC-NUMA+MigRep and R-NUMA under the fast (base) cost
model and a slow one with ten-fold page-operation overheads (50 us soft
traps, 5 us TLB shootdowns, an extra 10 us of page copying) and raised
thresholds (1200 for MigRep, 64 for R-NUMA).

Expected shape: R-NUMA is more sensitive to slow page operations than
MigRep on average, because its page operations are far more frequent;
cholesky and radix degrade the most for R-NUMA.

The experiment is the declarative ``figure6``
:class:`~repro.experiments.scenario.Scenario`: systems (migrep, rnuma) ×
configs (fast, slow), with every series normalized against the *fast*
perfect CC-NUMA run (``baseline_config="fast"``), as in the paper.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import run_scenario
from repro.stats.report import format_normalized_figure

#: Series plotted in Figure 6 (system, speed) combinations.
FIGURE6_SERIES: tuple[str, ...] = (
    "migrep-fast", "migrep-slow", "rnuma-fast", "rnuma-slow",
)


def _config_overrides(fast_config: Optional[SimulationConfig],
                      slow_config: Optional[SimulationConfig], seed: int):
    """Config-axis override when the caller supplies explicit configs."""
    if fast_config is None and slow_config is None:
        return None
    from repro.config import base_config, slow_page_ops_config
    return {
        "fast": (fast_config if fast_config is not None
                 else base_config(seed=seed)),
        "slow": (slow_config if slow_config is not None
                 else slow_page_ops_config(seed=seed)),
    }


def run_figure6_app(app: str, *, scale: float = 1.0, seed: int = 0,
                    fast_config: Optional[SimulationConfig] = None,
                    slow_config: Optional[SimulationConfig] = None,
                    runner: Optional[SweepRunner] = None
                    ) -> Dict[str, float]:
    """Run one application under fast and slow page-operation support.

    Returns normalized execution times keyed by series name
    (``migrep-fast``, ``migrep-slow``, ``rnuma-fast``, ``rnuma-slow``).
    All series are normalized against the *fast* perfect CC-NUMA run, as
    in the paper.
    """
    rs = run_scenario("figure6", apps=(app,), scale=scale, seed=seed,
                      configs=_config_overrides(fast_config, slow_config, seed),
                      runner=runner)
    return rs.figure_data()[app]


def run_figure6(*, apps: Optional[Sequence[str]] = None, scale: float = 1.0,
                seed: int = 0,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 6 for every application (one parallel batch)."""
    rs = run_scenario("figure6", apps=apps, scale=scale, seed=seed,
                      runner=runner)
    return rs.figure_data()


def render_figure6(per_app: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 6 data as a plain-text table."""
    return format_normalized_figure(
        "Figure 6: sensitivity to page-operation overhead "
        "(normalized to fast perfect CC-NUMA)",
        per_app, list(FIGURE6_SERIES))


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_figure6(run_figure6()))


if __name__ == "__main__":  # pragma: no cover
    main()
