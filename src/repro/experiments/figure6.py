"""Figure 6 — sensitivity to page-operation overhead.

Section 6.2 compares CC-NUMA+MigRep and R-NUMA under the fast (base) cost
model and a slow one with ten-fold page-operation overheads (50 us soft
traps, 5 us TLB shootdowns, an extra 10 us of page copying) and raised
thresholds (1200 for MigRep, 64 for R-NUMA).

Expected shape: R-NUMA is more sensitive to slow page operations than
MigRep on average, because its page operations are far more frequent;
cholesky and radix degrade the most for R-NUMA.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.config import SimulationConfig, base_config, slow_page_ops_config
from repro.experiments.runner import SweepRunner, ensure_runner
from repro.stats.report import format_normalized_figure
from repro.workloads import get_workload, list_workloads

#: Series plotted in Figure 6 (system, speed) combinations.
FIGURE6_SERIES: tuple[str, ...] = (
    "migrep-fast", "migrep-slow", "rnuma-fast", "rnuma-slow",
)


def run_figure6_app(app: str, *, scale: float = 1.0, seed: int = 0,
                    fast_config: Optional[SimulationConfig] = None,
                    slow_config: Optional[SimulationConfig] = None,
                    runner: Optional[SweepRunner] = None
                    ) -> Dict[str, float]:
    """Run one application under fast and slow page-operation support.

    Returns normalized execution times keyed by series name
    (``migrep-fast``, ``migrep-slow``, ``rnuma-fast``, ``rnuma-slow``).
    All series are normalized against the *fast* perfect CC-NUMA run, as
    in the paper.
    """
    fast = fast_config if fast_config is not None else base_config(seed=seed)
    slow = slow_config if slow_config is not None else slow_page_ops_config(seed=seed)

    trace = get_workload(app, machine=fast.machine, scale=scale, seed=seed)
    runner, owned = ensure_runner(runner)
    try:
        fast_results = runner.run_systems(trace, ("migrep", "rnuma"), fast)
        slow_results = runner.run_systems(trace, ("migrep", "rnuma"), slow,
                                          baseline=None)
    finally:
        if owned:
            runner.close()

    baseline = fast_results["perfect"].execution_time
    return {
        "migrep-fast": fast_results["migrep"].execution_time / baseline,
        "rnuma-fast": fast_results["rnuma"].execution_time / baseline,
        "migrep-slow": slow_results["migrep"].execution_time / baseline,
        "rnuma-slow": slow_results["rnuma"].execution_time / baseline,
    }


def run_figure6(*, apps: Optional[Sequence[str]] = None, scale: float = 1.0,
                seed: int = 0,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 6 for every application."""
    app_names = tuple(apps) if apps is not None else list_workloads()
    fast = base_config(seed=seed)
    slow = slow_page_ops_config(seed=seed)
    runner, owned = ensure_runner(runner)
    try:
        # one batch across all (app, system, speed) runs: fully parallel
        # under a multi-process runner
        traces = {app: get_workload(app, machine=fast.machine, scale=scale,
                                    seed=seed) for app in app_names}
        items = []
        for app in app_names:
            items.extend((traces[app], name, fast)
                         for name in ("perfect", "migrep", "rnuma"))
            items.extend((traces[app], name, slow)
                         for name in ("migrep", "rnuma"))
        results = iter(runner.map_runs(items))
        out = {}
        for app in app_names:
            fast_res = {name: next(results)
                        for name in ("perfect", "migrep", "rnuma")}
            slow_res = {name: next(results) for name in ("migrep", "rnuma")}
            baseline = fast_res["perfect"].execution_time
            out[app] = {
                "migrep-fast": fast_res["migrep"].execution_time / baseline,
                "rnuma-fast": fast_res["rnuma"].execution_time / baseline,
                "migrep-slow": slow_res["migrep"].execution_time / baseline,
                "rnuma-slow": slow_res["rnuma"].execution_time / baseline,
            }
        return out
    finally:
        if owned:
            runner.close()


def render_figure6(per_app: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 6 data as a plain-text table."""
    return format_normalized_figure(
        "Figure 6: sensitivity to page-operation overhead "
        "(normalized to fast perfect CC-NUMA)",
        per_app, list(FIGURE6_SERIES))


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_figure6(run_figure6()))


if __name__ == "__main__":  # pragma: no cover
    main()
