"""Ablation studies over the design choices DESIGN.md calls out.

The paper fixes several design parameters (first-touch placement, an SRAM
block cache sized to the processor caches, a single threshold per
technique).  The ablation harnesses below vary them one at a time so the
reproduction can quantify how much each choice matters:

``run_placement_ablation``
    first-touch vs round-robin vs interleaved vs single-node initial
    placement, for CC-NUMA, MigRep and R-NUMA.  Expected shape: bad
    placements hurt CC-NUMA badly, MigRep recovers a large part of the
    loss (migration exists exactly to fix mis-placed pages), R-NUMA
    recovers nearly all of it.

``run_block_cache_ablation``
    SRAM block cache vs the large-but-slow DRAM block cache
    (``ccnuma-dram``) vs R-NUMA.  Expected shape: the DRAM cache closes
    part of the capacity/conflict gap but keeps paying its per-access
    penalty, so R-NUMA stays ahead on workloads with page-level reuse.

``run_scoma_ablation``
    pure S-COMA vs R-NUMA vs CC-NUMA.  Expected shape: S-COMA matches
    R-NUMA on reuse-heavy applications and falls behind (extra allocations
    and refetches) on the streaming kernels — the reason R-NUMA is
    *reactive* in the first place.

``run_threshold_ablation``
    R-NUMA switching threshold and MigRep miss-threshold sweeps (the
    values Section 5 says were "selected so as to optimize performance
    over all benchmarks").

Each function returns the flat per-(value, app, system) rows produced by
:mod:`repro.analysis.sweeps`, ready for the exporters and the benchmark
harness.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.sweeps import (
    SweepResult,
    migrep_threshold_sweep,
    rnuma_threshold_sweep,
    run_sweep,
)
from repro.config import SimulationConfig, base_config
from repro.experiments.runner import SweepRunner, ensure_runner
from repro.experiments.scenario import run_scenario
from repro.kernel.placement import PLACEMENT_NAMES
from repro.stats.report import format_normalized_figure

#: Applications used by default for ablations (one per behaviour class:
#: high read-write sharing, replication-friendly, page-cache pressure).
DEFAULT_ABLATION_APPS: tuple[str, ...] = ("barnes", "lu", "radix")


def run_placement_ablation(*, apps: Sequence[str] = DEFAULT_ABLATION_APPS,
                           systems: Sequence[str] = ("ccnuma", "migrep", "rnuma"),
                           policies: Sequence[str] = PLACEMENT_NAMES,
                           scale: float = 0.3, seed: int = 0,
                           runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the initial placement policy."""
    def configure(value: object) -> SimulationConfig:
        return base_config(seed=seed).with_placement(str(value))
    return run_sweep("placement", list(policies), configure,
                     apps=apps, systems=list(systems), scale=scale, seed=seed,
                     runner=runner)


def run_block_cache_ablation(*, apps: Sequence[str] = DEFAULT_ABLATION_APPS,
                             scale: float = 0.3, seed: int = 0,
                             runner: Optional[SweepRunner] = None
                             ) -> Dict[str, Dict[str, float]]:
    """Compare the SRAM block cache, the DRAM block cache and R-NUMA.

    Runs the declarative ``ablation-block-cache`` scenario; returns
    ``{app: {system: normalized time}}`` in the same shape the figure
    modules use, so it can be rendered and exported identically.
    """
    rs = run_scenario("ablation-block-cache", apps=apps, scale=scale,
                      seed=seed, runner=runner)
    return rs.figure_data()


def run_scoma_ablation(*, apps: Sequence[str] = DEFAULT_ABLATION_APPS,
                       scale: float = 0.3, seed: int = 0,
                       runner: Optional[SweepRunner] = None
                       ) -> Dict[str, Dict[str, float]]:
    """Compare unconditional S-COMA against reactive R-NUMA and CC-NUMA.

    Runs the declarative ``ablation-scoma`` scenario.
    """
    rs = run_scenario("ablation-scoma", apps=apps, scale=scale, seed=seed,
                      runner=runner)
    return rs.figure_data()


def run_threshold_ablation(*, apps: Sequence[str] = DEFAULT_ABLATION_APPS,
                           rnuma_values: Sequence[int] = (8, 16, 32, 64, 128),
                           migrep_values: Sequence[int] = (200, 400, 800, 1600),
                           scale: float = 0.3, seed: int = 0,
                           runner: Optional[SweepRunner] = None
                           ) -> Dict[str, SweepResult]:
    """Sweep both techniques' thresholds around the paper's chosen values."""
    runner, owned = ensure_runner(runner)
    try:
        return {
            "rnuma_threshold": rnuma_threshold_sweep(
                rnuma_values, apps=apps, scale=scale, seed=seed,
                runner=runner),
            "migrep_threshold": migrep_threshold_sweep(
                migrep_values, apps=apps, scale=scale, seed=seed,
                runner=runner),
        }
    finally:
        if owned:
            runner.close()


def render_ablation(title: str, per_app: Mapping[str, Mapping[str, float]],
                    systems: Sequence[str]) -> str:
    """Render an ablation's ``{app: {system: value}}`` data as plain text."""
    return format_normalized_figure(title, per_app, list(systems))
