"""Table 3 — baseline system cost assumptions.

Table 3 of the paper lists the cycle costs of block and page operations in
the base system.  This module renders the active :class:`CostModel`
alongside the paper's values so a reader (or a regression test) can check
that the reproduction charges the same costs, and shows the derived slow
(Section 6.2) and long-latency (Section 6.3) variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CostModel
from repro.stats.report import format_table

#: The paper's Table 3 values (cycles), keyed by CostModel attribute where a
#: one-to-one mapping exists; ranges are (min, max).
PAPER_TABLE3: Dict[str, object] = {
    "network_latency": 80,
    "local_miss": 104,
    "remote_miss": 418,
    "soft_trap": 3000,
    "tlb_shootdown": 300,
    "page_alloc": (3000, 11500),
    "gather": (3000, 11500),
    "copy": (8000, 21800),
}


@dataclass
class Table3Row:
    """One operation's cost: paper value and the model's value."""

    operation: str
    paper_cycles: str
    model_cycles: str
    matches: bool


def run_table3(costs: Optional[CostModel] = None) -> List[Table3Row]:
    """Compare the active cost model against the paper's Table 3."""
    cm = costs if costs is not None else CostModel()
    rows: List[Table3Row] = []

    def add(op: str, paper: object, model: object) -> None:
        rows.append(Table3Row(
            operation=op,
            paper_cycles=str(paper),
            model_cycles=str(model),
            matches=paper == model,
        ))

    add("network latency", PAPER_TABLE3["network_latency"], cm.network_latency)
    add("local miss latency", PAPER_TABLE3["local_miss"], cm.local_miss)
    add("remote miss latency (round trip)", PAPER_TABLE3["remote_miss"], cm.remote_miss)
    add("soft trap", PAPER_TABLE3["soft_trap"], cm.soft_trap)
    add("TLB shootdown", PAPER_TABLE3["tlb_shootdown"], cm.tlb_shootdown)
    add("page allocation/replacement or relocation",
        PAPER_TABLE3["page_alloc"], (cm.page_alloc_min, cm.page_alloc_max))
    add("page invalidation and data gathering",
        PAPER_TABLE3["gather"], (cm.gather_min, cm.gather_max))
    add("page copying", PAPER_TABLE3["copy"], (cm.copy_min, cm.copy_max))
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    """Render the Table 3 comparison as plain text."""
    headers = ["operation", "paper (cycles)", "model (cycles)", "match"]
    table_rows = [[r.operation, r.paper_cycles, r.model_cycles,
                   "yes" if r.matches else "NO"] for r in rows]
    title = "Table 3: base system cost assumptions (paper vs model)"
    return title + "\n" + format_table(headers, table_rows)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table3(run_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
