"""Figure 8 — can MigRep shrink R-NUMA's page cache? (Section 6.4).

The paper compares CC-NUMA, MigRep, R-NUMA (2.4 MB page cache),
R-NUMA-1/2 (half-size page cache) and R-NUMA-1/2+MigRep — the hybrid that
adds page migration/replication to the half-size system with relocation
delayed so MigRep's counters are not starved.

Expected shape: R-NUMA-1/2's performance is not recovered by adding
MigRep — relocations still remove the misses MigRep's counters need to
see (counter interference) — and only radix is visibly hurt by the
halved page cache.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.config import SimulationConfig, base_config
from repro.experiments.runner import SweepRunner, ensure_runner
from repro.stats.report import format_normalized_figure
from repro.workloads import get_workload, list_workloads

#: Systems plotted in Figure 8, in the paper's legend order.
FIGURE8_SYSTEMS: tuple[str, ...] = (
    "ccnuma", "migrep", "rnuma-half", "rnuma-half-migrep", "rnuma",
)


def run_figure8_app(app: str, *, config: Optional[SimulationConfig] = None,
                    scale: float = 1.0, seed: int = 0,
                    runner: Optional[SweepRunner] = None) -> Dict[str, float]:
    """Run one application under the Figure 8 systems; return normalized times."""
    cfg = config if config is not None else base_config(seed=seed)
    trace = get_workload(app, machine=cfg.machine, scale=scale, seed=seed)
    runner, owned = ensure_runner(runner)
    try:
        results = runner.run_systems(trace, FIGURE8_SYSTEMS, cfg)
    finally:
        if owned:
            runner.close()
    baseline = results["perfect"].execution_time
    return {name: res.execution_time / baseline
            for name, res in results.items() if name != "perfect"}


def run_figure8(*, apps: Optional[Sequence[str]] = None,
                config: Optional[SimulationConfig] = None,
                scale: float = 1.0, seed: int = 0,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 8 for every application."""
    app_names = tuple(apps) if apps is not None else list_workloads()
    cfg = config if config is not None else base_config(seed=seed)
    run_names = list(dict.fromkeys(["perfect", *FIGURE8_SYSTEMS]))
    runner, owned = ensure_runner(runner)
    try:
        # one batch across all (app, system) pairs: fully parallel under
        # a multi-process runner
        traces = {app: get_workload(app, machine=cfg.machine, scale=scale,
                                    seed=seed) for app in app_names}
        results = iter(runner.map_runs(
            [(traces[app], name, cfg)
             for app in app_names for name in run_names]))
        out = {}
        for app in app_names:
            per_system = {name: next(results) for name in run_names}
            baseline = per_system["perfect"].execution_time
            out[app] = {name: res.execution_time / baseline
                        for name, res in per_system.items()
                        if name != "perfect"}
        return out
    finally:
        if owned:
            runner.close()


def render_figure8(per_app: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 8 data as a plain-text table."""
    return format_normalized_figure(
        "Figure 8: R-NUMA page-cache size and the MigRep hybrid "
        "(normalized to perfect CC-NUMA)",
        per_app, list(FIGURE8_SYSTEMS))


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_figure8(run_figure8()))


if __name__ == "__main__":  # pragma: no cover
    main()
