"""Figure 8 — can MigRep shrink R-NUMA's page cache? (Section 6.4).

The paper compares CC-NUMA, MigRep, R-NUMA (2.4 MB page cache),
R-NUMA-1/2 (half-size page cache) and R-NUMA-1/2+MigRep — the hybrid that
adds page migration/replication to the half-size system with relocation
delayed so MigRep's counters are not starved.

Expected shape: R-NUMA-1/2's performance is not recovered by adding
MigRep — relocations still remove the misses MigRep's counters need to
see (counter interference) — and only radix is visibly hurt by the
halved page cache.

The experiment is the declarative ``figure8``
:class:`~repro.experiments.scenario.Scenario`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import run_scenario
from repro.stats.report import format_normalized_figure

#: Systems plotted in Figure 8, in the paper's legend order.
FIGURE8_SYSTEMS: tuple[str, ...] = (
    "ccnuma", "migrep", "rnuma-half", "rnuma-half-migrep", "rnuma",
)


def run_figure8_app(app: str, *, config: Optional[SimulationConfig] = None,
                    scale: float = 1.0, seed: int = 0,
                    runner: Optional[SweepRunner] = None) -> Dict[str, float]:
    """Run one application under the Figure 8 systems; return normalized times."""
    rs = run_scenario("figure8", apps=(app,), config=config, scale=scale,
                      seed=seed, runner=runner)
    return rs.figure_data()[app]


def run_figure8(*, apps: Optional[Sequence[str]] = None,
                config: Optional[SimulationConfig] = None,
                scale: float = 1.0, seed: int = 0,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, float]]:
    """Reproduce Figure 8 for every application (one parallel batch)."""
    rs = run_scenario("figure8", apps=apps, config=config, scale=scale,
                      seed=seed, runner=runner)
    return rs.figure_data()


def render_figure8(per_app: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 8 data as a plain-text table."""
    return format_normalized_figure(
        "Figure 8: R-NUMA page-cache size and the MigRep hybrid "
        "(normalized to perfect CC-NUMA)",
        per_app, list(FIGURE8_SYSTEMS))


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_figure8(run_figure8()))


if __name__ == "__main__":  # pragma: no cover
    main()
