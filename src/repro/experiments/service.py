"""Persistent sweep service: a warm daemon shared by many clients.

The :class:`~repro.experiments.runner.SweepRunner` and the durable
:class:`~repro.experiments.store.ResultStore` make any *single* process
cheap to re-run; this module turns them into shared infrastructure — one
long-running local daemon holding a warm runner (memo table, worker
pool, shared-memory trace segments) and one store, accepting scenario
submissions from any number of concurrent clients:

* **Nothing is computed twice.**  Completed runs live in the store, so
  a submission seen before — by any client, in any process, before any
  crash — is served without simulating.
* **Nothing is computed twice *concurrently* either.**  Submissions are
  content-addressed (scenario name + canonical axis overrides); a
  second client submitting an identical request while the first is
  still executing *joins* the in-flight execution and receives the same
  :class:`~repro.experiments.scenario.ResultSet` when it completes
  (``RunnerStats.inflight_joins`` counts these).
* **A killed daemon resumes for free.**  Every harvested run is
  upserted into the store before the next one dispatches; restarting
  the daemon against the same store and resubmitting recomputes zero
  completed runs.
* **Progress streams live.**  While a submission executes, the client
  receives periodic progress events carrying the runner's counter
  deltas (the same counters behind ``repro exp --profile``), so long
  sweeps are observable without polling.

The wire protocol is newline-delimited JSON over a Unix domain socket —
one request object per line in, a stream of event objects per line out
(``accepted``, ``progress`` …, then ``result`` or ``error``).  Results
cross the socket as a base64 zlib pickle of the ResultSet, which is what
makes the service transparent: the rows a client receives are
bit-identical to a direct :func:`~repro.experiments.scenario.
run_scenario` of the same request.

.. note:: like the journal and the store, the transport embeds pickles;
   the socket is a *local trust boundary* (filesystem permissions), not
   a network API.

Server::

    repro serve --socket /tmp/repro.sock --store results.sqlite --jobs 4

Clients::

    repro exp figure5 --service /tmp/repro.sock

    from repro.experiments.service import ServiceClient
    rs = ServiceClient("/tmp/repro.sock").submit("figure5", apps=["lu"])
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import pickle
import socket
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import ResultSet, run_scenario
from repro.experiments.store import ResultStore

#: Environment variable naming the default service socket for the CLI.
SERVICE_ENV_VAR = "REPRO_SERVICE"

#: Axis overrides a submission may carry (everything JSON-serializable
#: that ``run_scenario`` accepts; configs/factories stay server-side).
SUBMIT_KWARGS = ("apps", "systems", "scale", "seed")

#: Seconds between progress events while a submission executes.
PROGRESS_INTERVAL_S = 0.2


class ServiceError(RuntimeError):
    """Raised by the client for protocol/server-side failures."""


def request_key(scenario: str, kwargs: Dict[str, object]) -> str:
    """Content digest of one submission (scenario + canonical overrides).

    Two requests dedupe into one in-flight execution exactly when this
    digest matches, so the canonicalisation must be insensitive to
    irrelevant representation details: keys are sorted, absent and
    ``None`` overrides are identical, and list order is preserved (axis
    order is meaningful — it decides row order).
    """
    canon = {k: v for k, v in sorted(kwargs.items()) if v is not None}
    blob = json.dumps({"scenario": scenario, "kwargs": canon},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def _encode_resultset(rs: ResultSet) -> str:
    return base64.b64encode(zlib.compress(
        pickle.dumps(rs, protocol=pickle.HIGHEST_PROTOCOL))).decode("ascii")


def _decode_resultset(blob: str) -> ResultSet:
    return pickle.loads(zlib.decompress(base64.b64decode(blob)))


class SweepService:
    """The daemon: one warm SweepRunner + store behind a Unix socket.

    Parameters
    ----------
    socket_path:
        Unix domain socket to listen on.  A stale socket file left by a
        killed daemon is detected (nothing accepts on it) and replaced;
        a *live* one raises :class:`ServiceError` instead of hijacking.
    store:
        Path to (or instance of) the durable
        :class:`~repro.experiments.store.ResultStore` backing the
        runner.  ``None`` runs memory-only — correct, but a restart
        forgets everything.
    jobs / engine / retries / run_timeout:
        Forwarded to the shared :class:`SweepRunner`.

    Submissions execute serially through the shared runner (its memo
    table and worker pool are not thread-safe); *deduplication* is what
    makes many concurrent clients cheap — identical requests join one
    execution, distinct requests queue and still reuse every overlapping
    (trace, system, config) cell through the memo table and the store.
    """

    def __init__(self, socket_path: Union[str, Path], *,
                 store: Optional[Union[str, Path, ResultStore]] = None,
                 jobs: Optional[int] = None,
                 engine: Optional[str] = None,
                 retries: Optional[int] = None,
                 run_timeout: Optional[float] = None) -> None:
        self.socket_path = Path(socket_path)
        self.runner = SweepRunner(jobs=jobs, engine=engine, store=store,
                                  retries=retries, run_timeout=run_timeout)
        self._runner_lock = threading.Lock()
        self._inflight: Dict[str, "asyncio.Task"] = {}
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._stop: Optional[asyncio.Event] = None
        #: total submissions accepted (joins included)
        self.submissions = 0
        #: submissions that joined an identical in-flight execution
        self.inflight_joins = 0
        self.started_at = time.time()

    # -- execution ----------------------------------------------------------

    def _execute(self, scenario: str, kwargs: Dict[str, object]) -> ResultSet:
        """Run one submission through the shared runner (worker thread)."""
        with self._runner_lock:
            return run_scenario(scenario, runner=self.runner, **kwargs)

    def _service_stats(self) -> Dict[str, object]:
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "submissions": self.submissions,
            "inflight_joins": self.inflight_joins,
            "inflight": len(self._inflight),
            "store": (str(self.runner.store.path)
                      if self.runner.store is not None else None),
            "store_rows": (len(self.runner.store)
                           if self.runner.store is not None else None),
            "jobs": self.runner.jobs,
            "engine": self.runner.engine,
        }

    # -- protocol -----------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    event: Dict[str, object]) -> None:
        writer.write(json.dumps(event).encode() + b"\n")
        await writer.drain()

    async def _handle_submit(self, req: Dict[str, object],
                             writer: asyncio.StreamWriter) -> None:
        scenario = req.get("scenario")
        kwargs = dict(req.get("kwargs") or {})
        if not isinstance(scenario, str) or not scenario:
            raise ServiceError("submit requires a scenario name")
        unknown = sorted(set(kwargs) - set(SUBMIT_KWARGS))
        if unknown:
            raise ServiceError(
                f"unsupported submission option(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(SUBMIT_KWARGS)})")

        rkey = request_key(scenario, kwargs)
        task = self._inflight.get(rkey)
        joined = task is not None
        self.submissions += 1
        if joined:
            # dedupe: await the first submitter's execution instead of
            # dispatching a second identical sweep
            self.inflight_joins += 1
            self.runner.stats.inflight_joins += 1
        else:
            task = asyncio.get_running_loop().create_task(
                asyncio.to_thread(self._execute, scenario, kwargs))
            self._inflight[rkey] = task
            task.add_done_callback(lambda _t: self._inflight.pop(rkey, None))
        await self._send(writer, {"event": "accepted", "request": rkey,
                                  "scenario": scenario, "joined": joined})

        while True:
            done, _pending = await asyncio.wait(
                {task}, timeout=PROGRESS_INTERVAL_S)
            if done:
                break
            await self._send(writer, {
                "event": "progress", "request": rkey,
                "runner": self.runner.stats.as_dict()})
        try:
            rs = task.result()
        except Exception as exc:
            await self._send(writer, {
                "event": "error", "request": rkey,
                "message": f"{type(exc).__name__}: {exc}"})
            return
        await self._send(writer, {
            "event": "result", "request": rkey, "joined": joined,
            "runner": rs.runner_stats,
            "resultset": _encode_resultset(rs)})

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    await self._send(writer, {"event": "error",
                                              "message": f"bad request: {exc}"})
                    continue
                op = req.get("op")
                if op == "ping":
                    from repro import __version__
                    await self._send(writer, {"event": "pong",
                                              "pid": os.getpid(),
                                              "version": __version__})
                elif op == "stats":
                    await self._send(writer, {
                        "event": "stats",
                        "runner": self.runner.stats.as_dict(),
                        "service": self._service_stats()})
                elif op == "submit":
                    try:
                        await self._handle_submit(req, writer)
                    except ServiceError as exc:
                        await self._send(writer, {"event": "error",
                                                  "message": str(exc)})
                elif op == "shutdown":
                    await self._send(writer, {"event": "bye"})
                    if self._stop is not None:
                        self._stop.set()
                    break
                else:
                    await self._send(writer, {
                        "event": "error",
                        "message": f"unknown op: {op!r}"})
        except (ConnectionError, BrokenPipeError):
            pass   # client went away mid-stream; in-flight work continues
        except asyncio.CancelledError:
            # loop teardown during shutdown: exit normally so the
            # streams protocol's done-callback (3.11 has no cancelled()
            # guard) doesn't log a spurious CancelledError
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    # -- lifecycle ----------------------------------------------------------

    def _claim_socket(self) -> None:
        """Remove a stale socket file; refuse to replace a live daemon.

        A bare ``connect`` probe is not enough: a SIGKILLed daemon's
        forked pool workers inherit the listening descriptor, so
        connections to the leftover socket still *succeed* (they queue
        in the orphaned backlog) even though nothing will ever answer.
        Only a completed ping round-trip proves a live daemon.
        """
        if not self.socket_path.exists():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            probe.connect(str(self.socket_path))
            probe.sendall(b'{"op": "ping"}\n')
            if not probe.recv(1):
                raise OSError("no reply")   # EOF: nobody is serving
        except OSError:
            self.socket_path.unlink()   # dead daemon's leftover
        else:
            raise ServiceError(
                f"{self.socket_path}: a live service is already listening")
        finally:
            probe.close()

    async def serve(self) -> None:
        """Accept clients until a ``shutdown`` request (or cancellation)."""
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-Unix
            raise ServiceError("the sweep service requires Unix sockets")
        self._claim_socket()
        if self.socket_path.parent != Path("."):
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self._stop = asyncio.Event()
        server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path))
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # nudge lingering connections (EOF beats cancellation: the
            # handlers exit their read loop cleanly) and wait for them
            for w in list(self._conn_writers):
                w.close()
            pending = {t for t in self._conn_tasks
                       if t is not asyncio.current_task()}
            if pending:
                await asyncio.wait(pending, timeout=2.0)
            self.runner.close()
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    def serve_forever(self) -> None:
        """Blocking entry point (``repro serve``)."""
        asyncio.run(self.serve())


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class ServiceClient:
    """Synchronous client of a :class:`SweepService` daemon.

    Parameters
    ----------
    socket_path:
        The daemon's Unix socket.
    timeout:
        Per-*event* socket timeout in seconds.  Progress events arrive
        every :data:`PROGRESS_INTERVAL_S` while a sweep executes, so
        this bounds silence, not total sweep duration.

    Each request opens a fresh connection — the daemon is the stateful
    side; clients stay trivial and fork/thread-safe.
    """

    def __init__(self, socket_path: Union[str, Path],
                 timeout: float = 120.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def _request(self, payload: Dict[str, object],
                 on_event: Optional[Callable[[Dict[str, object]], None]] = None,
                 final: tuple = ("result", "error")) -> Dict[str, object]:
        """Send one request; stream events until a final one arrives."""
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            conn.settimeout(self.timeout)
            try:
                conn.connect(self.socket_path)
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach sweep service at {self.socket_path}: "
                    f"{exc}") from exc
            fh = conn.makefile("rwb")
            fh.write(json.dumps(payload).encode() + b"\n")
            fh.flush()
            while True:
                line = fh.readline()
                if not line:
                    raise ServiceError(
                        "service closed the connection mid-request")
                event = json.loads(line)
                if on_event is not None:
                    on_event(event)
                if event.get("event") in final:
                    return event
        except socket.timeout as exc:
            raise ServiceError(
                f"service did not respond within {self.timeout}s") from exc
        finally:
            conn.close()

    def ping(self) -> Dict[str, object]:
        """Liveness probe: the daemon's pid and package version."""
        return self._request({"op": "ping"}, final=("pong",))

    def stats(self) -> Dict[str, object]:
        """Runner counters plus service-level stats of the daemon."""
        return self._request({"op": "stats"}, final=("stats",))

    def shutdown(self) -> None:
        """Ask the daemon to exit after in-flight work completes."""
        self._request({"op": "shutdown"}, final=("bye",))

    def submit(self, scenario: str, *,
               apps: Optional[List[str]] = None,
               systems: Optional[List[str]] = None,
               scale: Optional[float] = None,
               seed: Optional[int] = None,
               on_event: Optional[Callable[[Dict[str, object]], None]] = None
               ) -> ResultSet:
        """Submit one scenario and block until its ResultSet arrives.

        Parameters mirror :func:`~repro.experiments.scenario.
        run_scenario`'s JSON-serializable axis overrides.  ``on_event``
        observes every protocol event (``accepted`` carries ``joined``,
        ``progress`` carries live runner counters).

        Returns the ResultSet bit-identical to a direct
        ``run_scenario(scenario, ...)`` of the same arguments.
        """
        kwargs = {k: v for k, v in (("apps", apps), ("systems", systems),
                                    ("scale", scale), ("seed", seed))
                  if v is not None}
        event = self._request({"op": "submit", "scenario": scenario,
                               "kwargs": kwargs}, on_event=on_event)
        if event["event"] == "error":
            raise ServiceError(str(event.get("message")))
        return _decode_resultset(event["resultset"])


def wait_for_service(socket_path: Union[str, Path], *,
                     timeout: float = 30.0,
                     poll_s: float = 0.05) -> Dict[str, object]:
    """Block until a daemon answers ``ping`` on ``socket_path``.

    Used by tests and smoke scripts right after launching a daemon
    process.  Raises :class:`ServiceError` on timeout.
    """
    client = ServiceClient(socket_path, timeout=max(1.0, poll_s * 20))
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.ping()
        except (ServiceError, OSError):
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"no sweep service on {socket_path} after {timeout}s")
            time.sleep(poll_s)
