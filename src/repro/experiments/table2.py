"""Table 2 — applications and input parameters.

Table 2 of the paper lists the seven SPLASH-2 applications and the input
data set each was run with.  In this reproduction the binaries are
replaced by synthetic workload specifications (see DESIGN.md), so this
module reports, side by side, the paper's input parameters and the
synthetic spec that stands in for them (page population, phases,
per-processor references) — a quick way to audit the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import MachineConfig, reduced_machine
from repro.stats.report import format_table
from repro.workloads import get_spec, list_workloads
from repro.workloads.generator import TraceGenerator


@dataclass
class Table2Row:
    """One application's entry of Table 2, plus its synthetic stand-in."""

    app: str
    description: str
    paper_input: str
    groups: int
    pages: int
    phases: int
    accesses_per_proc: int


def run_table2(*, machine: Optional[MachineConfig] = None,
               apps: Optional[Sequence[str]] = None) -> List[Table2Row]:
    """Build the Table 2 rows for every (or the selected) application."""
    mc = machine if machine is not None else reduced_machine()
    names = tuple(apps) if apps is not None else list_workloads()
    rows: List[Table2Row] = []
    for name in names:
        spec = get_spec(name)
        gen = TraceGenerator(spec, mc)
        rows.append(Table2Row(
            app=name,
            description=spec.description,
            paper_input=spec.paper_input,
            groups=len(spec.groups),
            pages=gen.total_pages(),
            phases=len(spec.phases),
            accesses_per_proc=spec.total_accesses_per_proc(),
        ))
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table 2 as plain text."""
    headers = ["application", "problem", "paper input",
               "groups", "pages", "phases", "refs/proc"]
    table_rows = [[r.app, r.description, r.paper_input, r.groups, r.pages,
                   r.phases, r.accesses_per_proc] for r in rows]
    title = "Table 2: applications, paper inputs, and synthetic stand-ins"
    return title + "\n" + format_table(headers, table_rows)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
