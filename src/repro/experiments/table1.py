"""Table 1 — qualitative opportunity/overhead matrix.

Table 1 of the paper summarises, per mechanism (page replication, page
migration, R-NUMA), which classes of misses it can reduce and what its
page-operation overhead and frequency look like.  This module derives the
same matrix *empirically* from small targeted simulations: one synthetic
workload per sharing scenario (read-only sharing, read-write sharing at
low degree, read-write sharing at high degree), run under each mechanism,
with the reduction in remote misses deciding the "yes/no" entries and the
measured page-operation counts and cycles deciding the overhead columns.

The runs themselves are the declarative ``table1``
:class:`~repro.experiments.scenario.Scenario`: the three sharing
scenarios form the app axis (driven by a custom trace factory over
:data:`SCENARIOS`), the mechanisms form the system axis, and CC-NUMA is
the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import MachineConfig, SimulationConfig, base_config
from repro.experiments.scenario import run_scenario
from repro.registry import UnknownNameError
from repro.stats.report import format_table
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import PageGroup, Phase, SharingPattern, WorkloadSpec
from repro.workloads.trace import Trace


def _scenario_spec(name: str, pattern: SharingPattern, write_fraction: float,
                   *, shift: int = 0, pages: int = 48) -> WorkloadSpec:
    """Tiny single-group workload exercising one sharing scenario."""
    group = PageGroup(name="data", num_pages=pages, pattern=pattern,
                      write_fraction=write_fraction)
    phases = (
        Phase(name="init", touch_groups=("data",)),
        Phase(name="work-1", accesses_per_proc=2500, weights={"data": 1.0},
              migratory_shift=shift),
        Phase(name="work-2", accesses_per_proc=2500, weights={"data": 1.0},
              migratory_shift=shift),
    )
    return WorkloadSpec(name=name, description=f"Table 1 scenario: {name}",
                        groups=(group,), phases=phases)


#: The three sharing scenarios of Table 1's columns.
SCENARIOS: Dict[str, WorkloadSpec] = {
    "read_only": _scenario_spec("read_only", SharingPattern.READ_SHARED, 0.0),
    "rw_low_degree": _scenario_spec("rw_low_degree", SharingPattern.MIGRATORY,
                                    0.3, shift=1),
    "rw_high_degree": _scenario_spec("rw_high_degree",
                                     SharingPattern.READ_WRITE_SHARED, 0.3),
}

#: The three mechanisms of Table 1's rows and the system implementing each.
MECHANISMS: Dict[str, str] = {
    "Page Replication": "rep",
    "Page Migration": "mig",
    "R-NUMA": "rnuma",
}

#: Relative miss reduction counted as a "yes" in the matrix.
REDUCTION_THRESHOLD = 0.25


def scenario_trace(app: str, machine: MachineConfig, scale: float,
                   seed: int) -> Trace:
    """Trace factory over the Table 1 sharing-scenario specs."""
    spec = SCENARIOS.get(app)
    if spec is None:
        raise UnknownNameError(
            f"unknown Table 1 sharing scenario {app!r} (valid names: "
            f"{', '.join(SCENARIOS)})")
    gen = TraceGenerator(spec, machine, access_scale=scale, seed=seed)
    return gen.generate()


@dataclass
class Table1Cell:
    """Empirical result for one (mechanism, scenario) pair."""

    reduces_misses: bool
    miss_reduction: float
    page_operations: float       # per node
    pageop_cycles_per_op: float


def _cell(row: Dict[str, object], base_row: Dict[str, object],
          cfg: SimulationConfig) -> Table1Cell:
    """Derive one matrix cell from the scenario's result rows."""
    # Table 1 is specifically about *capacity/conflict* miss reduction;
    # coherence and cold misses are outside every mechanism's reach.
    base_misses = max(1, int(base_row["capacity_conflict_misses"]))
    reduction = 1.0 - int(row["capacity_conflict_misses"]) / base_misses

    ops = (int(row["migrations"]) + int(row["replications"])
           + int(row["relocations"]))
    per_node_ops = ops / int(row["num_nodes"])

    # per-operation cost is taken from the cost model (the maximum of the
    # Table 3 range, i.e. a full page of blocks to gather/copy/flush)
    costs = cfg.costs
    if row["system"] in ("mig", "rep", "migrep"):
        per_op = costs.soft_trap + costs.gather_max + costs.copy_max
    else:
        per_op = costs.soft_trap + costs.page_alloc_max
    return Table1Cell(
        reduces_misses=reduction >= REDUCTION_THRESHOLD,
        miss_reduction=reduction,
        page_operations=per_node_ops,
        pageop_cycles_per_op=float(per_op),
    )


def run_table1(*, config: Optional[SimulationConfig] = None, scale: float = 0.5,
               seed: int = 0) -> Dict[str, Dict[str, Table1Cell]]:
    """Reproduce Table 1: mechanism -> scenario -> empirical cell."""
    cfg = config if config is not None else base_config(seed=seed)
    rs = run_scenario("table1", config=cfg, scale=scale, seed=seed)
    out: Dict[str, Dict[str, Table1Cell]] = {}
    for mech_label, system in MECHANISMS.items():
        out[mech_label] = {}
        for scen_name in SCENARIOS:
            row = rs.only(app=scen_name, system=system)
            base_row = rs.only(app=scen_name, system="ccnuma")
            out[mech_label][scen_name] = _cell(row, base_row, cfg)
    return out


def render_table1(matrix: Dict[str, Dict[str, Table1Cell]]) -> str:
    """Render the Table 1 matrix as plain text."""
    headers = ["mechanism", "read-only", "r/w low degree", "r/w high degree",
               "page ops/node", "cycles/op"]
    rows = []
    for mech, cells in matrix.items():
        yes_no = ["yes" if cells[s].reduces_misses else "no"
                  for s in ("read_only", "rw_low_degree", "rw_high_degree")]
        ops = max(c.page_operations for c in cells.values())
        per_op = max(c.pageop_cycles_per_op for c in cells.values())
        rows.append([mech, *yes_no, ops, per_op])
    title = "Table 1: capacity/conflict miss reduction opportunity and overhead"
    return title + "\n" + format_table(headers, rows, float_fmt="{:.0f}")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
