"""Durable, content-addressed result store (``ResultStore``, SQLite).

The :class:`~repro.experiments.runner.SweepRunner` memoizes results by a
content-addressed key — ``(trace digest, system, canonical config,
engine)`` — but its memo table dies with the process.  This module
promotes that table to a *durable* store: a single SQLite file holding
one row per completed run, keyed by the exact memo/journal key scheme,
so the in-process memo, the :class:`~repro.experiments.runner.
SweepJournal` and the store all interoperate (a key computed for any one
of them addresses the same run in the others).

Each row carries the full pickled :class:`~repro.experiments.runner.
ExperimentResult` (zlib-compressed, blake2b-checksummed) plus extracted
headline metrics (execution time, remote misses, network traffic — so
``repro store ls``/``export`` never unpickle anything) and provenance:
the engine that produced the run, the kernel backend if any, the
``repro`` package version and the run's wall time.

Durability and concurrency come from SQLite itself: the store opens in
WAL mode (concurrent readers never block the writer and vice versa),
every upsert is one atomic transaction, and a schema-version row in the
``meta`` table lets newer code open and migrate older stores in place
(:data:`SCHEMA_VERSION`, :meth:`ResultStore._migrate`).

A store is wired into sweeps at three levels:

* ``SweepRunner(store=...)`` — cache-missing runs consult the store
  before executing and publish into it after
  (``RunnerStats.store_hits`` / ``store_misses``);
* ``run_scenario(store=...)`` / ``repro exp --store PATH`` — the same,
  per scenario, so a sweep re-run in a *fresh process* reports 100%
  store hits;
* the persistent sweep service (:mod:`repro.experiments.service`) —
  the store is the service's checkpoint, so a killed daemon restarts
  with every completed run already warm.

.. note:: rows embed pickled :class:`ExperimentResult` objects; open
   stores only from paths you trust, like any pickle.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import sqlite3
import threading
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle (runner imports us)
    from repro.experiments.runner import ExperimentResult, RunKey, SweepJournal

#: Environment variable naming the default store file for the CLI.
STORE_ENV_VAR = "REPRO_STORE"

#: Current store schema version.  v1 held key + metrics + payload only;
#: v2 added the provenance columns (``engine_used``, ``backend``,
#: ``package_version``, ``wall_s``, ``created_at``).  Opening a v1 store
#: with v2 code migrates it in place.
SCHEMA_VERSION = 2

#: Provenance columns added by schema v2 (name -> SQL type), in the
#: order the migration adds them.
_V2_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("engine_used", "TEXT"),
    ("backend", "TEXT"),
    ("package_version", "TEXT"),
    ("wall_s", "REAL"),
    ("created_at", "REAL"),
)

_CREATE_META = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""

_CREATE_RESULTS = """
CREATE TABLE IF NOT EXISTS results (
    digest           TEXT NOT NULL,
    system           TEXT NOT NULL,
    config           TEXT NOT NULL,
    engine           TEXT NOT NULL,
    workload         TEXT NOT NULL,
    execution_time   INTEGER NOT NULL,
    remote_misses    INTEGER NOT NULL,
    network_messages INTEGER NOT NULL,
    network_bytes    INTEGER NOT NULL,
    payload          BLOB NOT NULL,
    checksum         TEXT NOT NULL,
    engine_used      TEXT,
    backend          TEXT,
    package_version  TEXT,
    wall_s           REAL,
    created_at       REAL,
    PRIMARY KEY (digest, system, config, engine)
)
"""


class StoreError(RuntimeError):
    """Raised for unusable store files (bad schema, future version)."""


def _checksum(payload: bytes) -> str:
    """Content checksum of one pickled result blob."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _encode(result: "ExperimentResult") -> Tuple[bytes, str]:
    payload = zlib.compress(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    return payload, _checksum(payload)


class ResultStore:
    """SQLite-backed, content-addressed store of completed run results.

    Parameters
    ----------
    path:
        The store file.  Created (with parent directories) if missing;
        an existing store of an older schema version is migrated in
        place on open, and a store written by a *newer* ``repro``
        raises :class:`StoreError` instead of guessing.

    The store is safe for concurrent use from multiple processes (WAL
    mode, atomic upserts, a generous busy timeout) and from multiple
    threads of one process (an internal lock serializes the shared
    connection).  Use as a context manager or call :meth:`close`.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "results.sqlite")
    >>> store = ResultStore(path)
    >>> len(store)
    0
    >>> store.close()
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        #: number of rows served as misses because their payload was corrupt
        self.corrupt_reads = 0
        self._conn = sqlite3.connect(str(self.path), timeout=30.0,
                                     check_same_thread=False)
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema()
        except Exception:
            self._conn.close()
            raise

    # -- schema -------------------------------------------------------------

    def _init_schema(self) -> None:
        with self._conn:
            self._conn.execute(_CREATE_META)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                has_results = self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table' "
                    "AND name='results'").fetchone()
                if has_results:
                    raise StoreError(
                        f"{self.path}: results table without a "
                        "schema_version row — not a repro result store")
                self._conn.execute(_CREATE_RESULTS)
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES "
                    "('schema_version', ?)", (str(SCHEMA_VERSION),))
                return
            version = int(row[0])
            if version > SCHEMA_VERSION:
                raise StoreError(
                    f"{self.path}: store schema v{version} is newer than "
                    f"this repro (v{SCHEMA_VERSION}); upgrade the package")
            if version < SCHEMA_VERSION:
                self._migrate(version)

    def _migrate(self, version: int) -> None:
        """Migrate an older store to :data:`SCHEMA_VERSION` in place.

        Runs inside the caller's transaction.  v1 → v2 adds the
        provenance columns (left NULL for pre-migration rows — their
        runs genuinely carry no recorded provenance).
        """
        if version == 1:
            existing = {r[1] for r in self._conn.execute(
                "PRAGMA table_info(results)")}
            for name, sql_type in _V2_COLUMNS:
                if name not in existing:
                    self._conn.execute(
                        f"ALTER TABLE results ADD COLUMN {name} {sql_type}")
            version = 2
        self._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(version),))

    @property
    def schema_version(self) -> int:
        """Schema version of the open store (always the current one)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        return int(row[0])

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying connection (flushes the WAL)."""
        with self._lock:
            self._conn.close()

    # -- core mapping -------------------------------------------------------

    def put(self, key: "RunKey", result: "ExperimentResult") -> None:
        """Atomically upsert one completed run under its memo key.

        Provenance (executing engine, kernel backend, wall time) is
        read from the result's ``engine_profile`` when present; the
        package version and a wall-clock timestamp are stamped at
        insert time.  Re-putting an existing key replaces the row — the
        simulator is deterministic, so a replacement is byte-identical
        content refreshed with current provenance.
        """
        from repro import __version__

        digest, system, config, engine = key
        payload, checksum = _encode(result)
        profile = getattr(result.stats, "engine_profile", None) or {}
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO results (digest, system, config, engine, "
                "workload, execution_time, remote_misses, network_messages, "
                "network_bytes, payload, checksum, engine_used, backend, "
                "package_version, wall_s, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (digest, system, config, engine) DO UPDATE SET "
                "workload = excluded.workload, "
                "execution_time = excluded.execution_time, "
                "remote_misses = excluded.remote_misses, "
                "network_messages = excluded.network_messages, "
                "network_bytes = excluded.network_bytes, "
                "payload = excluded.payload, "
                "checksum = excluded.checksum, "
                "engine_used = excluded.engine_used, "
                "backend = excluded.backend, "
                "package_version = excluded.package_version, "
                "wall_s = excluded.wall_s, "
                "created_at = excluded.created_at",
                (digest, system, config, engine,
                 result.workload,
                 int(result.stats.execution_time),
                 int(result.stats.total_remote_misses),
                 int(result.stats.network_messages),
                 int(result.stats.network_bytes),
                 payload, checksum,
                 profile.get("engine") or engine,
                 profile.get("backend"),
                 __version__,
                 profile.get("wall_s"),
                 time.time()))

    def get(self, key: "RunKey") -> Optional["ExperimentResult"]:
        """The stored result for ``key``, or ``None``.

        A row whose payload fails its checksum or does not unpickle is
        treated as a miss — the caller recomputes and the next
        :meth:`put` overwrites the corrupt row, so torn writes from a
        killed process self-heal (:attr:`corrupt_reads` counts them;
        :meth:`verify` lists them without recomputing).
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload, checksum FROM results WHERE digest = ? "
                "AND system = ? AND config = ? AND engine = ?",
                key).fetchone()
        if row is None:
            return None
        payload, checksum = row
        try:
            if _checksum(payload) != checksum:
                raise StoreError("checksum mismatch")
            result = pickle.loads(zlib.decompress(payload))
        except Exception:
            self.corrupt_reads += 1
            return None
        return result

    def __contains__(self, key: "RunKey") -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE digest = ? AND system = ? "
                "AND config = ? AND engine = ?", key).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def keys(self) -> Iterator[Tuple[str, str, str, str]]:
        """All stored run keys, in insertion-independent sorted order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT digest, system, config, engine FROM results "
                "ORDER BY digest, system, config, engine").fetchall()
        return iter([tuple(r) for r in rows])

    # -- inspection (``repro store ls`` / ``export``) ------------------------

    def rows(self) -> List[Dict[str, object]]:
        """Metadata of every stored run — no payload is unpickled.

        One JSON-ready dictionary per row: the four key columns, the
        workload name, the extracted headline metrics and the
        provenance columns (``None`` for rows written by a v1 store).
        """
        with self._lock:
            cur = self._conn.execute(
                "SELECT digest, system, config, engine, workload, "
                "execution_time, remote_misses, network_messages, "
                "network_bytes, length(payload), engine_used, backend, "
                "package_version, wall_s, created_at FROM results "
                "ORDER BY created_at IS NULL, created_at, digest, system")
            names = [d[0] for d in cur.description]
            names[names.index("length(payload)")] = "payload_bytes"
            return [dict(zip(names, row)) for row in cur.fetchall()]

    def verify(self) -> Dict[str, object]:
        """Recompute every row's checksum and unpickle every payload.

        Returns ``{"rows": total, "ok": good, "corrupt": [keys...]}``;
        a non-empty ``corrupt`` list means those rows will read as
        misses (and be recomputed/overwritten) rather than poison a
        sweep.
        """
        corrupt: List[Tuple[str, str, str, str]] = []
        total = 0
        with self._lock:
            cur = self._conn.execute(
                "SELECT digest, system, config, engine, payload, checksum "
                "FROM results")
            for digest, system, config, engine, payload, checksum in cur:
                total += 1
                try:
                    if _checksum(payload) != checksum:
                        raise StoreError("checksum mismatch")
                    pickle.loads(zlib.decompress(payload))
                except Exception:
                    corrupt.append((digest, system, config, engine))
        return {"rows": total, "ok": total - len(corrupt),
                "corrupt": corrupt}

    def export_rows(self) -> List[Dict[str, object]]:
        """:meth:`rows` plus each payload as base64 (full fidelity export).

        The export is self-contained: importing a row elsewhere only
        needs ``pickle.loads(zlib.decompress(base64.b64decode(...)))``.
        """
        with self._lock:
            cur = self._conn.execute(
                "SELECT digest, system, config, engine, payload "
                "FROM results")
            payloads = {tuple(row[:4]): base64.b64encode(row[4]).decode()
                        for row in cur.fetchall()}
        out = []
        for row in self.rows():
            key = (row["digest"], row["system"], row["config"], row["engine"])
            row = dict(row)
            row["payload"] = payloads[key]
            del row["payload_bytes"]
            out.append(row)
        return out

    # -- garbage collection --------------------------------------------------

    def gc(self, *, max_age_s: Optional[float] = None,
           digests: Optional[List[str]] = None,
           everything: bool = False,
           dry_run: bool = False) -> List[Tuple[str, str, str, str]]:
        """Delete rows by age or digest prefix; return the affected keys.

        Parameters
        ----------
        max_age_s:
            Delete rows whose ``created_at`` is older than this many
            seconds (rows without a timestamp — migrated v1 rows —
            count as infinitely old).
        digests:
            Delete rows whose trace digest starts with any of these
            (hex) prefixes — e.g. after deleting the trace files of a
            retired workload.
        everything:
            Delete all rows (``repro store gc --all``).
        dry_run:
            Only report what would be deleted.

        With no criterion the call is a no-op — an accidental bare
        ``gc`` must never empty the store.  Deletions are followed by a
        ``VACUUM`` so the file actually shrinks.
        """
        clauses: List[str] = []
        params: List[object] = []
        if everything:
            clauses.append("1=1")
        if max_age_s is not None:
            clauses.append("(created_at IS NULL OR created_at < ?)")
            params.append(time.time() - max_age_s)
        for prefix in digests or ():
            clauses.append("digest LIKE ?")
            params.append(prefix + "%")
        if not clauses:
            return []
        where = " OR ".join(clauses)
        with self._lock:
            victims = [tuple(r) for r in self._conn.execute(
                "SELECT digest, system, config, engine FROM results "
                f"WHERE {where}", params).fetchall()]
            if victims and not dry_run:
                with self._conn:
                    self._conn.execute(
                        f"DELETE FROM results WHERE {where}", params)
                self._conn.execute("VACUUM")
        return victims

    # -- journal reconciliation ----------------------------------------------

    def reconcile_journal(self, journal: "SweepJournal") -> Dict[str, int]:
        """Reconcile a (possibly torn) :class:`SweepJournal` with the store.

        A journal and a store fed by the same sweep can disagree after
        a torn write: a run checkpointed to the journal an instant
        before the process died may never have reached the store (or
        vice versa).  The resolution is fixed: **the store wins on key
        match** (its rows are checksummed; the journal's lenient loader
        may have recovered a stale line), and journal rows the store
        has never seen are **backfilled** into it, so the store is a
        superset of every surviving checkpoint afterwards.

        Returns ``{"journal_rows": .., "backfilled": .., "store_wins": ..}``.
        The journal file itself is not rewritten — it remains an
        append-only log.
        """
        loaded = getattr(journal, "loaded", None) or {}
        backfilled = store_wins = 0
        for key, result in loaded.items():
            if tuple(key) in self:
                store_wins += 1
            else:
                self.put(tuple(key), result)
                backfilled += 1
        return {"journal_rows": len(loaded), "backfilled": backfilled,
                "store_wins": store_wins}

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r}, {len(self)} rows)"


def describe_key(key: "RunKey") -> Dict[str, str]:
    """JSON-ready view of one run key (``repro store ls --json``)."""
    digest, system, config, engine = key
    return {"digest": digest, "system": system, "config": config,
            "engine": engine}


def dumps_export(store: ResultStore) -> str:
    """Full-fidelity JSON export of a store (``repro store export``)."""
    return json.dumps({"schema": SCHEMA_VERSION,
                       "rows": store.export_rows()}, indent=2)
