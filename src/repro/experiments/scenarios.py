"""The built-in scenario registry: every figure/table/ablation as data.

Each of the paper's eight evaluation artifacts — Figures 5-8 and Tables
1-4 — plus this reproduction's ablations and parameter sweeps is declared
here as a ~10-line :class:`~repro.experiments.scenario.Scenario` and
registered into :data:`repro.registry.SCENARIOS`.  They are all executed
by the single :func:`~repro.experiments.scenario.run_scenario` path
(``repro exp <name>`` on the CLI); the classic ``run_figureN`` /
``run_tableN`` functions are compatibility shims over these
declarations.

User code registers additional scenarios with
:func:`repro.registry.register_scenario`; they appear in ``repro list``
and ``repro exp`` immediately.
"""

from __future__ import annotations

import dataclasses

from repro.config import (
    SimulationConfig,
    base_config,
    long_latency_config,
    slow_page_ops_config,
)
from repro.experiments.scenario import ResultSet, Scenario
from repro.experiments import table1 as _table1
from repro.experiments import table2 as _table2
from repro.experiments import table3 as _table3
from repro.experiments.figure5 import FIGURE5_SYSTEMS
from repro.experiments.figure7 import FIGURE7_SYSTEMS
from repro.experiments.figure8 import FIGURE8_SYSTEMS
from repro.kernel.placement import PLACEMENT_NAMES
from repro.registry import register_scenario


def _base(seed: int) -> SimulationConfig:
    return base_config(seed=seed)


# ---------------------------------------------------------------------------
# Figures 5-8
# ---------------------------------------------------------------------------

register_scenario(Scenario(
    name="figure5",
    title="Figure 5: execution time normalized to perfect CC-NUMA",
    description="base performance comparison over the seven applications",
    systems=FIGURE5_SYSTEMS,
    configs={"base": _base},
))

register_scenario(Scenario(
    name="figure6",
    title=("Figure 6: sensitivity to page-operation overhead "
           "(normalized to fast perfect CC-NUMA)"),
    description="fast vs ten-fold slower page operations (Section 6.2)",
    systems=("migrep", "rnuma"),
    configs={"fast": _base,
             "slow": lambda seed: slow_page_ops_config(seed=seed)},
    baseline_config="fast",
))

register_scenario(Scenario(
    name="figure7",
    title="Figure 7: 4x network latency, normalized to perfect CC-NUMA",
    description="sensitivity to network latency (Section 6.3)",
    systems=FIGURE7_SYSTEMS,
    configs={"long": lambda seed: long_latency_config(seed=seed)},
))

register_scenario(Scenario(
    name="figure8",
    title=("Figure 8: R-NUMA page-cache size and the MigRep hybrid "
           "(normalized to perfect CC-NUMA)"),
    description="half-size page cache and the R-NUMA+MigRep hybrid (Section 6.4)",
    systems=FIGURE8_SYSTEMS,
    configs={"base": _base},
))


# ---------------------------------------------------------------------------
# Tables 1-4
# ---------------------------------------------------------------------------

register_scenario(Scenario(
    name="table1",
    title="Table 1: capacity/conflict miss reduction opportunity and overhead",
    description="mechanism opportunity matrix over synthetic sharing scenarios",
    apps=tuple(_table1.SCENARIOS),
    systems=tuple(_table1.MECHANISMS.values()),
    configs={"base": _base},
    baseline="ccnuma",
    default_scale=0.5,
    trace_factory=_table1.scenario_trace,
))

register_scenario(Scenario(
    name="table2",
    title="Table 2: applications, paper inputs, and synthetic stand-ins",
    description="the seven applications and their synthetic substitutions",
    static_rows=lambda ctx: [dataclasses.asdict(r)
                             for r in _table2.run_table2(apps=ctx.apps)],
    renderer=lambda rs: _table2.render_table2(
        [_table2.Table2Row(**row) for row in rs.rows]),
))

register_scenario(Scenario(
    name="table3",
    title="Table 3: base system cost assumptions (paper vs model)",
    description="cost-model constants compared against the paper's Table 3",
    static_rows=lambda ctx: [dataclasses.asdict(r)
                             for r in _table3.run_table3()],
    renderer=lambda rs: _table3.render_table3(
        [_table3.Table3Row(**row) for row in rs.rows]),
))

register_scenario(Scenario(
    name="table4",
    title="Table 4: per-node page operations and remote misses",
    description="page-operation frequency and residual misses per node",
    systems=("ccnuma", "migrep", "rnuma"),
    configs={"base": _base},
    baseline=None,
    renderer=lambda rs: _render_table4(rs),
))


def _render_table4(rs: ResultSet) -> str:
    from repro.experiments.table4 import render_table4, rows_from_resultset
    return render_table4(rows_from_resultset(rs, rs.axes["app"]))


# ---------------------------------------------------------------------------
# Ablations and parameter sweeps beyond the paper
# ---------------------------------------------------------------------------

#: Applications used by default for ablations (one per behaviour class).
ABLATION_APPS = ("barnes", "lu", "radix")


register_scenario(Scenario(
    name="ablation-block-cache",
    title="Ablation: SRAM vs DRAM block cache vs R-NUMA",
    description="large-but-slow DRAM block cache against fine-grain caching",
    apps=ABLATION_APPS,
    systems=("ccnuma", "ccnuma-dram", "rnuma"),
    configs={"base": _base},
    default_scale=0.3,
))

register_scenario(Scenario(
    name="ablation-scoma",
    title="Ablation: unconditional S-COMA vs reactive R-NUMA",
    description="always-allocate S-COMA against reactive relocation",
    apps=ABLATION_APPS,
    systems=("ccnuma", "scoma", "rnuma"),
    configs={"base": _base},
    default_scale=0.3,
))

register_scenario(Scenario(
    name="ablation-placement",
    title="Ablation: initial page-placement policy",
    description="first-touch vs round-robin/interleaved/single-node placement",
    apps=ABLATION_APPS,
    systems=("ccnuma", "migrep", "rnuma"),
    configs={policy: (lambda seed, p=policy:
                      base_config(seed=seed).with_placement(p))
             for policy in PLACEMENT_NAMES},
    default_scale=0.3,
))


def _threshold_config(seed: int, **overrides) -> SimulationConfig:
    cfg = base_config(seed=seed)
    return cfg.with_thresholds(dataclasses.replace(cfg.thresholds, **overrides))


register_scenario(Scenario(
    name="sweep-rnuma-threshold",
    title="Sweep: R-NUMA switching threshold",
    description="relocation threshold around the paper's base value of 32",
    apps=ABLATION_APPS,
    systems=("rnuma",),
    configs={v: (lambda seed, v=v: _threshold_config(seed, rnuma_threshold=v))
             for v in (8, 16, 32, 64, 128)},
    default_scale=0.3,
))

register_scenario(Scenario(
    name="sweep-migrep-threshold",
    title="Sweep: MigRep miss threshold",
    description="migration/replication threshold around the paper's 800",
    apps=ABLATION_APPS,
    systems=("migrep",),
    configs={v: (lambda seed, v=v: _threshold_config(seed, migrep_threshold=v))
             for v in (200, 400, 800, 1600, 3200)},
    default_scale=0.3,
))

def _network_config(seed: int, factor: float) -> SimulationConfig:
    cfg = base_config(seed=seed)
    return cfg.with_costs(cfg.costs.with_network_scale(factor))


def _page_cache_config(seed: int, fraction: float) -> SimulationConfig:
    cfg = base_config(seed=seed)
    return cfg.with_machine(cfg.machine.with_page_cache_fraction(fraction))


register_scenario(Scenario(
    name="sweep-network-latency",
    title="Sweep: network latency factor",
    description="Figure 7 generalised to a latency curve",
    apps=ABLATION_APPS,
    systems=("ccnuma", "migrep", "rnuma"),
    configs={f: (lambda seed, f=f: _network_config(seed, f))
             for f in (1.0, 2.0, 4.0, 8.0)},
    default_scale=0.3,
))

register_scenario(Scenario(
    name="sweep-page-cache",
    title="Sweep: R-NUMA page-cache size",
    description="page-cache capacity as a fraction of the base 2.4 MB",
    apps=ABLATION_APPS,
    systems=("rnuma",),
    configs={f: (lambda seed, f=f: _page_cache_config(seed, f))
             for f in (0.25, 0.5, 1.0, 2.0)},
    default_scale=0.3,
))


# ---------------------------------------------------------------------------
# Decision-policy scenarios (the open POLICIES registry axis)
# ---------------------------------------------------------------------------

#: The built-in decision-policy families compared by the policy scenarios.
POLICY_SCENARIO_POLICIES = ("static-threshold", "competitive", "hysteresis",
                            "cost-model")


def _policy_config(seed: int, name: str) -> SimulationConfig:
    return base_config(seed=seed).with_policies(migrep=name, rnuma=name)


register_scenario(Scenario(
    name="policy-adaptivity",
    title=("Policy adaptivity: static thresholds vs adaptive decision "
           "policies (normalized to perfect CC-NUMA)"),
    description=("the paper's static-threshold rule against the "
                 "competitive/hysteresis/cost-model adaptive policies"),
    systems=("migrep", "rnuma"),
    configs={name: (lambda seed, n=name: _policy_config(seed, n))
             for name in POLICY_SCENARIO_POLICIES},
    baseline_config="static-threshold",
    default_scale=0.3,
))

register_scenario(Scenario(
    name="sweep-policy",
    title="Sweep: page-operation decision policy",
    description="every built-in decision policy on the ablation apps",
    apps=ABLATION_APPS,
    systems=("migrep", "rnuma"),
    configs={name: (lambda seed, n=name: _policy_config(seed, n))
             for name in POLICY_SCENARIO_POLICIES},
    default_scale=0.3,
))
