"""Open registries for systems, workloads, placements and scenarios.

The paper evaluates a closed menagerie of systems over seven fixed
applications; earlier revisions of this package hard-coded both sets in
module-private dictionaries, so adding a design point (a new coherence
protocol, a new placement policy, a new synthetic workload) meant editing
the package.  This module replaces those closed dictionaries with a
single generic :class:`Registry` and four shared instances:

* :data:`SYSTEMS` — named :class:`repro.core.factory.SystemSpec` objects,
* :data:`WORKLOADS` — workload-spec builders
  (``() -> repro.workloads.spec.WorkloadSpec``),
* :data:`PLACEMENTS` — placement-policy constructors
  (``(num_nodes) -> repro.kernel.placement.PlacementPolicy``),
* :data:`SCENARIOS` — declarative experiment plans
  (:class:`repro.experiments.scenario.Scenario`), and
* :data:`POLICIES` — page-operation decision policies
  (:class:`repro.core.decisions.PolicySpec`).

User code registers new entries with the ``register_*`` decorators and
the additions immediately appear in ``SYSTEM_NAMES``, ``repro list``,
sweeps and ``repro exp`` — no package module needs to change::

    from repro import register_workload, register_system, build_system

    @register_workload("pipeline")
    def pipeline_spec() -> WorkloadSpec: ...

    register_system(build_system("rnuma").derive(
        "rnuma-quarter", label="R-NUMA-1/4", page_cache_fraction=0.25))

Lookups are case-insensitive and a failed lookup raises
:class:`UnknownNameError` — a subclass of both :class:`ValueError` (the
documented contract) and :class:`KeyError` (so mapping semantics and
pre-existing ``except KeyError`` callers keep working) — carrying a
difflib "did you mean" suggestion.

This module deliberately imports nothing from the rest of the package so
every domain module can depend on it without cycles.
"""

from __future__ import annotations

import difflib
from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

T = TypeVar("T")


class UnknownNameError(ValueError, KeyError):
    """An unknown name was looked up in a :class:`Registry`.

    Subclasses both :class:`ValueError` (the unified error contract of
    ``build_system`` / ``get_workload`` / ``build_placement``) and
    :class:`KeyError` (so ``registry[name]`` honours the Mapping protocol
    and legacy ``except KeyError`` handlers continue to work).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.message


class DuplicateNameError(ValueError):
    """A name was registered twice without ``overwrite=True``."""


def _normalize(name: str) -> str:
    return name.strip().lower()


class Registry(Mapping[str, T], Generic[T]):
    """An ordered, case-insensitive mapping of names to registered objects.

    Parameters
    ----------
    kind:
        Human-readable singular noun used in error messages
        (``"system"``, ``"workload"``, ...).

    The registry is a :class:`Mapping`, so ``name in registry``,
    ``len(registry)``, iteration (in registration order) and
    ``dict(registry)`` all behave as expected.  :meth:`resolve` is the
    lookup used by the public builders; it normalises the name and raises
    :class:`UnknownNameError` with a did-you-mean suggestion on a miss.

    Examples
    --------
    >>> reg = Registry("color")
    >>> reg.register("Red", "#f00")
    '#f00'
    >>> reg.resolve("red")          # lookups are case-insensitive
    '#f00'
    >>> "RED" in reg
    True
    >>> reg.names()
    ('red',)
    >>> len(reg)
    1
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, obj: T, *, overwrite: bool = False) -> T:
        """Register ``obj`` under ``name``.

        Parameters
        ----------
        name:
            Registration key; normalised (stripped, lower-cased) before
            storage, so later lookups are case-insensitive.
        obj:
            The object to register.
        overwrite:
            Replace an existing entry in place (keeping its original
            position in the registration order) instead of raising.

        Returns
        -------
        object
            ``obj`` unchanged, so a registration composes as an
            expression (and the ``register_*`` decorators can return the
            decorated object).

        Raises
        ------
        DuplicateNameError
            When the name is taken and ``overwrite`` is False.
        ValueError
            When the name is empty.

        Examples
        --------
        >>> reg = Registry("thing")
        >>> reg.register("a", 1)
        1
        >>> reg.register("a", 2)
        Traceback (most recent call last):
            ...
        repro.registry.DuplicateNameError: thing 'a' is already \
registered; pass overwrite=True to replace it
        >>> reg.register("a", 2, overwrite=True)
        2
        """
        key = _normalize(name)
        if not key:
            raise ValueError(f"{self.kind} name must be non-empty")
        if key in self._entries and not overwrite:
            raise DuplicateNameError(
                f"{self.kind} {name!r} is already registered; pass "
                f"overwrite=True to replace it")
        self._entries[key] = obj
        return obj

    def unregister(self, name: str) -> T:
        """Remove and return the entry for ``name`` (used mainly by tests)."""
        key = _normalize(name)
        if key not in self._entries:
            raise self._unknown(name)
        return self._entries.pop(key)

    # -- lookup -------------------------------------------------------------

    def resolve(self, name: str) -> T:
        """Return the object registered under ``name`` (case-insensitive).

        Parameters
        ----------
        name:
            The name to look up; normalised like :meth:`register`.

        Returns
        -------
        object
            The registered object.

        Raises
        ------
        UnknownNameError
            A ``ValueError`` (and ``KeyError``) listing the valid names
            and, when a near-miss exists, a "did you mean" suggestion.

        Examples
        --------
        >>> reg = Registry("color")
        >>> _ = reg.register("red", "#f00")
        >>> reg.resolve("RED")
        '#f00'
        >>> reg.resolve("rad")
        Traceback (most recent call last):
            ...
        repro.registry.UnknownNameError: unknown color 'rad' — did you \
mean 'red'? (valid color names: red)
        """
        obj = self._entries.get(_normalize(name))
        if obj is None:
            raise self._unknown(name)
        return obj

    def _unknown(self, name: str) -> UnknownNameError:
        hint = ""
        close = difflib.get_close_matches(_normalize(name), self._entries, n=1)
        if close:
            hint = f" — did you mean {close[0]!r}?"
        return UnknownNameError(
            f"unknown {self.kind} {name!r}{hint} "
            f"(valid {self.kind} names: {', '.join(self._entries)})")

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> T:
        return self.resolve(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and _normalize(name) in self._entries

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self._entries)})"


class NamesView:
    """A live, tuple-like view of a registry's names.

    ``repro.SYSTEM_NAMES`` and friends were tuples frozen at import time;
    this view keeps their tuple ergonomics (iteration, ``in``, ``len``,
    indexing, equality against sequences) while always reflecting the
    current registry contents, so a system registered by user code
    immediately appears everywhere the name list is consumed.
    """

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __getitem__(self, index):
        return self._registry.names()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list, NamesView)):
            return tuple(self) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return repr(self._registry.names())


# ---------------------------------------------------------------------------
# The shared registries (populated by the domain modules on import)
# ---------------------------------------------------------------------------

#: Named system configurations (:class:`repro.core.factory.SystemSpec`).
SYSTEMS: Registry = Registry("system")

#: Workload-spec builders (``() -> WorkloadSpec``), keyed by application name.
WORKLOADS: Registry = Registry("workload")

#: Placement-policy constructors (``(num_nodes) -> PlacementPolicy``).
PLACEMENTS: Registry = Registry("placement policy")

#: Declarative experiment plans (:class:`repro.experiments.scenario.Scenario`).
SCENARIOS: Registry = Registry("scenario")

#: Page-operation decision policies (:class:`repro.core.decisions.PolicySpec`).
POLICIES: Registry = Registry("policy")


# ---------------------------------------------------------------------------
# Registration decorators
# ---------------------------------------------------------------------------


def register_system(spec=None, /, name: Optional[str] = None, *,
                    overwrite: bool = False, **spec_kwargs):
    """Register a system, as a function call or a decorator.

    * ``register_system(spec)`` registers an existing
      :class:`~repro.core.factory.SystemSpec` under ``spec.name``.
    * ``@register_system("mysys", label="My System", ...)`` decorates a
      protocol factory (``(machine) -> DSMProtocol``) and builds the
      :class:`SystemSpec` from the keyword arguments; the factory is
      returned unchanged so a decorated class stays usable.
    """
    from repro.core.factory import SystemSpec

    if isinstance(spec, SystemSpec):
        return SYSTEMS.register(spec.name, spec, overwrite=overwrite)
    if isinstance(spec, str) and name is None:
        spec, name = None, spec
    if spec is not None:
        raise TypeError("register_system takes a SystemSpec or is used as "
                        "@register_system(name, **spec_kwargs)")
    if name is None:
        raise TypeError("register_system requires a system name")

    def decorator(factory):
        built = SystemSpec(name=name, protocol_factory=factory,
                           label=spec_kwargs.pop("label", name), **spec_kwargs)
        SYSTEMS.register(name, built, overwrite=overwrite)
        return factory

    return decorator


def register_workload(name_or_builder=None, /, *, name: Optional[str] = None,
                      overwrite: bool = False):
    """Register a workload-spec builder, as a decorator or a function call.

    * ``@register_workload("pipeline")`` (or bare ``@register_workload``)
      decorates a builder ``() -> WorkloadSpec``; the name defaults to the
      builder's ``__name__`` with a trailing ``_spec``/``build_`` stripped.
    * ``register_workload(spec)`` registers a concrete ``WorkloadSpec``
      under ``spec.name`` by wrapping it in a trivial builder.
    """
    def derive_name(builder) -> str:
        n = builder.__name__
        for prefix in ("build_",):
            if n.startswith(prefix):
                n = n[len(prefix):]
        for suffix in ("_spec", "_workload"):
            if n.endswith(suffix):
                n = n[: -len(suffix)]
        return n

    def decorator(builder, explicit: Optional[str] = None):
        WORKLOADS.register(explicit or name or derive_name(builder), builder,
                           overwrite=overwrite)
        return builder

    if name_or_builder is None:
        return decorator
    if isinstance(name_or_builder, str):
        explicit = name_or_builder
        return lambda builder: decorator(builder, explicit)
    if callable(name_or_builder):
        return decorator(name_or_builder)
    # a concrete WorkloadSpec-like object carrying .name
    spec = name_or_builder
    WORKLOADS.register(name or spec.name, lambda: spec, overwrite=overwrite)
    return spec


def register_placement(cls=None, /, name: Optional[str] = None, *,
                       overwrite: bool = False):
    """Register a placement policy class/constructor.

    Use bare (``@register_placement``, taking the name from the class's
    ``name`` attribute) or with an explicit name
    (``@register_placement("my-policy")``).  The constructor must accept
    ``(num_nodes)``.
    """
    if isinstance(cls, str) and name is None:
        cls, name = None, cls

    def decorator(ctor):
        PLACEMENTS.register(name or ctor.name, ctor, overwrite=overwrite)
        return ctor

    return decorator if cls is None else decorator(cls)


def register_scenario(scenario=None, /, *, overwrite: bool = False):
    """Register a :class:`~repro.experiments.scenario.Scenario`.

    Works as a plain call (``register_scenario(scenario)``) or as a
    decorator on a zero-argument scenario-builder function
    (``@register_scenario`` above ``def my_scenario() -> Scenario``).
    """
    def register(obj):
        built = obj() if callable(obj) else obj
        SCENARIOS.register(built.name, built, overwrite=overwrite)
        return built

    if scenario is None:
        return register
    return register(scenario)


def register_policy(spec=None, /, *, overwrite: bool = False):
    """Register a page-operation decision policy.

    Parameters
    ----------
    spec:
        A :class:`~repro.core.decisions.PolicySpec` (or any object with a
        ``name`` attribute and a ``build(role, config, **kwargs)``
        method), or ``None`` when used as a decorator.
    overwrite:
        Replace an existing registration of the same name.

    Returns
    -------
    object
        The registered spec (so the call composes as an expression).

    Works as a plain call (``register_policy(spec)``) or as a decorator
    on a zero-argument builder function returning the spec
    (``@register_policy`` above ``def my_policy() -> PolicySpec``).  The
    registered name immediately appears in
    :data:`repro.core.decisions.POLICY_NAMES`, ``repro list`` and the
    ``--policy`` CLI options.
    """
    def register(obj):
        built = obj() if callable(obj) and not hasattr(obj, "name") else obj
        POLICIES.register(built.name, built, overwrite=overwrite)
        return built

    if spec is None:
        return register
    return register(spec)
