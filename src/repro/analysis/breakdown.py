"""Where does the time go?  Stall-category breakdown across systems.

The paper explains its execution-time results in terms of *which component
of processor time* each technique changes: CC-NUMA's slowdown is remote
miss stall, MigRep trades some of it for (infrequent) page-gathering
overhead, R-NUMA trades more of it for (frequent but cheap) relocation
overhead, and Section 6.2's slow-page-operation study is entirely about
the page-operation component growing.  The simulator charges every cycle
to a :class:`repro.stats.timing.StallKind`; this module turns those
charges into comparable breakdowns:

* :func:`stall_breakdown` — one run's cycles per category, absolute and as
  a fraction of total processor time;
* :func:`compare_systems` — several systems' breakdowns normalized to a
  common baseline's total, which is how one reads statements like
  "R-NUMA converts remote-miss stall into page-operation overhead".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.stats.timing import StallKind


@dataclass
class StallBreakdown:
    """Processor-time breakdown of one run."""

    workload: str
    system: str
    cycles: Dict[StallKind, int]

    @property
    def total_cycles(self) -> int:
        """Total processor cycles accounted across all categories."""
        return sum(self.cycles.values())

    def fraction(self, kind: StallKind) -> float:
        """Fraction of accounted processor time spent in ``kind``."""
        total = self.total_cycles
        return self.cycles.get(kind, 0) / total if total else 0.0

    def memory_stall_cycles(self) -> int:
        """Cycles stalled on the memory system (everything but compute/barrier)."""
        return sum(c for k, c in self.cycles.items()
                   if k not in (StallKind.COMPUTE, StallKind.BARRIER))

    def page_op_cycles(self) -> int:
        """Cycles spent in page operations and the faults that trigger them."""
        return (self.cycles.get(StallKind.PAGE_OP, 0)
                + self.cycles.get(StallKind.MAPPING_FAULT, 0))

    def summary(self) -> Dict[str, object]:
        """Flat dictionary (exporters and reports)."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "total_cycles": self.total_cycles,
        }
        for kind in StallKind:
            out[f"cycles_{kind.value}"] = self.cycles.get(kind, 0)
            out[f"fraction_{kind.value}"] = round(self.fraction(kind), 4)
        return out


def stall_breakdown(result) -> StallBreakdown:
    """Build a :class:`StallBreakdown` from an experiment result.

    ``result`` is a :class:`repro.experiments.runner.ExperimentResult`; the
    machine records the aggregate stall categories in
    ``result.stats.stall_breakdown`` at the end of the run.
    """
    raw = getattr(result.stats, "stall_breakdown", {}) or {}
    cycles = {kind: int(raw.get(kind, 0)) for kind in StallKind
              if raw.get(kind, 0)}
    return StallBreakdown(workload=result.workload, system=result.system,
                          cycles=cycles)


def compare_systems(breakdowns: Mapping[str, StallBreakdown],
                    baseline: str) -> Dict[str, Dict[str, float]]:
    """Normalise several systems' stall categories to one baseline's total.

    Every system's per-category cycles are divided by the *baseline*
    system's total processor time, so the rows are directly comparable:
    a system that is 1.4x the baseline shows categories summing to 1.4.
    """
    if baseline not in breakdowns:
        raise KeyError(f"baseline {baseline!r} not among {sorted(breakdowns)}")
    base_total = breakdowns[baseline].total_cycles or 1
    out: Dict[str, Dict[str, float]] = {}
    for name, bd in breakdowns.items():
        row = {kind.value: bd.cycles.get(kind, 0) / base_total
               for kind in StallKind if bd.cycles.get(kind, 0)}
        row["total"] = bd.total_cycles / base_total
        out[name] = row
    return out


def breakdown_rows(breakdowns: Mapping[str, StallBreakdown]) -> List[Dict[str, object]]:
    """Flatten several breakdowns into exporter-ready rows."""
    return [bd.summary() for bd in breakdowns.values()]
