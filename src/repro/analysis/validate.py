"""Codified versions of the paper's qualitative claims.

EXPERIMENTS.md reports, for every table and figure, the paper's claim next
to the value this reproduction measures.  To keep that comparison honest
(and regression-tested) the claims are expressed as code: each checker
takes the measured data in the same shape the experiment modules produce
and returns a list of :class:`ShapeCheck` records saying which claims hold.

The claims themselves come from Section 6 of the paper:

* Figure 5 — CC-NUMA is ~60 % slower than perfect; MigRep improves on
  CC-NUMA by ~20 % on average; R-NUMA improves by ~40 % and is best;
  R-NUMA-Inf is at least as good as R-NUMA; Mig alone does not help
  barnes; lu's gain comes mostly from replication.
* Table 4 — MigRep page operations are far less frequent than R-NUMA
  relocations; R-NUMA leaves the fewest capacity/conflict misses.
* Figure 6 — slow page operations hurt R-NUMA more than MigRep.
* Figure 7 — at 4x network latency CC-NUMA degrades most, R-NUMA least.
* Figure 8 — halving the page cache hurts R-NUMA little except under
  pressure, and adding MigRep to R-NUMA-1/2 does not recover the loss.

The checkers accept tolerances because the reproduction runs synthetic
traces on a scaled-down machine: the *orderings* are asserted tightly, the
*magnitudes* loosely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of checking one qualitative claim of the paper."""

    claim: str
    passed: bool
    measured: str
    expected: str

    def as_row(self) -> Dict[str, str]:
        """Row for Markdown/CSV export."""
        return {
            "claim": self.claim,
            "result": "pass" if self.passed else "FAIL",
            "expected": self.expected,
            "measured": self.measured,
        }


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _mean_over_apps(per_app: Mapping[str, Mapping[str, float]], system: str) -> float:
    return _mean([times[system] for times in per_app.values() if system in times])


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------


def check_figure5_shape(per_app: Mapping[str, Mapping[str, float]],
                        *, tolerance: float = 0.05) -> List[ShapeCheck]:
    """Check the Section 6.1 claims on Figure 5 data.

    ``per_app`` maps application name to {system: normalized time}, as
    produced by :func:`repro.experiments.figure5.run_figure5`.
    """
    checks: List[ShapeCheck] = []
    cc = _mean_over_apps(per_app, "ccnuma")
    migrep = _mean_over_apps(per_app, "migrep")
    rnuma = _mean_over_apps(per_app, "rnuma")
    rnuma_inf = _mean_over_apps(per_app, "rnuma-inf")

    checks.append(ShapeCheck(
        claim="CC-NUMA is substantially slower than perfect CC-NUMA (~1.6x in the paper)",
        passed=cc >= 1.25,
        measured=f"mean CC-NUMA = {cc:.2f}x",
        expected=">= 1.25x (paper: ~1.6x)",
    ))
    checks.append(ShapeCheck(
        claim="MigRep improves on CC-NUMA on average (~20% in the paper)",
        passed=migrep <= cc * (1.0 - 0.05),
        measured=f"MigRep {migrep:.2f}x vs CC-NUMA {cc:.2f}x "
                 f"({(1 - migrep / cc) * 100:.0f}% better)",
        expected=">= 5% average improvement (paper: ~20%)",
    ))
    checks.append(ShapeCheck(
        claim="R-NUMA improves on CC-NUMA by more than MigRep does (~40% vs ~20%)",
        passed=rnuma <= migrep + tolerance and rnuma <= cc * (1.0 - 0.15),
        measured=f"R-NUMA {rnuma:.2f}x vs MigRep {migrep:.2f}x vs CC-NUMA {cc:.2f}x",
        expected="R-NUMA <= MigRep and >= 15% better than CC-NUMA",
    ))
    checks.append(ShapeCheck(
        claim="R-NUMA-Inf subsumes R-NUMA (at least as good everywhere on average)",
        passed=rnuma_inf <= rnuma + tolerance,
        measured=f"R-NUMA-Inf {rnuma_inf:.2f}x vs R-NUMA {rnuma:.2f}x",
        expected="R-NUMA-Inf <= R-NUMA (+tolerance)",
    ))

    if "barnes" in per_app and "mig" in per_app["barnes"]:
        barnes = per_app["barnes"]
        checks.append(ShapeCheck(
            claim="Mig alone does not help barnes (it migrates read-only pages)",
            passed=barnes["mig"] >= barnes["migrep"] - tolerance,
            measured=f"barnes: Mig {barnes['mig']:.2f}x, MigRep {barnes['migrep']:.2f}x",
            expected="Mig >= MigRep on barnes",
        ))
    if "lu" in per_app and "rep" in per_app["lu"] and "mig" in per_app["lu"]:
        lu = per_app["lu"]
        checks.append(ShapeCheck(
            claim="lu benefits mainly from replication (read phase of the matrix)",
            passed=lu["rep"] <= lu["mig"] + tolerance,
            measured=f"lu: Rep {lu['rep']:.2f}x, Mig {lu['mig']:.2f}x",
            expected="Rep <= Mig on lu",
        ))
    return checks


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------


def check_table4_shape(rows: Sequence,
                       *, min_ratio: float = 1.5) -> List[ShapeCheck]:
    """Check the Table 4 claims.

    ``rows`` is the list of :class:`repro.experiments.table4.Table4Row`
    produced by :func:`repro.experiments.table4.run_table4` (any object
    with the same attributes works).
    """
    checks: List[ShapeCheck] = []
    reloc = _mean([r.relocations_per_node for r in rows])
    migrep_ops = _mean([r.migrations_per_node + r.replications_per_node
                        for r in rows])
    checks.append(ShapeCheck(
        claim="R-NUMA relocations are noticeably more frequent than MigRep "
              "page operations (paper mean ratio ~3x, up to three orders of "
              "magnitude per application)",
        passed=reloc >= migrep_ops * min_ratio,
        measured=f"mean relocations/node {reloc:.0f} vs MigRep ops/node {migrep_ops:.0f}",
        expected=f"relocations >= {min_ratio:.1f}x MigRep operations",
    ))

    cc = _mean([r.capacity_conflict["ccnuma"] for r in rows])
    mig = _mean([r.capacity_conflict["migrep"] for r in rows])
    rn = _mean([r.capacity_conflict["rnuma"] for r in rows])
    checks.append(ShapeCheck(
        claim="MigRep reduces capacity/conflict misses below CC-NUMA",
        passed=mig <= cc,
        measured=f"capacity/conflict per node: CC-NUMA {cc:.0f}, MigRep {mig:.0f}",
        expected="MigRep <= CC-NUMA",
    ))
    checks.append(ShapeCheck(
        claim="R-NUMA leaves the fewest capacity/conflict misses",
        passed=rn <= mig and rn <= cc,
        measured=f"capacity/conflict per node: CC-NUMA {cc:.0f}, MigRep {mig:.0f}, R-NUMA {rn:.0f}",
        expected="R-NUMA <= MigRep <= CC-NUMA",
    ))
    return checks


# ---------------------------------------------------------------------------
# Figures 6-8
# ---------------------------------------------------------------------------


def check_figure6_shape(per_app: Mapping[str, Mapping[str, float]]) -> List[ShapeCheck]:
    """Check the Section 6.2 claim: slow page ops hurt R-NUMA more than MigRep.

    ``per_app`` maps application -> series dict with keys ``migrep-fast``,
    ``migrep-slow``, ``rnuma-fast`` and ``rnuma-slow``, as produced by
    :func:`repro.experiments.figure6.run_figure6`.
    """
    mig_fast = _mean_over_apps(per_app, "migrep-fast")
    mig_slow = _mean_over_apps(per_app, "migrep-slow")
    rn_fast = _mean_over_apps(per_app, "rnuma-fast")
    rn_slow = _mean_over_apps(per_app, "rnuma-slow")
    mig_delta = mig_slow - mig_fast
    rn_delta = rn_slow - rn_fast
    return [
        ShapeCheck(
            claim="Slow page operations degrade R-NUMA more than MigRep on average",
            passed=rn_delta >= mig_delta,
            measured=(f"slow-fast delta: R-NUMA +{rn_delta:.2f}, "
                      f"MigRep +{mig_delta:.2f}"),
            expected="R-NUMA delta >= MigRep delta",
        ),
        ShapeCheck(
            claim="Slow page operations never speed a system up",
            passed=rn_delta >= -0.05 and mig_delta >= -0.05,
            measured=f"deltas: R-NUMA {rn_delta:+.2f}, MigRep {mig_delta:+.2f}",
            expected="both deltas >= 0 (small tolerance)",
        ),
    ]


def check_figure7_shape(base: Mapping[str, Mapping[str, float]],
                        long: Mapping[str, Mapping[str, float]]) -> List[ShapeCheck]:
    """Check the Section 6.3 claim about sensitivity to network latency."""
    checks: List[ShapeCheck] = []
    deltas: Dict[str, float] = {}
    for system in ("ccnuma", "migrep", "rnuma"):
        deltas[system] = (_mean_over_apps(long, system)
                          - _mean_over_apps(base, system))
    checks.append(ShapeCheck(
        claim="Longer network latency hurts CC-NUMA the most and R-NUMA the least",
        passed=deltas["ccnuma"] >= deltas["migrep"] >= deltas["rnuma"],
        measured=", ".join(f"{s}: +{d:.2f}" for s, d in deltas.items()),
        expected="delta(ccnuma) >= delta(migrep) >= delta(rnuma)",
    ))
    checks.append(ShapeCheck(
        claim="All systems slow down (relative to perfect) at 4x network latency",
        passed=all(d >= -0.05 for d in deltas.values()),
        measured=", ".join(f"{s}: {d:+.2f}" for s, d in deltas.items()),
        expected="every delta >= 0 (small tolerance)",
    ))
    return checks


def check_figure8_shape(per_app: Mapping[str, Mapping[str, float]],
                        *, tolerance: float = 0.05) -> List[ShapeCheck]:
    """Check the Section 6.4 claims on the R-NUMA+MigRep hybrid study."""
    rn = _mean_over_apps(per_app, "rnuma")
    half = _mean_over_apps(per_app, "rnuma-half")
    half_migrep = _mean_over_apps(per_app, "rnuma-half-migrep")
    return [
        ShapeCheck(
            claim="Halving the page cache does not catastrophically hurt R-NUMA on average",
            passed=half <= rn + 0.5,
            measured=f"R-NUMA {rn:.2f}x vs R-NUMA-1/2 {half:.2f}x",
            expected="R-NUMA-1/2 within +0.5x of R-NUMA",
        ),
        ShapeCheck(
            claim="Adding MigRep to R-NUMA-1/2 does not recover the loss "
                  "(counter interference, Section 6.4)",
            passed=half_migrep >= half - tolerance,
            measured=f"R-NUMA-1/2 {half:.2f}x vs R-NUMA-1/2+MigRep {half_migrep:.2f}x",
            expected="R-NUMA-1/2+MigRep >= R-NUMA-1/2 (- tolerance)",
        ),
    ]


def all_passed(checks: Sequence[ShapeCheck]) -> bool:
    """True when every check in ``checks`` passed."""
    return all(c.passed for c in checks)


def failed_claims(checks: Sequence[ShapeCheck]) -> List[str]:
    """Claims that did not hold (empty list when everything passed)."""
    return [c.claim for c in checks if not c.passed]
