"""Generic parameter-sweep harness for sensitivity and ablation studies.

Sections 6.2-6.4 of the paper are sensitivity studies: they re-run the
same workloads while varying one knob (page-operation cost, network
latency, page-cache size).  DESIGN.md additionally calls for ablation
benches over the design choices this reproduction makes explicit
(thresholds, placement policy, block-cache geometry).  All of those share
the same structure — *for each value of a parameter, run a set of systems
on a set of applications and normalise against perfect CC-NUMA* — which is
what :func:`run_sweep` implements.

A sweep is described by a callable ``configure(value) -> SimulationConfig``
(how the knob maps onto a configuration) plus the usual application/system
lists.  Internally :func:`run_sweep` builds an ad-hoc
:class:`repro.experiments.scenario.Scenario` whose *config axis* is the
swept values and executes it through the single
:func:`~repro.experiments.scenario.run_scenario` path (parallel,
memoized).  The result is a flat list of :class:`SweepPoint` records that
the exporters (:mod:`repro.stats.export`) can turn into CSV/Markdown and
the ablation benchmarks can assert shapes on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.config import SimulationConfig, base_config
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import Scenario, run_scenario


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, application, system) measurement."""

    parameter: str
    value: object
    app: str
    system: str
    normalized_time: float
    execution_time: int
    remote_misses: int
    capacity_conflict_misses: int
    page_operations: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary (exporters, dataframes, CSV rows)."""
        return {
            "parameter": self.parameter,
            "value": self.value,
            "app": self.app,
            "system": self.system,
            "normalized_time": round(self.normalized_time, 4),
            "execution_time": self.execution_time,
            "remote_misses": self.remote_misses,
            "capacity_conflict_misses": self.capacity_conflict_misses,
            "page_operations": round(self.page_operations, 2),
        }


@dataclass
class SweepResult:
    """All measurements of one sweep."""

    parameter: str
    values: List[object]
    apps: List[str]
    systems: List[str]
    points: List[SweepPoint] = field(default_factory=list)

    def filter(self, *, value: Optional[object] = None,
               app: Optional[str] = None,
               system: Optional[str] = None) -> List[SweepPoint]:
        """Points matching every given selector."""
        out = self.points
        if value is not None:
            out = [p for p in out if p.value == value]
        if app is not None:
            out = [p for p in out if p.app == app]
        if system is not None:
            out = [p for p in out if p.system == system]
        return list(out)

    def series(self, app: str, system: str) -> List[tuple]:
        """(value, normalized_time) pairs for one app/system, in sweep order."""
        points = {p.value: p.normalized_time
                  for p in self.filter(app=app, system=system)}
        return [(v, points[v]) for v in self.values if v in points]

    def mean_normalized(self, system: str, value: object) -> float:
        """Mean normalized time of ``system`` at ``value`` across apps."""
        points = self.filter(system=system, value=value)
        if not points:
            raise KeyError(f"no sweep points for system={system!r} value={value!r}")
        return sum(p.normalized_time for p in points) / len(points)

    def rows(self) -> List[Dict[str, object]]:
        """All points as flat dictionaries (exporter input)."""
        return [p.as_dict() for p in self.points]


def run_sweep(parameter: str,
              values: Sequence[object],
              configure: Callable[[object], SimulationConfig],
              *,
              apps: Sequence[str],
              systems: Sequence[str],
              scale: float = 0.3,
              seed: int = 0,
              baseline: str = "perfect",
              runner: Optional[SweepRunner] = None) -> SweepResult:
    """Run ``systems`` on ``apps`` for every parameter value.

    Parameters
    ----------
    parameter:
        Name of the swept knob (reports only).
    values:
        Values to sweep, in order.
    configure:
        Maps a value to the :class:`SimulationConfig` to run under.
    apps / systems:
        Workload and system names (see :data:`repro.core.factory.SYSTEM_NAMES`).
    scale:
        Workload scale passed to :func:`repro.workloads.get_workload`
        (sweeps multiply runs, so they default to smaller traces).
    baseline:
        System used for normalisation at *each* parameter value (the paper
        normalises every sensitivity figure against perfect CC-NUMA run
        under the same configuration).
    runner:
        Shared :class:`SweepRunner`; a private one is created (and closed)
        when omitted.  Every (value, app, system) run is independent, so
        the whole sweep is submitted as one batch — memoized, and executed
        across worker processes when the runner has ``jobs > 1``.
    """
    if not values:
        raise ValueError("a sweep needs at least one parameter value")
    scenario = Scenario(
        name=f"sweep-{parameter}",
        title=f"Sweep: {parameter}",
        apps=tuple(apps),
        systems=tuple(systems),
        configs={value: configure(value) for value in values},
        baseline=baseline,
        default_scale=scale,
    )
    rs = run_scenario(scenario, scale=scale, seed=seed, runner=runner)

    result = SweepResult(parameter=parameter, values=list(values),
                         apps=list(apps), systems=list(systems))
    for value in values:
        for app in apps:
            for system in systems:
                if system == baseline:
                    continue
                row = rs.only(app=app, system=system, config=value)
                result.points.append(SweepPoint(
                    parameter=parameter,
                    value=value,
                    app=app,
                    system=system,
                    normalized_time=row["normalized_time"],
                    execution_time=row["execution_time"],
                    remote_misses=row["remote_misses"],
                    capacity_conflict_misses=row["capacity_conflict_misses"],
                    page_operations=(row["per_node_migrations"]
                                     + row["per_node_replications"]
                                     + row["per_node_relocations"]),
                ))
    return result


# ---------------------------------------------------------------------------
# Ready-made sweep configurations used by the ablation benchmarks/examples
# ---------------------------------------------------------------------------


def rnuma_threshold_sweep(values: Sequence[int], *, seed: int = 0,
                          apps: Sequence[str], scale: float = 0.3,
                          runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the R-NUMA switching threshold (paper base value: 32)."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_thresholds(dataclasses.replace(
            cfg.thresholds, rnuma_threshold=int(value)))
    return run_sweep("rnuma_threshold", list(values), configure,
                     apps=apps, systems=["rnuma"], scale=scale, seed=seed,
                     runner=runner)


def migrep_threshold_sweep(values: Sequence[int], *, seed: int = 0,
                           apps: Sequence[str], scale: float = 0.3,
                           runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the MigRep miss threshold (paper base value: 800)."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_thresholds(dataclasses.replace(
            cfg.thresholds, migrep_threshold=int(value)))
    return run_sweep("migrep_threshold", list(values), configure,
                     apps=apps, systems=["migrep"], scale=scale, seed=seed,
                     runner=runner)


def network_latency_sweep(factors: Sequence[float], *, seed: int = 0,
                          apps: Sequence[str],
                          systems: Sequence[str] = ("ccnuma", "migrep", "rnuma"),
                          scale: float = 0.3,
                          runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the network-latency factor (Figure 7 generalised to a curve)."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_costs(cfg.costs.with_network_scale(float(value)))
    return run_sweep("network_factor", list(factors), configure,
                     apps=apps, systems=list(systems), scale=scale, seed=seed,
                     runner=runner)


def page_cache_sweep(fractions: Sequence[float], *, seed: int = 0,
                     apps: Sequence[str], scale: float = 0.3,
                     runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the R-NUMA page-cache size as a fraction of the base 2.4 MB."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_machine(cfg.machine.with_page_cache_fraction(float(value)))
    return run_sweep("page_cache_fraction", list(fractions), configure,
                     apps=apps, systems=["rnuma"], scale=scale, seed=seed,
                     runner=runner)


def placement_sweep(policies: Sequence[str], *, seed: int = 0,
                    apps: Sequence[str],
                    systems: Sequence[str] = ("ccnuma", "migrep", "rnuma"),
                    scale: float = 0.3,
                    runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the initial placement policy (first-touch, round-robin, ...)."""
    def configure(value: object) -> SimulationConfig:
        return base_config(seed=seed).with_placement(str(value))
    return run_sweep("placement", list(policies), configure,
                     apps=apps, systems=list(systems), scale=scale, seed=seed,
                     runner=runner)


def policy_sweep(policies: Sequence[str], *, seed: int = 0,
                 apps: Sequence[str],
                 systems: Sequence[str] = ("migrep", "rnuma"),
                 scale: float = 0.3,
                 runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the page-operation decision policy.

    Parameters
    ----------
    policies:
        Decision-policy names from the open registry (see
        :data:`repro.core.decisions.POLICY_NAMES`) — the static paper
        rule plus the adaptive families, and any user-registered ones.
    apps / systems / scale / seed / runner:
        As for every other sweep; the default systems are the two that
        actually consult policies (``migrep`` evaluates the migrep role,
        ``rnuma`` the rnuma role; hybrids evaluate both).

    Each policy name is applied to every role its family supports (via
    :func:`repro.core.decisions.apply_policy` — single-role families
    leave the other role at its default), so a single sweep value
    compares, per system, how the family's decisions move traffic
    relative to perfect CC-NUMA.
    """
    from repro.core.decisions import apply_policy

    def configure(value: object) -> SimulationConfig:
        return apply_policy(base_config(seed=seed), str(value))
    return run_sweep("policy", list(policies), configure,
                     apps=apps, systems=list(systems), scale=scale, seed=seed,
                     runner=runner)
