"""Generic parameter-sweep harness for sensitivity and ablation studies.

Sections 6.2-6.4 of the paper are sensitivity studies: they re-run the
same workloads while varying one knob (page-operation cost, network
latency, page-cache size).  DESIGN.md additionally calls for ablation
benches over the design choices this reproduction makes explicit
(thresholds, placement policy, block-cache geometry).  All of those share
the same structure — *for each value of a parameter, run a set of systems
on a set of applications and normalise against perfect CC-NUMA* — which is
what :func:`run_sweep` implements.

A sweep is described by a callable ``configure(value) -> SimulationConfig``
(how the knob maps onto a configuration) plus the usual application/system
lists.  The result is a flat list of :class:`SweepPoint` records that the
exporters (:mod:`repro.stats.export`) can turn into CSV/Markdown and the
ablation benchmarks can assert shapes on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.config import SimulationConfig, base_config
from repro.experiments.runner import SweepRunner, ensure_runner
from repro.workloads import get_workload


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, application, system) measurement."""

    parameter: str
    value: object
    app: str
    system: str
    normalized_time: float
    execution_time: int
    remote_misses: int
    capacity_conflict_misses: int
    page_operations: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary (exporters, dataframes, CSV rows)."""
        return {
            "parameter": self.parameter,
            "value": self.value,
            "app": self.app,
            "system": self.system,
            "normalized_time": round(self.normalized_time, 4),
            "execution_time": self.execution_time,
            "remote_misses": self.remote_misses,
            "capacity_conflict_misses": self.capacity_conflict_misses,
            "page_operations": round(self.page_operations, 2),
        }


@dataclass
class SweepResult:
    """All measurements of one sweep."""

    parameter: str
    values: List[object]
    apps: List[str]
    systems: List[str]
    points: List[SweepPoint] = field(default_factory=list)

    def filter(self, *, value: Optional[object] = None,
               app: Optional[str] = None,
               system: Optional[str] = None) -> List[SweepPoint]:
        """Points matching every given selector."""
        out = self.points
        if value is not None:
            out = [p for p in out if p.value == value]
        if app is not None:
            out = [p for p in out if p.app == app]
        if system is not None:
            out = [p for p in out if p.system == system]
        return list(out)

    def series(self, app: str, system: str) -> List[tuple]:
        """(value, normalized_time) pairs for one app/system, in sweep order."""
        points = {p.value: p.normalized_time
                  for p in self.filter(app=app, system=system)}
        return [(v, points[v]) for v in self.values if v in points]

    def mean_normalized(self, system: str, value: object) -> float:
        """Mean normalized time of ``system`` at ``value`` across apps."""
        points = self.filter(system=system, value=value)
        if not points:
            raise KeyError(f"no sweep points for system={system!r} value={value!r}")
        return sum(p.normalized_time for p in points) / len(points)

    def rows(self) -> List[Dict[str, object]]:
        """All points as flat dictionaries (exporter input)."""
        return [p.as_dict() for p in self.points]


def run_sweep(parameter: str,
              values: Sequence[object],
              configure: Callable[[object], SimulationConfig],
              *,
              apps: Sequence[str],
              systems: Sequence[str],
              scale: float = 0.3,
              seed: int = 0,
              baseline: str = "perfect",
              runner: Optional[SweepRunner] = None) -> SweepResult:
    """Run ``systems`` on ``apps`` for every parameter value.

    Parameters
    ----------
    parameter:
        Name of the swept knob (reports only).
    values:
        Values to sweep, in order.
    configure:
        Maps a value to the :class:`SimulationConfig` to run under.
    apps / systems:
        Workload and system names (see :data:`repro.core.factory.SYSTEM_NAMES`).
    scale:
        Workload scale passed to :func:`repro.workloads.get_workload`
        (sweeps multiply runs, so they default to smaller traces).
    baseline:
        System used for normalisation at *each* parameter value (the paper
        normalises every sensitivity figure against perfect CC-NUMA run
        under the same configuration).
    runner:
        Shared :class:`SweepRunner`; a private one is created (and closed)
        when omitted.  Every (value, app, system) run is independent, so
        the whole sweep is submitted as one batch — memoized, and executed
        across worker processes when the runner has ``jobs > 1``.
    """
    if not values:
        raise ValueError("a sweep needs at least one parameter value")
    result = SweepResult(parameter=parameter, values=list(values),
                         apps=list(apps), systems=list(systems))
    runner, owned = ensure_runner(runner)
    try:
        configs = {value: configure(value) for value in values}
        run_names = list(dict.fromkeys([baseline, *systems]))
        traces: Dict[tuple, object] = {}
        items = []
        for value in values:
            cfg = configs[value]
            for app in apps:
                tkey = (app, cfg.machine)
                if tkey not in traces:
                    traces[tkey] = get_workload(app, machine=cfg.machine,
                                                scale=scale, seed=seed)
                for system in run_names:
                    items.append((traces[tkey], system, cfg))
        all_results = iter(runner.map_runs(items))

        for value in values:
            for app in apps:
                runs = {name: next(all_results) for name in run_names}
                base_time = runs[baseline].execution_time
                for system in systems:
                    if system == baseline:
                        continue
                    res = runs[system]
                    ops = res.per_node_page_ops()
                    result.points.append(SweepPoint(
                        parameter=parameter,
                        value=value,
                        app=app,
                        system=system,
                        normalized_time=res.execution_time / base_time,
                        execution_time=res.execution_time,
                        remote_misses=res.stats.total_remote_misses,
                        capacity_conflict_misses=res.stats.total_capacity_conflict_misses,
                        page_operations=(ops["migrations"] + ops["replications"]
                                         + ops["relocations"]),
                    ))
    finally:
        if owned:
            runner.close()
    return result


# ---------------------------------------------------------------------------
# Ready-made sweep configurations used by the ablation benchmarks/examples
# ---------------------------------------------------------------------------


def rnuma_threshold_sweep(values: Sequence[int], *, seed: int = 0,
                          apps: Sequence[str], scale: float = 0.3,
                          runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the R-NUMA switching threshold (paper base value: 32)."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_thresholds(
            cfg.thresholds.__class__(
                migrep_threshold=cfg.thresholds.migrep_threshold,
                migrep_reset_interval=cfg.thresholds.migrep_reset_interval,
                rnuma_threshold=int(value),
                hybrid_relocation_delay=cfg.thresholds.hybrid_relocation_delay,
                scale=cfg.thresholds.scale,
            ))
    return run_sweep("rnuma_threshold", list(values), configure,
                     apps=apps, systems=["rnuma"], scale=scale, seed=seed,
                     runner=runner)


def migrep_threshold_sweep(values: Sequence[int], *, seed: int = 0,
                           apps: Sequence[str], scale: float = 0.3,
                           runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the MigRep miss threshold (paper base value: 800)."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_thresholds(
            cfg.thresholds.__class__(
                migrep_threshold=int(value),
                migrep_reset_interval=cfg.thresholds.migrep_reset_interval,
                rnuma_threshold=cfg.thresholds.rnuma_threshold,
                hybrid_relocation_delay=cfg.thresholds.hybrid_relocation_delay,
                scale=cfg.thresholds.scale,
            ))
    return run_sweep("migrep_threshold", list(values), configure,
                     apps=apps, systems=["migrep"], scale=scale, seed=seed,
                     runner=runner)


def network_latency_sweep(factors: Sequence[float], *, seed: int = 0,
                          apps: Sequence[str],
                          systems: Sequence[str] = ("ccnuma", "migrep", "rnuma"),
                          scale: float = 0.3,
                          runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the network-latency factor (Figure 7 generalised to a curve)."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_costs(cfg.costs.with_network_scale(float(value)))
    return run_sweep("network_factor", list(factors), configure,
                     apps=apps, systems=list(systems), scale=scale, seed=seed,
                     runner=runner)


def page_cache_sweep(fractions: Sequence[float], *, seed: int = 0,
                     apps: Sequence[str], scale: float = 0.3,
                     runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the R-NUMA page-cache size as a fraction of the base 2.4 MB."""
    def configure(value: object) -> SimulationConfig:
        cfg = base_config(seed=seed)
        return cfg.with_machine(cfg.machine.with_page_cache_fraction(float(value)))
    return run_sweep("page_cache_fraction", list(fractions), configure,
                     apps=apps, systems=["rnuma"], scale=scale, seed=seed,
                     runner=runner)


def placement_sweep(policies: Sequence[str], *, seed: int = 0,
                    apps: Sequence[str],
                    systems: Sequence[str] = ("ccnuma", "migrep", "rnuma"),
                    scale: float = 0.3,
                    runner: Optional[SweepRunner] = None) -> SweepResult:
    """Sweep the initial placement policy (first-touch, round-robin, ...)."""
    def configure(value: object) -> SimulationConfig:
        return base_config(seed=seed).with_placement(str(value))
    return run_sweep("placement", list(policies), configure,
                     apps=apps, systems=list(systems), scale=scale, seed=seed,
                     runner=runner)
