"""Network-traffic breakdown of a finished simulation run.

The paper frames both techniques as *traffic reduction* mechanisms: the
execution-time figures are the headline, but the mechanism is fewer remote
messages and bytes on the cluster interconnect.  This module turns the
message counters a run accumulates (``repro.interconnect.message``) into
the categories that matter for the comparison:

* **data traffic** — block read/write requests and data replies, the
  traffic capacity/conflict misses generate;
* **coherence traffic** — invalidations, acknowledgements and write-backs;
* **page-operation traffic** — page flush/gather/copy messages generated
  by migrations, replications and relocations (the cost side of both
  techniques); and
* **control traffic** — page-mapping requests and other small messages.

Comparing the breakdown across systems shows the paper's core trade-off
directly: MigRep and R-NUMA shrink the data category while growing the
page-operation category, and the net effect is what the execution times
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.interconnect.message import MessageStats, MessageType

#: Message categories used by the breakdown.
DATA_MESSAGES = frozenset({
    MessageType.READ_REQUEST,
    MessageType.WRITE_REQUEST,
    MessageType.DATA_REPLY,
})

COHERENCE_MESSAGES = frozenset({
    MessageType.INVALIDATION,
    MessageType.INVALIDATION_ACK,
    MessageType.WRITEBACK,
})

CONTROL_MESSAGES = frozenset({
    MessageType.PAGE_MAP_REQUEST,
    MessageType.PAGE_MAP_REPLY,
})


def _category_of(mtype: MessageType) -> str:
    if mtype in DATA_MESSAGES:
        return "data"
    if mtype in COHERENCE_MESSAGES:
        return "coherence"
    if mtype in CONTROL_MESSAGES:
        return "control"
    return "page_op"


@dataclass
class TrafficBreakdown:
    """Message counts grouped by category for one run."""

    workload: str
    system: str
    messages: Dict[str, int]
    total_messages: int
    total_bytes: int

    def fraction(self, category: str) -> float:
        """Fraction of all messages that fall in ``category``."""
        if not self.total_messages:
            return 0.0
        return self.messages.get(category, 0) / self.total_messages

    def summary(self) -> Dict[str, object]:
        """Flat dictionary used by reports and exports."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
        }
        for category, count in sorted(self.messages.items()):
            out[f"messages_{category}"] = count
            out[f"fraction_{category}"] = round(self.fraction(category), 4)
        return out


def breakdown_message_stats(stats: MessageStats) -> Dict[str, int]:
    """Group raw per-type message counts into categories."""
    grouped: Dict[str, int] = {"data": 0, "coherence": 0, "page_op": 0, "control": 0}
    for mtype in MessageType:
        count = stats.count_of(mtype)
        if count:
            grouped[_category_of(mtype)] += count
    return grouped


def traffic_breakdown(result) -> TrafficBreakdown:
    """Build a :class:`TrafficBreakdown` from an experiment result.

    ``result`` is a :class:`repro.experiments.runner.ExperimentResult`
    whose machine recorded message statistics; the breakdown uses the
    machine-level totals stored in the result's :class:`MachineStats` and
    the per-type counts kept by the network's :class:`MessageStats` when
    available (the runner stores them in ``result.stats``).
    """
    message_stats = getattr(result.stats, "message_stats", None)
    if message_stats is not None:
        grouped = breakdown_message_stats(message_stats)
    else:
        # Older results only carry the totals: report them as data traffic
        # so the totals still line up.
        grouped = {"data": result.stats.network_messages,
                   "coherence": 0, "page_op": 0, "control": 0}
    return TrafficBreakdown(
        workload=result.workload,
        system=result.system,
        messages=grouped,
        total_messages=result.stats.network_messages,
        total_bytes=result.stats.network_bytes,
    )


def compare_breakdowns(breakdowns: Mapping[str, TrafficBreakdown]) -> Dict[str, Dict[str, float]]:
    """Normalise several systems' traffic against a common baseline.

    The baseline is the system with the most total messages (normally the
    base CC-NUMA); every system's per-category counts are expressed as a
    fraction of the baseline's total, which is how one reads "MigRep
    removed X% of the data traffic but added Y% page-operation traffic".
    """
    if not breakdowns:
        return {}
    baseline_total = max(b.total_messages for b in breakdowns.values()) or 1
    out: Dict[str, Dict[str, float]] = {}
    for name, b in breakdowns.items():
        out[name] = {category: count / baseline_total
                     for category, count in b.messages.items()}
        out[name]["total"] = b.total_messages / baseline_total
    return out
