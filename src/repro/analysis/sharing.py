"""Per-page sharing-pattern analysis of a workload trace.

Section 4 of the paper explains, qualitatively, which kinds of pages each
technique can help:

* **page replication** helps pages that are read-shared for long periods
  and have essentially no writes;
* **page migration** helps read-write pages with a *low* sharing degree —
  a single frequent reader/writer, possibly changing over time — and does
  nothing for pages actively shared by several nodes at once;
* **R-NUMA** helps any page with a high rate of capacity/conflict misses,
  including highly read-write-shared ones, as long as the page is reused
  enough to amortise the relocation.

:func:`analyze_trace` turns that taxonomy into numbers for a concrete
trace: it walks the reference streams once, accumulates per-page, per-node
read/write counts (globally and per phase), and classifies every page into
a :class:`SharingClass`.  The resulting :class:`SharingReport` estimates
the *opportunity* available to each technique before any simulation is run
— the quantitative counterpart of the paper's Table 1 — and is what the
``bench_table1_matrix`` benchmark and the ``sharing_analysis`` example are
built on.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config import MachineConfig
from repro.workloads.trace import Trace


class SharingClass(enum.Enum):
    """Classification of one page's observed sharing behaviour."""

    #: touched by a single node only — no remote traffic at all
    PRIVATE = "private"
    #: read by several nodes, (almost) never written after initialisation
    READ_ONLY_SHARED = "read_only_shared"
    #: read-write, but used by one node at a time (single or moving user)
    MIGRATORY = "migratory"
    #: read-write and actively used by several nodes in the same phase
    READ_WRITE_SHARED = "read_write_shared"
    #: touched too few times for the class to matter
    LOW_REUSE = "low_reuse"


@dataclass
class PageProfile:
    """Accumulated access statistics for one page."""

    page: int
    #: per-node [reads, writes]
    reads_by_node: Dict[int, int] = field(default_factory=dict)
    writes_by_node: Dict[int, int] = field(default_factory=dict)
    #: number of distinct phases in which each node touched the page
    phases_by_node: Dict[int, int] = field(default_factory=dict)
    #: per-phase set of nodes that touched the page (sharing degree per phase)
    nodes_per_phase: List[int] = field(default_factory=list)

    # -- derived quantities ---------------------------------------------------

    @property
    def total_reads(self) -> int:
        """Total read references to the page."""
        return sum(self.reads_by_node.values())

    @property
    def total_writes(self) -> int:
        """Total write references to the page."""
        return sum(self.writes_by_node.values())

    @property
    def total_accesses(self) -> int:
        """Total references to the page."""
        return self.total_reads + self.total_writes

    @property
    def write_fraction(self) -> float:
        """Fraction of references that are writes."""
        total = self.total_accesses
        return self.total_writes / total if total else 0.0

    @property
    def sharer_nodes(self) -> Tuple[int, ...]:
        """Nodes that touched the page at least once, sorted."""
        return tuple(sorted(set(self.reads_by_node) | set(self.writes_by_node)))

    @property
    def sharing_degree(self) -> int:
        """Number of distinct nodes that ever touched the page."""
        return len(self.sharer_nodes)

    @property
    def max_concurrent_sharers(self) -> int:
        """Largest number of nodes touching the page within one phase."""
        return max(self.nodes_per_phase, default=0)

    def accesses_of_node(self, node: int) -> int:
        """References (reads + writes) made by ``node``."""
        return self.reads_by_node.get(node, 0) + self.writes_by_node.get(node, 0)

    def dominant_node(self) -> Tuple[Optional[int], float]:
        """Node with the most references and its share of the page's traffic."""
        if not self.total_accesses:
            return None, 0.0
        best, count = None, -1
        for node in self.sharer_nodes:
            c = self.accesses_of_node(node)
            if c > count:
                best, count = node, c
        return best, count / self.total_accesses

    def classify(self, *, min_reuse: int = 8,
                 read_only_write_tolerance: float = 0.02,
                 dominance: float = 0.9,
                 concurrent_threshold: int = 2) -> SharingClass:
        """Classify the page using the Section 4 taxonomy.

        Parameters mirror the qualitative language of the paper:
        ``read_only_write_tolerance`` is how many writes a page may see and
        still count as "mostly read-shared"; ``dominance`` is the traffic
        share one node must reach for the page to count as single-user
        (migratory); ``concurrent_threshold`` is the per-phase sharer count
        above which the page counts as actively shared.
        """
        if self.total_accesses < min_reuse:
            return SharingClass.LOW_REUSE
        if self.sharing_degree <= 1:
            return SharingClass.PRIVATE
        if self.write_fraction <= read_only_write_tolerance:
            return SharingClass.READ_ONLY_SHARED
        _, share = self.dominant_node()
        if share >= dominance or self.max_concurrent_sharers < concurrent_threshold:
            return SharingClass.MIGRATORY
        return SharingClass.READ_WRITE_SHARED


@dataclass
class SharingReport:
    """Whole-trace sharing analysis."""

    workload: str
    num_nodes: int
    pages: Dict[int, PageProfile]
    classes: Dict[int, SharingClass]

    # -- aggregate views --------------------------------------------------------

    def count_by_class(self) -> Dict[SharingClass, int]:
        """Number of pages in each sharing class."""
        out: Dict[SharingClass, int] = {cls: 0 for cls in SharingClass}
        for cls in self.classes.values():
            out[cls] += 1
        return out

    def accesses_by_class(self) -> Dict[SharingClass, int]:
        """Number of references falling on pages of each class."""
        out: Dict[SharingClass, int] = {cls: 0 for cls in SharingClass}
        for page, cls in self.classes.items():
            out[cls] += self.pages[page].total_accesses
        return out

    def fraction_of_accesses(self, cls: SharingClass) -> float:
        """Fraction of all references falling on pages of class ``cls``."""
        per_class = self.accesses_by_class()
        total = sum(per_class.values())
        return per_class[cls] / total if total else 0.0

    # -- technique opportunity estimates -----------------------------------------

    def replication_candidates(self) -> List[int]:
        """Pages replication could help: read-only shared with reuse."""
        return [p for p, cls in self.classes.items()
                if cls is SharingClass.READ_ONLY_SHARED]

    def migration_candidates(self) -> List[int]:
        """Pages migration could help: migratory read-write pages."""
        return [p for p, cls in self.classes.items()
                if cls is SharingClass.MIGRATORY]

    def rnuma_candidates(self) -> List[int]:
        """Pages fine-grain caching could help: any reused shared page."""
        return [p for p, cls in self.classes.items()
                if cls in (SharingClass.READ_ONLY_SHARED,
                           SharingClass.MIGRATORY,
                           SharingClass.READ_WRITE_SHARED)]

    def opportunity_summary(self) -> Dict[str, float]:
        """Fraction of shared-page references addressable by each technique.

        "Addressable" follows Table 1: replication addresses read-only
        shared references, migration addresses migratory read-write
        references, and R-NUMA addresses all of those plus actively
        read-write shared references.
        """
        per_class = self.accesses_by_class()
        shared_total = sum(count for cls, count in per_class.items()
                           if cls is not SharingClass.PRIVATE)
        if not shared_total:
            return {"replication": 0.0, "migration": 0.0, "rnuma": 0.0}
        rep = per_class[SharingClass.READ_ONLY_SHARED]
        mig = per_class[SharingClass.MIGRATORY]
        rnuma = rep + mig + per_class[SharingClass.READ_WRITE_SHARED]
        return {
            "replication": rep / shared_total,
            "migration": mig / shared_total,
            "rnuma": rnuma / shared_total,
        }

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports and the example scripts."""
        counts = self.count_by_class()
        out: Dict[str, object] = {
            "workload": self.workload,
            "pages": len(self.pages),
            "mean_sharing_degree": (
                float(np.mean([p.sharing_degree for p in self.pages.values()]))
                if self.pages else 0.0),
            "mean_write_fraction": (
                float(np.mean([p.write_fraction for p in self.pages.values()]))
                if self.pages else 0.0),
        }
        out.update({f"pages_{cls.value}": counts[cls] for cls in SharingClass})
        out.update({f"opportunity_{k}": round(v, 4)
                    for k, v in self.opportunity_summary().items()})
        return out


def analyze_trace(trace: Trace, machine: MachineConfig, *,
                  min_reuse: int = 8) -> SharingReport:
    """Profile every page of ``trace`` and classify its sharing behaviour.

    The analysis is purely a function of the reference streams (it does not
    run the simulator): for every page it accumulates per-node read/write
    counts and the per-phase sharer sets, then applies
    :meth:`PageProfile.classify`.
    """
    bpp = machine.blocks_per_page
    procs_per_node = machine.procs_per_node
    profiles: Dict[int, PageProfile] = {}

    for phase in trace.phases:
        touched_this_phase: Dict[int, set] = defaultdict(set)
        for proc_index, (blocks, writes) in enumerate(zip(phase.blocks, phase.writes)):
            if len(blocks) == 0:
                continue
            node = proc_index // procs_per_node
            pages = np.asarray(blocks) // bpp
            wr = np.asarray(writes).astype(bool)
            uniq = np.unique(pages)
            for page in uniq.tolist():
                mask = pages == page
                n_writes = int(np.count_nonzero(wr[mask]))
                n_reads = int(np.count_nonzero(mask)) - n_writes
                prof = profiles.get(page)
                if prof is None:
                    prof = profiles[page] = PageProfile(page=page)
                prof.reads_by_node[node] = prof.reads_by_node.get(node, 0) + n_reads
                prof.writes_by_node[node] = prof.writes_by_node.get(node, 0) + n_writes
                touched_this_phase[page].add(node)
        for page, nodes in touched_this_phase.items():
            prof = profiles[page]
            prof.nodes_per_phase.append(len(nodes))
            for node in nodes:
                prof.phases_by_node[node] = prof.phases_by_node.get(node, 0) + 1

    classes = {page: prof.classify(min_reuse=min_reuse)
               for page, prof in profiles.items()}
    return SharingReport(
        workload=trace.name,
        num_nodes=machine.num_nodes,
        pages=profiles,
        classes=classes,
    )
