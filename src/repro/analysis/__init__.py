"""Post-processing and analysis tools built on top of the simulator.

The paper's argument rests on the *sharing character* of an application's
page population (Table 1, Section 4) and on how execution time responds to
page-operation cost, network latency and page-cache size (Sections
6.1-6.4).  This subpackage provides the corresponding measurement tools:

:mod:`repro.analysis.sharing`
    classify every page of a trace by sharing pattern (read-only,
    migratory, actively read-write shared, ...) and estimate how much of
    the remote traffic each technique could remove — a quantitative
    version of the paper's Table 1.

:mod:`repro.analysis.traffic`
    break down the network traffic of a finished run by message category
    (data fills, invalidations, page operations).

:mod:`repro.analysis.sweeps`
    generic parameter-sweep harness used by the ablation benchmarks
    (thresholds, page-cache size, network latency, placement policy).

:mod:`repro.analysis.breakdown`
    stall-time breakdown of a run (remote-miss stall vs page-operation
    overhead vs compute), the "where does the time go" view behind the
    paper's explanations.

:mod:`repro.analysis.validate`
    codified versions of the paper's qualitative claims, checked against
    measured results (used by EXPERIMENTS.md and the regression tests).
"""

from repro.analysis.breakdown import StallBreakdown, compare_systems, stall_breakdown
from repro.analysis.sharing import (
    PageProfile,
    SharingClass,
    SharingReport,
    analyze_trace,
)
from repro.analysis.sweeps import SweepPoint, SweepResult, run_sweep
from repro.analysis.traffic import TrafficBreakdown, traffic_breakdown
from repro.analysis.validate import ShapeCheck, check_figure5_shape, check_table4_shape

__all__ = [
    "StallBreakdown",
    "stall_breakdown",
    "compare_systems",
    "PageProfile",
    "SharingClass",
    "SharingReport",
    "analyze_trace",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "TrafficBreakdown",
    "traffic_breakdown",
    "ShapeCheck",
    "check_figure5_shape",
    "check_table4_shape",
]
