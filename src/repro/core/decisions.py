"""Decision policies: when to migrate, replicate or relocate a page.

Mechanism and policy are separated: :mod:`repro.kernel.migration` and
:mod:`repro.kernel.relocation` know *how* to perform a page operation; the
classes here decide *whether* one should happen.  The paper's entire
comparison (CC-NUMA vs MigRep vs R-NUMA) reduces to these decisions, so
this module makes them an open axis: policies live in the shared
:data:`repro.registry.POLICIES` registry and are selected by name through
:class:`repro.config.ThresholdConfig` (``migrep_policy`` /
``rnuma_policy``), :meth:`repro.core.factory.SystemSpec.derive`
(``migrep_policy=`` / ``rnuma_policy=`` overrides) or the CLI
(``--policy``).

Two *roles* exist, matching the two places the protocols consult a policy:

* ``"migrep"`` — evaluated at the **home** node on every remote miss
  (:class:`repro.core.migrep.MigRepProtocol` and the hybrid).  A migrep
  policy implements ``evaluate(counters, page, requester, home, *,
  is_replica_request=False) -> MigRepDecision``.
* ``"rnuma"`` — evaluated at the **requesting** node on every
  capacity/conflict refetch (:class:`repro.core.rnuma.RNUMAProtocol`).
  An rnuma policy implements ``should_relocate(counters, page, *,
  page_total_misses=0, node=0) -> bool`` (``node`` is the requesting
  node; stateless policies may ignore it).

The paper's static-threshold rules of Section 3 are registered as the
default (``"static-threshold"``); results under the default are
bit-identical to the pre-registry implementation.  Three adaptive
families join them:

``"competitive"``
    Ski-rental thresholds: perform the page operation once the cycles
    already lost to remote misses equal (``beta`` times) the page-op
    cost, both derived from the configured :class:`repro.config.CostModel`.
``"hysteresis"``
    Per-page exponentially-decayed miss pressure (in the spirit of
    MigrantStore's hysteresis-driven migration): only *sustained* bursts
    reach the trigger, sporadic misses decay away.
``"cost-model"``
    Per-page cost/benefit with an evidence gate: act only after
    ``min_samples`` observed misses and only when the projected cycles
    saved exceed ``margin`` times the page-op cost.

Policies are ordinary Python objects constructed per run (inside
:class:`~repro.experiments.runner.SweepRunner` workers too: the
*registration* is inherited across the fork, the *instance* never crosses
a process boundary), so adaptive policies may keep internal per-page
state without any pickling concerns.
"""

from __future__ import annotations

import enum
import math
from array import array
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.counters import MigRepCounters, RefetchCounters
from repro.registry import POLICIES, NamesView, register_policy


class MigRepDecision(enum.Enum):
    """Outcome of a migration/replication policy evaluation."""

    NONE = "none"
    MIGRATE = "migrate"
    REPLICATE = "replicate"


class DecisionPolicy:
    """Structural base class for page-operation decision policies.

    A decision policy turns per-page counter observations into page-op
    decisions.  Subclasses fill one (or both) of the two role contracts:

    * migrep role: ``evaluate(counters, page, requester, home, *,
      is_replica_request=False) -> MigRepDecision`` where ``counters`` is
      a :class:`repro.core.counters.MigRepCounters`;
    * rnuma role: ``should_relocate(counters, page, *,
      page_total_misses=0, node=0) -> bool`` where ``counters`` is the
      requesting node's :class:`repro.core.counters.RefetchCounters` and
      ``node`` its index (for policies keeping per-node state).

    Policies are consulted only for references that miss all the way
    through to the protocol layer, in the exact order the protocol
    services them — identical under both execution engines — so policies
    (including stateful ones) produce engine-invariant decisions.
    """

    #: registry name of the family this policy instance belongs to
    name: str = ""

    def describe(self) -> str:
        """One-line human-readable description of the policy instance."""
        return self.name or type(self).__name__


def _miss_rows(counters: MigRepCounters, page: int, requester: int,
               home: int) -> Tuple[Optional[List[int]], Optional[List[int]],
                                   int, int]:
    """Shared per-evaluation view of a page's MigRep counters.

    Returns ``(read_row, write_row, remote_writes, advantage)`` where
    ``remote_writes`` counts write misses by nodes other than the home
    (any makes the page non-replicable) and ``advantage`` is the
    requester's total misses minus the home's (the migration signal).
    The rows come from the counters' public row accessors (``None`` when
    never recorded since the last reset); a hot-path copy of this body is
    inlined in :meth:`repro.core.migrep.MigRepProtocol._service_remote_page`
    — keep the two in sync.
    """
    read_row = counters.read_row(page)
    write_row = counters.write_row(page)
    remote_writes = (sum(write_row) - write_row[home]
                     if write_row is not None else 0)
    requester_misses = 0
    home_misses = 0
    if read_row is not None:
        requester_misses += read_row[requester]
        home_misses += read_row[home]
    if write_row is not None:
        requester_misses += write_row[requester]
        home_misses += write_row[home]
    return read_row, write_row, remote_writes, requester_misses - home_misses


# ---------------------------------------------------------------------------
# The paper's static-threshold policies (Section 3) — the defaults
# ---------------------------------------------------------------------------


@dataclass
class MigRepPolicy(DecisionPolicy):
    """The paper's static-threshold policy for CC-NUMA+MigRep (Figure 3b).

    * **Replication**: invoked when a page has seen no remote write
      misses and the requesting node's read-miss counter exceeds the
      threshold.
    * **Migration**: invoked when the requesting node's miss counter
      exceeds the home node's by more than the threshold.

    Parameters
    ----------
    threshold:
        Miss-count threshold (800 in the paper's fast system).
    enable_migration / enable_replication:
        Allow disabling one mechanism to build the "Mig" and "Rep"
        systems of Figure 5.
    """

    threshold: int
    enable_migration: bool = True
    enable_replication: bool = True

    name = "static-threshold"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def evaluate(self, counters: MigRepCounters, page: int, requester: int,
                 home: int, *, is_replica_request: bool = False) -> MigRepDecision:
        """Evaluate the policy for a miss on ``page`` by ``requester``.

        ``is_replica_request`` marks requests from nodes that already hold
        a replica (no further operation is useful for them).
        """
        if requester == home or is_replica_request:
            return MigRepDecision.NONE
        read_row, _, remote_writes, advantage = _miss_rows(
            counters, page, requester, home)

        if self.enable_replication:
            # Only *remote* write misses make a page non-replicable: the home
            # node writing its own page (e.g. producing it) does not preclude
            # read-only copies elsewhere.
            if (remote_writes == 0 and read_row is not None
                    and read_row[requester] > self.threshold):
                return MigRepDecision.REPLICATE

        if self.enable_migration and advantage > self.threshold:
            return MigRepDecision.MIGRATE

        return MigRepDecision.NONE


@dataclass
class RNUMAPolicy(DecisionPolicy):
    """The paper's static-threshold policy for R-NUMA relocation (Figure 4b).

    Parameters
    ----------
    threshold:
        Refetch-count switching threshold (32 in the paper's fast system).
    relocation_delay:
        Minimum number of misses a page must have absorbed (home-side
        count) before relocation is allowed.  Zero for plain R-NUMA;
        positive only in the R-NUMA+MigRep hybrid (Section 6.4).
    """

    threshold: int
    relocation_delay: int = 0

    name = "static-threshold"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.relocation_delay < 0:
            raise ValueError("relocation_delay must be non-negative")

    def should_relocate(self, counters: RefetchCounters, page: int,
                        *, page_total_misses: int = 0, node: int = 0) -> bool:
        """True when the refetch counter for ``page`` warrants relocation."""
        if self.relocation_delay and page_total_misses < self.relocation_delay:
            return False
        return counters.count(page) > self.threshold


#: Backwards-compatible alias: the rnuma-role static policy relocates pages.
RelocationPolicy = RNUMAPolicy


# ---------------------------------------------------------------------------
# Adaptive policies
# ---------------------------------------------------------------------------


@dataclass
class CompetitiveMigRepPolicy(DecisionPolicy):
    """Ski-rental migration/replication: act when rent paid equals buy cost.

    Each remote miss "rents" the page at ``miss_benefit`` cycles — the
    round-trip latency the requester would have saved had the page been
    local.  The policy performs a page operation once the rent already
    paid reaches ``beta`` times the one-off page-op cost, i.e. after

    ``ceil(beta * op_cost / miss_benefit)``

    misses.  With ``beta = 1`` this is the classic 2-competitive
    ski-rental rule: total cost is at most twice the offline optimum
    regardless of the future reference stream.

    Parameters
    ----------
    miss_benefit:
        Cycles saved per avoided remote miss (remote minus local latency).
    migration_cost / replication_cost:
        One-off cycle cost of a full-page migration / replication.
    beta:
        Rent-to-buy ratio required before acting (1.0 = break-even).
    enable_migration / enable_replication:
        Disable one mechanism (mirrors :class:`MigRepPolicy`).
    """

    miss_benefit: int
    migration_cost: int
    replication_cost: int
    beta: float = 1.0
    enable_migration: bool = True
    enable_replication: bool = True

    name = "competitive"

    def __post_init__(self) -> None:
        if self.miss_benefit <= 0:
            raise ValueError("miss_benefit must be positive")
        if self.migration_cost <= 0 or self.replication_cost <= 0:
            raise ValueError("page-op costs must be positive")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        self.migration_threshold = max(1, math.ceil(
            self.beta * self.migration_cost / self.miss_benefit))
        self.replication_threshold = max(1, math.ceil(
            self.beta * self.replication_cost / self.miss_benefit))

    def evaluate(self, counters: MigRepCounters, page: int, requester: int,
                 home: int, *, is_replica_request: bool = False) -> MigRepDecision:
        """Rent-vs-buy comparison on the requester's accumulated misses."""
        if requester == home or is_replica_request:
            return MigRepDecision.NONE
        read_row, _, remote_writes, advantage = _miss_rows(
            counters, page, requester, home)

        if self.enable_replication:
            if (remote_writes == 0 and read_row is not None
                    and read_row[requester] >= self.replication_threshold):
                return MigRepDecision.REPLICATE

        if self.enable_migration and advantage >= self.migration_threshold:
            return MigRepDecision.MIGRATE
        return MigRepDecision.NONE


@dataclass
class CompetitiveRelocationPolicy(DecisionPolicy):
    """Ski-rental R-NUMA relocation (rnuma role of ``"competitive"``).

    Relocate once the refetch rent paid (``count * miss_benefit``)
    reaches ``beta`` times the relocation cost.

    Parameters
    ----------
    miss_benefit:
        Cycles saved per avoided remote refetch.
    relocation_cost:
        One-off cycle cost of relocating a page into the page cache.
    beta:
        Rent-to-buy ratio required before acting.
    relocation_delay:
        Hybrid-only miss budget before relocation is considered.
    """

    miss_benefit: int
    relocation_cost: int
    beta: float = 1.0
    relocation_delay: int = 0

    name = "competitive"

    def __post_init__(self) -> None:
        if self.miss_benefit <= 0:
            raise ValueError("miss_benefit must be positive")
        if self.relocation_cost <= 0:
            raise ValueError("relocation_cost must be positive")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.relocation_delay < 0:
            raise ValueError("relocation_delay must be non-negative")
        self.threshold = max(1, math.ceil(
            self.beta * self.relocation_cost / self.miss_benefit))

    def should_relocate(self, counters: RefetchCounters, page: int,
                        *, page_total_misses: int = 0, node: int = 0) -> bool:
        """True once the page's refetch rent covers the relocation cost."""
        if self.relocation_delay and page_total_misses < self.relocation_delay:
            return False
        return counters.count(page) >= self.threshold


@dataclass
class HysteresisMigRepPolicy(DecisionPolicy):
    """Exponentially-decayed miss pressure with a hysteresis trigger.

    Inspired by MigrantStore's hysteresis-driven migration: instead of
    comparing a raw cumulative counter against a threshold, the policy
    tracks a per-(page, node) *pressure* score that gains one point per
    miss and decays multiplicatively between events.  The score saturates
    at ``1 / (1 - decay)``, so only *sustained* miss bursts can reach the
    trigger — sporadic misses spread over a long run decay away, while a
    static counter would eventually accumulate past any threshold.
    After a decision fires, the page's scores reset (the hysteresis),
    preventing a fresh decision from re-triggering on stale pressure.

    The policy is only consulted on *remote* misses, but the home node's
    own misses must still restrain migration (they are what makes moving
    the page away a bad trade).  Home-side pressure is therefore derived
    from the shared :class:`~repro.core.counters.MigRepCounters`: each
    evaluation credits the home's score with the home misses recorded
    since the previous evaluation of the page, so the requester-vs-home
    comparison sees both sides just as the static policy does.

    Storage mirrors :class:`~repro.core.counters.MigRepCounters`: the
    scores are a flat buffer-backed ``array('d')`` column indexed by
    ``page * num_nodes + node`` and the per-page home-credit watermark a
    flat ``array('q')``, both grown in place via :meth:`reserve`.  The
    dense layout is what lets the compiled residual kernel update the
    pressure and test the trigger inside the compiled walk, bailing only
    when a decision actually fires; a never-evaluated page's zero row is
    indistinguishable from an absent one (decaying zeros is the identity
    and the home credit restarts from a zero watermark either way).

    Parameters
    ----------
    threshold:
        Pressure score that triggers a page operation.  Must be below the
        ``1 / (1 - decay)`` saturation point to ever fire.
    decay:
        Multiplicative decay applied to a page's scores on each observed
        miss (0 < decay < 1; higher = longer memory).
    enable_migration / enable_replication:
        Disable one mechanism (mirrors :class:`MigRepPolicy`).
    """

    threshold: float
    decay: float = 0.98
    enable_migration: bool = True
    enable_replication: bool = True
    _scores: array = field(default_factory=lambda: array("d"), repr=False)
    _home_seen: array = field(default_factory=lambda: array("q"), repr=False)
    _num_nodes: int = field(default=0, repr=False)
    _cap: int = field(default=0, repr=False)

    name = "hysteresis"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0.0 < self.decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        if self.threshold >= 1.0 / (1.0 - self.decay):
            raise ValueError(
                f"threshold {self.threshold} is unreachable: pressure "
                f"saturates at {1.0 / (1.0 - self.decay):.1f} for "
                f"decay={self.decay}")

    def reserve(self, n: int, *, num_nodes: int = 0) -> None:
        """Grow the columns (in place) to cover page ids ``< n``."""
        if num_nodes and not self._num_nodes:
            self._num_nodes = num_nodes
        cap = self._cap
        if n <= cap or not self._num_nodes:
            return    # row width unknown until the first evaluation
        grow = max(n, 2 * cap, 256) - cap
        self._scores.frombytes(bytes(8 * grow * self._num_nodes))
        self._home_seen.frombytes(bytes(8 * grow))
        self._cap = cap + grow

    def pressure(self, page: int, node: int) -> float:
        """Current decayed pressure score for ``(page, node)``."""
        if page < self._cap:
            return self._scores[page * self._num_nodes + node]
        return 0.0

    def evaluate(self, counters: MigRepCounters, page: int, requester: int,
                 home: int, *, is_replica_request: bool = False) -> MigRepDecision:
        """Update the page's decayed pressure and decide on the new state."""
        if requester == home or is_replica_request:
            return MigRepDecision.NONE
        nn = counters.num_nodes
        if not self._num_nodes:
            self._num_nodes = nn
        if page >= self._cap:
            self.reserve(page + 1)
        row = self._scores
        base = page * nn
        decay = self.decay
        for node in range(nn):
            row[base + node] *= decay
        row[base + requester] += 1.0

        # fold in the home's own misses since the last evaluation (the
        # policy never sees them as events; the counters record them via
        # the protocol's local-fill path).  A negative delta means the
        # counters were periodically reset — restart from the new total.
        read_row = counters.read_row(page)
        write_row = counters.write_row(page)
        home_total = ((read_row[home] if read_row is not None else 0)
                      + (write_row[home] if write_row is not None else 0))
        delta = home_total - self._home_seen[page]
        if delta != 0:
            row[base + home] += home_total if delta < 0 else delta
            self._home_seen[page] = home_total

        if self.enable_replication:
            remote_writes = (sum(write_row) - write_row[home]
                             if write_row is not None else 0)
            if remote_writes == 0 and row[base + requester] > self.threshold:
                self._forget(page)
                return MigRepDecision.REPLICATE
        if self.enable_migration:
            if row[base + requester] - row[base + home] > self.threshold:
                self._forget(page)
                return MigRepDecision.MIGRATE
        return MigRepDecision.NONE

    def _forget(self, page: int) -> None:
        """Drop a page's pressure state after a decision (the hysteresis)."""
        if page < self._cap:
            nn = self._num_nodes
            base = page * nn
            self._scores[base:base + nn] = array("d", bytes(8 * nn))
            self._home_seen[page] = 0


@dataclass
class HysteresisRelocationPolicy(DecisionPolicy):
    """Decayed refetch pressure for R-NUMA (rnuma role of ``"hysteresis"``).

    Keeps one decayed score per (requesting node, page); a page relocates
    only when refetches arrive densely enough for the score to outrun
    its decay.

    Parameters
    ----------
    threshold:
        Pressure score that triggers relocation (must be below the
        ``1 / (1 - decay)`` saturation point).
    decay:
        Multiplicative decay applied per observed refetch.
    relocation_delay:
        Hybrid-only miss budget before relocation is considered.
    """

    threshold: float
    decay: float = 0.9
    relocation_delay: int = 0
    _scores: Dict[Tuple[int, int], float] = field(default_factory=dict,
                                                  repr=False)

    name = "hysteresis"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0.0 < self.decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        if self.threshold >= 1.0 / (1.0 - self.decay):
            raise ValueError(
                f"threshold {self.threshold} is unreachable: pressure "
                f"saturates at {1.0 / (1.0 - self.decay):.1f} for "
                f"decay={self.decay}")

    def should_relocate(self, counters: RefetchCounters, page: int,
                        *, page_total_misses: int = 0, node: int = 0) -> bool:
        """Bump the (node, page) pressure score and compare to the trigger."""
        key = (node, page)
        score = self._scores.get(key, 0.0) * self.decay + 1.0
        if self.relocation_delay and page_total_misses < self.relocation_delay:
            self._scores[key] = score
            return False
        if score > self.threshold:
            del self._scores[key]
            return True
        self._scores[key] = score
        return False


@dataclass
class CostModelMigRepPolicy(DecisionPolicy):
    """Cost/benefit policy with an evidence gate (migrep role).

    Weighs the remote-access cycles a page operation would save — the
    observed per-node miss counts times the remote-over-local latency gap
    of the configured :class:`repro.config.CostModel` — against the
    page-op cost, and acts only when the saving exceeds ``margin`` times
    the cost *and* the page has absorbed at least ``min_samples`` misses
    (so one node's cold burst cannot trigger a page operation before the
    sharing pattern is visible).

    Parameters
    ----------
    miss_benefit:
        Cycles saved per avoided remote miss (observed remote latency
        minus local latency).
    migration_cost / replication_cost:
        One-off cycle cost of a full-page migration / replication.
    margin:
        Required payback factor (2.0 = act only when the projected saving
        is at least twice the page-op cost).
    min_samples:
        Minimum misses observed on the page (all nodes) before deciding.
    enable_migration / enable_replication:
        Disable one mechanism (mirrors :class:`MigRepPolicy`).
    """

    miss_benefit: int
    migration_cost: int
    replication_cost: int
    margin: float = 2.0
    min_samples: int = 8
    enable_migration: bool = True
    enable_replication: bool = True

    name = "cost-model"

    def __post_init__(self) -> None:
        if self.miss_benefit <= 0:
            raise ValueError("miss_benefit must be positive")
        if self.migration_cost <= 0 or self.replication_cost <= 0:
            raise ValueError("page-op costs must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.min_samples < 0:
            raise ValueError("min_samples must be non-negative")

    def evaluate(self, counters: MigRepCounters, page: int, requester: int,
                 home: int, *, is_replica_request: bool = False) -> MigRepDecision:
        """Projected-saving vs page-op-cost comparison, gated on evidence."""
        if requester == home or is_replica_request:
            return MigRepDecision.NONE
        read_row, write_row, remote_writes, advantage = _miss_rows(
            counters, page, requester, home)
        total = 0
        if read_row is not None:
            total += sum(read_row)
        if write_row is not None:
            total += sum(write_row)
        if total < self.min_samples:
            return MigRepDecision.NONE

        benefit = self.miss_benefit
        if self.enable_replication:
            if (remote_writes == 0 and read_row is not None
                    and read_row[requester] * benefit
                    > self.margin * self.replication_cost):
                return MigRepDecision.REPLICATE
        if (self.enable_migration
                and advantage * benefit > self.margin * self.migration_cost):
            return MigRepDecision.MIGRATE
        return MigRepDecision.NONE


@dataclass
class CostModelRelocationPolicy(DecisionPolicy):
    """Cost/benefit R-NUMA relocation (rnuma role of ``"cost-model"``).

    Relocate when the refetch cycles already paid exceed ``margin`` times
    the relocation cost and the page shows minimum evidence.

    Parameters
    ----------
    miss_benefit:
        Cycles saved per avoided remote refetch.
    relocation_cost:
        One-off cycle cost of relocating the page.
    margin:
        Required payback factor.
    min_samples:
        Minimum refetches observed before deciding.
    relocation_delay:
        Hybrid-only miss budget before relocation is considered.
    """

    miss_benefit: int
    relocation_cost: int
    margin: float = 2.0
    min_samples: int = 4
    relocation_delay: int = 0

    name = "cost-model"

    def __post_init__(self) -> None:
        if self.miss_benefit <= 0:
            raise ValueError("miss_benefit must be positive")
        if self.relocation_cost <= 0:
            raise ValueError("relocation_cost must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.min_samples < 0:
            raise ValueError("min_samples must be non-negative")
        if self.relocation_delay < 0:
            raise ValueError("relocation_delay must be non-negative")

    def should_relocate(self, counters: RefetchCounters, page: int,
                        *, page_total_misses: int = 0, node: int = 0) -> bool:
        """True when refetch rent exceeds ``margin`` x relocation cost."""
        if self.relocation_delay and page_total_misses < self.relocation_delay:
            return False
        count = counters.count(page)
        if count < self.min_samples:
            return False
        return count * self.miss_benefit > self.margin * self.relocation_cost


# ---------------------------------------------------------------------------
# The policy registry: PolicySpec + the built-in registrations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicySpec:
    """A named, registrable decision-policy family.

    One spec covers up to two roles: a ``migrep_factory`` building the
    home-side migration/replication policy and an ``rnuma_factory``
    building the requester-side relocation policy.  Factories take the
    full :class:`repro.config.SimulationConfig` (so they can derive
    thresholds from the cost model and the scaled threshold config) plus
    arbitrary keyword arguments supplied via
    ``ThresholdConfig.migrep_policy_args`` / ``rnuma_policy_args``,
    :meth:`SystemSpec.derive(policy_args=...)
    <repro.core.factory.SystemSpec.derive>` or direct
    :func:`build_policy` calls.

    Parameters
    ----------
    name:
        Registry key (``repro list`` shows it; config selects by it).
    summary:
        One-line description shown by docs and listings.
    migrep_factory:
        ``(config, **kwargs) -> policy`` for the migrep role, or ``None``
        when the family has no home-side variant.
    rnuma_factory:
        ``(config, **kwargs) -> policy`` for the rnuma role (must accept
        ``relocation_delay``), or ``None``.

    Examples
    --------
    >>> spec = PolicySpec("always-no", summary="never acts",
    ...                   migrep_factory=lambda cfg, **kw: MigRepPolicy(10**9))
    >>> spec.roles()
    ('migrep',)
    >>> spec.supports("rnuma")
    False
    """

    name: str
    summary: str = ""
    migrep_factory: Optional[Callable[..., Any]] = None
    rnuma_factory: Optional[Callable[..., Any]] = None

    def roles(self) -> Tuple[str, ...]:
        """The roles this family can build, in ('migrep', 'rnuma') order."""
        out = []
        if self.migrep_factory is not None:
            out.append("migrep")
        if self.rnuma_factory is not None:
            out.append("rnuma")
        return tuple(out)

    def supports(self, role: str) -> bool:
        """True when the family has a factory for ``role``."""
        return role in self.roles()

    def build(self, role: str, config, **kwargs):
        """Construct the policy instance for ``role`` under ``config``.

        Raises :class:`ValueError` when the family does not support the
        role (e.g. selecting an rnuma-only policy for a MigRep system).
        """
        factory = (self.migrep_factory if role == "migrep"
                   else self.rnuma_factory if role == "rnuma" else None)
        if role not in ("migrep", "rnuma"):
            raise ValueError(f"unknown policy role {role!r} "
                             "(valid roles: migrep, rnuma)")
        if factory is None:
            raise ValueError(
                f"policy {self.name!r} has no {role!r} variant "
                f"(supported roles: {', '.join(self.roles()) or 'none'})")
        return factory(config, **kwargs)


#: Live view of every registered policy name (grows as policies register).
POLICY_NAMES = NamesView(POLICIES)


def build_policy(name: str, role: str, config, **kwargs):
    """Build the decision policy registered under ``name`` for ``role``.

    Parameters
    ----------
    name:
        A registered policy name (see :data:`POLICY_NAMES`).
    role:
        ``"migrep"`` (home-side migration/replication) or ``"rnuma"``
        (requester-side relocation).
    config:
        The :class:`repro.config.SimulationConfig` the run executes
        under; factories derive thresholds and costs from it.
    **kwargs:
        Extra keyword arguments forwarded to the family's factory
        (per-policy tuning knobs such as ``beta`` or ``decay``).

    Returns
    -------
    DecisionPolicy
        A fresh policy instance for one run.

    Raises
    ------
    repro.registry.UnknownNameError
        For an unregistered name (with a did-you-mean suggestion).
    ValueError
        When the family does not support ``role``.
    """
    spec = POLICIES.resolve(name)
    return spec.build(role, config, **kwargs)


def resolve_policy(role: str, config, *, spec=None, policy=None, **kwargs):
    """Resolve the policy a protocol should use, from all override layers.

    Precedence (highest first):

    1. ``policy`` given directly to the protocol constructor — a ready
       policy object is returned as-is, a string selects by name;
    2. the system spec's ``migrep_policy`` / ``rnuma_policy`` override
       (set via :meth:`SystemSpec.derive <repro.core.factory.SystemSpec.derive>`);
    3. the configuration's ``thresholds.migrep_policy`` /
       ``thresholds.rnuma_policy`` name (the default path).

    Keyword arguments layer from weakest to strongest: the config's
    ``*_policy_args``, then the spec's ``policy_args``, then the
    protocol's own ``kwargs``.  The protocols forward only kwargs their
    caller *explicitly* supplied (constructor defaults are never passed),
    so a config-level argument is not silently clobbered by a default —
    while an explicit choice like the ``rep`` system's
    ``enable_migration=False`` stays strongest.  Stored arguments follow
    the family they were set with: the config's args apply only when the
    config's own policy name is the one being built, and the spec's args
    only when the spec's name is — so one family's tuning knobs are
    never fed to another family's factory.

    A ready policy *object* is used exactly as given — it must carry all
    of its own configuration, so combining it with constructor kwargs is
    an error rather than a silent drop.
    """
    if policy is not None and not isinstance(policy, str):
        if kwargs:
            raise ValueError(
                f"got both a ready {role} policy instance and constructor "
                f"arguments {sorted(kwargs)}; configure the instance "
                "directly (e.g. bake relocation_delay / enable flags into "
                "it) or pass a policy name instead")
        return policy
    thresholds = config.thresholds
    if role == "migrep":
        spec_name = getattr(spec, "migrep_policy", None)
        config_name = getattr(thresholds, "migrep_policy", "static-threshold")
        config_args = dict(getattr(thresholds, "migrep_policy_kwargs", {}))
    elif role == "rnuma":
        spec_name = getattr(spec, "rnuma_policy", None)
        config_name = getattr(thresholds, "rnuma_policy", "static-threshold")
        config_args = dict(getattr(thresholds, "rnuma_policy_kwargs", {}))
    else:
        raise ValueError(f"unknown policy role {role!r}")
    name = policy or spec_name or config_name
    args = config_args if name == config_name else {}
    if policy is None and spec_name is not None:
        args.update(dict(getattr(spec, "policy_args", ()) or ()))
    args.update(kwargs)
    return build_policy(name, role, config, **args)


def apply_policy(config, name: str):
    """Return ``config`` with ``name`` selected for every role it supports.

    Parameters
    ----------
    config:
        The :class:`repro.config.SimulationConfig` to derive from.
    name:
        A registered policy name.

    Returns
    -------
    SimulationConfig
        A copy selecting ``name`` for the roles the family provides;
        roles the family lacks keep their current selection, so a
        migrep-only policy can drive ``repro ... --policy`` and
        ``policy_sweep`` without breaking the systems that consult the
        rnuma role (and vice versa).

    Raises
    ------
    repro.registry.UnknownNameError
        For an unregistered name.
    """
    roles = POLICIES.resolve(name).roles()
    return config.with_policies(
        migrep=name if "migrep" in roles else None,
        rnuma=name if "rnuma" in roles else None)


# -- cost helpers shared by the competitive and cost-model factories --------


def _page_costs(config) -> Tuple[int, int, int, int]:
    """(miss_benefit, migration, replication, relocation) cycle costs."""
    costs = config.costs
    bpp = config.machine.blocks_per_page
    benefit = max(1, costs.remote_miss - costs.local_miss)
    migration = (costs.soft_trap + costs.gather_cost(bpp, bpp)
                 + costs.copy_cost(bpp, bpp))
    replication = costs.soft_trap + costs.copy_cost(bpp, bpp)
    relocation = costs.soft_trap + costs.page_alloc_cost(bpp, bpp)
    return benefit, migration, replication, relocation


# -- built-in registrations -------------------------------------------------


def _static_migrep(config, *, threshold: Optional[int] = None,
                   enable_migration: bool = True,
                   enable_replication: bool = True) -> MigRepPolicy:
    return MigRepPolicy(
        threshold=(int(threshold) if threshold is not None
                   else config.thresholds.effective_migrep_threshold),
        enable_migration=enable_migration,
        enable_replication=enable_replication)


def _static_rnuma(config, *, threshold: Optional[int] = None,
                  relocation_delay: int = 0) -> RNUMAPolicy:
    return RNUMAPolicy(
        threshold=(int(threshold) if threshold is not None
                   else config.thresholds.effective_rnuma_threshold),
        relocation_delay=relocation_delay)


register_policy(PolicySpec(
    name="static-threshold",
    summary="the paper's fixed miss/refetch count thresholds (Section 3)",
    migrep_factory=_static_migrep,
    rnuma_factory=_static_rnuma,
))


def _competitive_migrep(config, *, beta: float = 1.0,
                        enable_migration: bool = True,
                        enable_replication: bool = True
                        ) -> CompetitiveMigRepPolicy:
    benefit, migration, replication, _ = _page_costs(config)
    return CompetitiveMigRepPolicy(
        miss_benefit=benefit, migration_cost=migration,
        replication_cost=replication, beta=beta,
        enable_migration=enable_migration,
        enable_replication=enable_replication)


def _competitive_rnuma(config, *, beta: float = 1.0,
                       relocation_delay: int = 0
                       ) -> CompetitiveRelocationPolicy:
    benefit, _, _, relocation = _page_costs(config)
    return CompetitiveRelocationPolicy(
        miss_benefit=benefit, relocation_cost=relocation, beta=beta,
        relocation_delay=relocation_delay)


register_policy(PolicySpec(
    name="competitive",
    summary="ski-rental thresholds derived from the configured cost model",
    migrep_factory=_competitive_migrep,
    rnuma_factory=_competitive_rnuma,
))


def _hysteresis_migrep(config, *, threshold: Optional[float] = None,
                       decay: float = 0.98,
                       enable_migration: bool = True,
                       enable_replication: bool = True
                       ) -> HysteresisMigRepPolicy:
    if threshold is None:
        saturation = 1.0 / (1.0 - decay)
        threshold = min(0.8 * saturation,
                        max(2.0, config.thresholds.effective_migrep_threshold
                            * 0.5))
    return HysteresisMigRepPolicy(
        threshold=float(threshold), decay=decay,
        enable_migration=enable_migration,
        enable_replication=enable_replication)


def _hysteresis_rnuma(config, *, threshold: Optional[float] = None,
                      decay: float = 0.9, relocation_delay: int = 0
                      ) -> HysteresisRelocationPolicy:
    if threshold is None:
        saturation = 1.0 / (1.0 - decay)
        threshold = min(0.8 * saturation,
                        max(2.0, config.thresholds.effective_rnuma_threshold
                            * 0.75))
    return HysteresisRelocationPolicy(
        threshold=float(threshold), decay=decay,
        relocation_delay=relocation_delay)


register_policy(PolicySpec(
    name="hysteresis",
    summary="exponentially-decayed miss pressure; only sustained bursts act",
    migrep_factory=_hysteresis_migrep,
    rnuma_factory=_hysteresis_rnuma,
))


def _cost_model_migrep(config, *, margin: float = 2.0, min_samples: int = 8,
                       enable_migration: bool = True,
                       enable_replication: bool = True
                       ) -> CostModelMigRepPolicy:
    benefit, migration, replication, _ = _page_costs(config)
    return CostModelMigRepPolicy(
        miss_benefit=benefit, migration_cost=migration,
        replication_cost=replication, margin=margin, min_samples=min_samples,
        enable_migration=enable_migration,
        enable_replication=enable_replication)


def _cost_model_rnuma(config, *, margin: float = 2.0, min_samples: int = 4,
                      relocation_delay: int = 0) -> CostModelRelocationPolicy:
    benefit, _, _, relocation = _page_costs(config)
    return CostModelRelocationPolicy(
        miss_benefit=benefit, relocation_cost=relocation, margin=margin,
        min_samples=min_samples, relocation_delay=relocation_delay)


register_policy(PolicySpec(
    name="cost-model",
    summary="act when projected cycles saved exceed margin x page-op cost",
    migrep_factory=_cost_model_migrep,
    rnuma_factory=_cost_model_rnuma,
))
