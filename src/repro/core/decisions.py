"""Threshold policies: when to migrate, replicate or relocate a page.

Mechanism and policy are separated: :mod:`repro.kernel.migration` and
:mod:`repro.kernel.relocation` know *how* to perform a page operation; the
classes here decide *whether* one should happen, exactly following the
decision rules of Section 3:

* **Replication** (Figure 3b): invoked when a page has seen no write
  misses and the requesting node's read-miss counter exceeds the threshold.
* **Migration** (Figure 3b): invoked when the requesting node's miss
  counter exceeds the home node's by at least the threshold.
* **R-NUMA relocation** (Figure 4b): invoked when the requesting node's
  refetch counter for the page exceeds the switching threshold.

The hybrid system of Section 6.4 additionally delays relocation until a
page has absorbed a preset number of misses, to give migration/replication
a chance to observe undisturbed counters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.counters import MigRepCounters, RefetchCounters


class MigRepDecision(enum.Enum):
    """Outcome of a migration/replication policy evaluation."""

    NONE = "none"
    MIGRATE = "migrate"
    REPLICATE = "replicate"


@dataclass
class MigRepPolicy:
    """Decision policy for CC-NUMA+MigRep.

    Parameters
    ----------
    threshold:
        Miss-count threshold (800 in the paper's fast system).
    enable_migration / enable_replication:
        Allow disabling one mechanism to build the "Mig" and "Rep" systems
        of Figure 5.
    """

    threshold: int
    enable_migration: bool = True
    enable_replication: bool = True

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def evaluate(self, counters: MigRepCounters, page: int, requester: int,
                 home: int, *, is_replica_request: bool = False) -> MigRepDecision:
        """Evaluate the policy for a miss on ``page`` by ``requester``.

        ``is_replica_request`` marks requests from nodes that already hold
        a replica (no further operation is useful for them).
        """
        if requester == home or is_replica_request:
            return MigRepDecision.NONE

        # Direct row access (equivalent to the read_misses/write_misses/
        # misses helpers): this evaluates once per remote miss at the home.
        read_row = counters._read.get(page)
        write_row = counters._write.get(page)

        if self.enable_replication:
            # Only *remote* write misses make a page non-replicable: the home
            # node writing its own page (e.g. producing it) does not preclude
            # read-only copies elsewhere.
            remote_writes = (sum(write_row) - write_row[home]
                            if write_row is not None else 0)
            if (remote_writes == 0 and read_row is not None
                    and read_row[requester] > self.threshold):
                return MigRepDecision.REPLICATE

        if self.enable_migration:
            requester_misses = 0
            home_misses = 0
            if read_row is not None:
                requester_misses += read_row[requester]
                home_misses += read_row[home]
            if write_row is not None:
                requester_misses += write_row[requester]
                home_misses += write_row[home]
            if requester_misses - home_misses > self.threshold:
                return MigRepDecision.MIGRATE

        return MigRepDecision.NONE


@dataclass
class RNUMAPolicy:
    """Decision policy for R-NUMA page relocation.

    Parameters
    ----------
    threshold:
        Refetch-count switching threshold (32 in the paper's fast system).
    relocation_delay:
        Minimum number of misses a page must have absorbed (home-side
        count) before relocation is allowed.  Zero for plain R-NUMA;
        positive only in the R-NUMA+MigRep hybrid (Section 6.4).
    """

    threshold: int
    relocation_delay: int = 0

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.relocation_delay < 0:
            raise ValueError("relocation_delay must be non-negative")

    def should_relocate(self, counters: RefetchCounters, page: int,
                        *, page_total_misses: int = 0) -> bool:
        """True when the refetch counter for ``page`` warrants relocation."""
        if self.relocation_delay and page_total_misses < self.relocation_delay:
            return False
        return counters.count(page) > self.threshold
