"""Base CC-NUMA protocol with a per-node SRAM block cache.

Section 2 of the paper: every node's cluster device snoops the memory bus
and satisfies cache fills for remote data out of a small SRAM *block
cache*; misses in the block cache allocate a frame (writing back the
victim) and fetch the block from its home node over the network.

Two variants are produced by the factory:

* ``ccnuma`` — the base system with a 64 KB (per node) block cache,
* ``perfect`` — the normalisation baseline with an *infinite* block cache,
  which therefore never suffers capacity/conflict remote misses (only cold
  and coherence ones).  The perfect system is built simply by constructing
  the machine with ``capacity_blocks=None``; the protocol code is shared.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.protocol import _DEPARTED_EVICTED, DSMProtocol
from repro.interconnect.message import MessageType
from repro.mem.page_table import PageMode


class CCNUMAProtocol(DSMProtocol):
    """CC-NUMA with remote data cached in the node's block cache."""

    name = "ccnuma"

    # ------------------------------------------------------------------ helpers

    def _block_cache_fetch(self, node: int, page: int, block: int,
                           is_write: bool, now: int, home: int
                           ) -> Tuple[int, int, bool]:
        """Satisfy a remote-page miss through the node's block cache.

        Returns ``(latency, version, went_remote)``.  A block-cache hit is
        served at local-miss latency (the block cache sits on the memory
        bus); a miss fetches the block from the home node and installs it,
        evicting (and writing back if dirty) the victim frame.

        The :class:`~repro.mem.block_cache.BlockCache` lookup/fill/
        touch-write steps are inlined on the cache's frame dictionary
        (pre-bound in :class:`DSMProtocol`): this helper runs on every
        remote-page reference of every system, and the method-call version
        of the same logic dominated its profile.
        """
        # inlined Directory.version + BlockCache.lookup
        e = self._dir_entries.get(block)
        version = e.version if e is not None else 0
        cap = self._bc_caps[node]
        frames = self._bc_frames[node]
        bc_stats = self._bc_stats[node]
        hit = False
        if cap is None:
            key = block
            entry = frames.get(block)
        else:
            key = block % cap
            entry = frames.get(key)
            if entry is not None and entry[0] != block:
                entry = None
        if entry is not None:
            if entry[1] >= version:
                bc_stats.hits += 1
                hit = True
            else:
                # stale copy: drop it so the fill below refreshes it
                del frames[key]
                bc_stats.invalidations += 1
        if hit:
            self.node_stats[node].block_cache_hits += 1
            if is_write:
                extra, version = self._directory_write(node, block)
                # inlined BlockCache.touch_write (entry is resident)
                frames[key] = (block, version if version > entry[1] else entry[1],
                               True)
                return self._local_miss_cost + extra, version, False
            return self._local_miss_cost, version, False
        bc_stats.misses += 1

        latency, version, _cause = self._remote_fetch(node, page, block,
                                                      is_write, now, home)
        # inlined BlockCache.fill
        if cap is None:
            frames[block] = (block, version, is_write)
        else:
            old = frames.get(key)
            frames[key] = (block, version, is_write)
            if old is not None and old[0] != block:
                bc_stats.evictions += 1
                victim_block = old[0]
                # inlined mark_evicted + Directory.record_eviction
                self._departed[node][victim_block] = _DEPARTED_EVICTED
                ve = self._dir_entries.get(victim_block)
                if ve is not None:
                    ve.sharers &= ~(1 << node)
                    if ve.owner == node:
                        ve.owner = -1
                        self.directory.writebacks += 1
                if old[2]:  # dirty victim: write it back to its home
                    rec = self._vm_pages.get(victim_block // self._bpp)
                    if rec is not None and rec.home != node:
                        self.network.stats.record(MessageType.WRITEBACK)
        return latency, version, True

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        return latency, 0, version, remote

    def describe(self) -> str:
        kind = "infinite" if self.block_caches[0].is_infinite else "finite"
        return f"CC-NUMA ({kind} block cache)"
