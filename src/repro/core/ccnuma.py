"""Base CC-NUMA protocol with a per-node SRAM block cache.

Section 2 of the paper: every node's cluster device snoops the memory bus
and satisfies cache fills for remote data out of a small SRAM *block
cache*; misses in the block cache allocate a frame (writing back the
victim) and fetch the block from its home node over the network.

Two variants are produced by the factory:

* ``ccnuma`` — the base system with a 64 KB (per node) block cache,
* ``perfect`` — the normalisation baseline with an *infinite* block cache,
  which therefore never suffers capacity/conflict remote misses (only cold
  and coherence ones).  The perfect system is built simply by constructing
  the machine with ``capacity_blocks=None``; the protocol code is shared.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.protocol import DSMProtocol
from repro.interconnect.message import MessageType
from repro.mem.page_table import PageMode


class CCNUMAProtocol(DSMProtocol):
    """CC-NUMA with remote data cached in the node's block cache."""

    name = "ccnuma"

    # ------------------------------------------------------------------ helpers

    def _block_cache_fetch(self, node: int, page: int, block: int,
                           is_write: bool, now: int, home: int
                           ) -> Tuple[int, int, bool]:
        """Satisfy a remote-page miss through the node's block cache.

        Returns ``(latency, version, went_remote)``.  A block-cache hit is
        served at local-miss latency (the block cache sits on the memory
        bus); a miss fetches the block from the home node and installs it,
        evicting (and writing back if dirty) the victim frame.
        """
        stats = self.node_stats[node]
        bc = self.block_caches[node]
        version = self.directory.version(block)

        if bc.lookup(block, version):
            stats.block_cache_hits += 1
            if is_write:
                extra, version = self._directory_write(node, block)
                bc.touch_write(block, version)
                return self.costs.local_miss + extra, version, False
            return self.costs.local_miss, version, False

        latency, version, _cause = self._remote_fetch(node, page, block,
                                                      is_write, now, home)
        victim = bc.fill(block, version, dirty=is_write)
        if victim is not None:
            victim_block, victim_dirty = victim
            self.mark_evicted(node, victim_block)
            self.directory.record_eviction(victim_block, node)
            if victim_dirty:
                victim_home = self.vm.home_of(self.addr.page_of_block(victim_block))
                if victim_home is not None and victim_home != node:
                    self.network.stats.record(MessageType.WRITEBACK)
        return latency, version, True

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        return latency, 0, version, remote

    def describe(self) -> str:
        kind = "infinite" if self.block_caches[0].is_infinite else "finite"
        return f"CC-NUMA ({kind} block cache)"
