"""Base CC-NUMA protocol with a per-node SRAM block cache.

Section 2 of the paper: every node's cluster device snoops the memory bus
and satisfies cache fills for remote data out of a small SRAM *block
cache*; misses in the block cache allocate a frame (writing back the
victim) and fetch the block from its home node over the network.

Two variants are produced by the factory:

* ``ccnuma`` — the base system with a 64 KB (per node) block cache,
* ``perfect`` — the normalisation baseline with an *infinite* block cache,
  which therefore never suffers capacity/conflict remote misses (only cold
  and coherence ones).  The perfect system is built simply by constructing
  the machine with ``capacity_blocks=None``; the protocol code is shared.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.protocol import _DEPARTED_EVICTED, DSMProtocol
from repro.interconnect.message import MessageType
from repro.mem.page_table import PageMode


class CCNUMAProtocol(DSMProtocol):
    """CC-NUMA with remote data cached in the node's block cache."""

    name = "ccnuma"

    # ------------------------------------------------------------------ helpers

    def _block_cache_fetch(self, node: int, page: int, block: int,
                           is_write: bool, now: int, home: int
                           ) -> Tuple[int, int, bool]:
        """Satisfy a remote-page miss through the node's block cache.

        Returns ``(latency, version, went_remote)``.  A block-cache hit is
        served at local-miss latency (the block cache sits on the memory
        bus); a miss fetches the block from the home node and installs it,
        evicting (and writing back if dirty) the victim frame.

        The :class:`~repro.mem.block_cache.BlockCache` lookup/fill/
        touch-write steps are inlined on the cache's flat frame arrays
        (pre-bound in :class:`DSMProtocol`): this helper runs on every
        remote-page reference of every system, and the method-call version
        of the same logic dominated its profile.
        """
        # inlined Directory.version
        versions = self._dir_version
        version = versions[block] if block < len(versions) else 0
        cap = self._bc_caps[node]
        bc_stats = self._bc_stats[node]

        if cap is None:
            # infinite (perfect CC-NUMA) cache: block -> (version, dirty)
            store = self._bc_store[node]
            entry = store.get(block)
            if entry is not None:
                stored = entry[0]
                if stored >= version:
                    bc_stats.hits += 1
                    self.node_stats[node].block_cache_hits += 1
                    if is_write:
                        extra, version = self._directory_write(node, block)
                        store[block] = (version if version > stored else stored,
                                        True)
                        return self._local_miss_cost + extra, version, False
                    return self._local_miss_cost, version, False
                # stale copy: drop it so the fill below refreshes it
                del store[block]
                bc_stats.invalidations += 1
        else:
            # finite cache: flat (blocks, versions, dirty) frame arrays
            idx = block % cap
            bb = self._bc_blocks[node]
            bv = self._bc_versions[node]
            bd = self._bc_dirty[node]
            if bb[idx] == block:
                if bv[idx] >= version:
                    bc_stats.hits += 1
                    self.node_stats[node].block_cache_hits += 1
                    if is_write:
                        extra, version = self._directory_write(node, block)
                        # inlined BlockCache.touch_write (the frame holds
                        # block)
                        if version > bv[idx]:
                            bv[idx] = version
                        bd[idx] = True
                        return self._local_miss_cost + extra, version, False
                    return self._local_miss_cost, version, False
                # stale copy: drop it so the fill below refreshes it
                bb[idx] = -1
                bd[idx] = False
                bc_stats.invalidations += 1
        bc_stats.misses += 1

        latency, version = self._remote_fill(node, block, is_write, now, home)

        # inlined BlockCache.fill
        if cap is None:
            store[block] = (version, is_write)
            return latency, version, True
        old = bb[idx]
        old_dirty = bd[idx]
        bb[idx] = block
        bv[idx] = version
        bd[idx] = is_write
        if old >= 0 and old != block:
            bc_stats.evictions += 1
            # inlined mark_evicted + Directory.record_eviction
            self._departed[node][old] = _DEPARTED_EVICTED
            dir_sharers = self._dir_sharers
            if old < len(dir_sharers) and self._dir_tracked[old]:
                dir_sharers[old] &= ~(1 << node)
                if self._dir_owner[old] == node:
                    self._dir_owner[old] = -1
                    self.directory.writebacks += 1
            if old_dirty:  # dirty victim: write it back to its home
                vm_home = self._vm_home
                vpage = old // self._bpp
                vhome = vm_home[vpage] if vpage < len(vm_home) else -1
                if vhome >= 0 and vhome != node:
                    self.network.stats.record(MessageType.WRITEBACK)
        return latency, version, True

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        return latency, 0, version, remote

    def describe(self) -> str:
        kind = "infinite" if self.block_caches[0].is_infinite else "finite"
        return f"CC-NUMA ({kind} block cache)"
