"""CC-NUMA+MigRep: kernel page migration and replication (Section 3.1).

The cluster device of CC-NUMA+MigRep adds per-page per-node miss counters
at the home node.  Every cache-fill request arriving at the home bumps the
appropriate counter, and the hardware compares the counters against a
threshold:

* **replication** when the page has seen no write misses and the
  requester's read-miss counter exceeds the threshold — the page is copied
  read-only into the requester's memory;
* **migration** when the requester's miss counter exceeds the home's by at
  least the threshold — the page is gathered from all cachers and moved to
  the requester, which becomes the new home.

A write to a replicated page raises a protection fault at the writer and a
request at the home to collapse the page back to a single read-write copy.

The ``Mig``-only and ``Rep``-only systems of Figure 5 are this protocol
with one of the two mechanisms disabled.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.counters import MigRepCounters
from repro.core.decisions import MigRepDecision, MigRepPolicy
from repro.kernel.faults import FaultKind
from repro.kernel.migration import MigrationEngine
from repro.mem.page_table import PageMode


class MigRepProtocol(CCNUMAProtocol):
    """CC-NUMA plus home-driven page migration/replication."""

    name = "migrep"

    def __init__(self, machine, *, enable_migration: bool = True,
                 enable_replication: bool = True) -> None:
        super().__init__(machine)
        thresholds = self.cfg.thresholds
        self.counters = MigRepCounters(
            num_nodes=self.cfg.machine.num_nodes,
            reset_interval=thresholds.effective_migrep_reset_interval,
        )
        self.policy = MigRepPolicy(
            threshold=thresholds.effective_migrep_threshold,
            enable_migration=enable_migration,
            enable_replication=enable_replication,
        )
        self.engine = MigrationEngine(
            addr=self.addr,
            costs=self.costs,
            vm=self.vm,
            directory=self.directory,
            network=self.network,
            page_tables=self.page_tables,
            block_caches=self.block_caches,
            l1_caches=machine.l1_by_node,
        )
        # pre-bound for the per-miss fast path
        self._record_miss = self.counters.record_miss

    # ------------------------------------------------------------------ page-op helpers

    def _perform_replication(self, page: int, node: int, now: int) -> int:
        """Replicate ``page`` at ``node``; return the page-operation cycles."""
        outcome = self.engine.replicate(page, node, now)
        stats = self.node_stats[node]
        stats.replications += 1
        self.fault_logs[node].record(FaultKind.REPLICATION_TRAP, outcome.cost)
        return outcome.cost

    def _perform_migration(self, page: int, node: int, now: int) -> int:
        """Migrate ``page`` to ``node``; return the page-operation cycles."""
        outcome = self.engine.migrate(page, node, now)
        stats = self.node_stats[node]
        stats.migrations += 1
        self.fault_logs[node].record(FaultKind.MIGRATION_TRAP, outcome.cost)
        # after a migration the page's counters no longer describe the new
        # home relationship; reset them so decisions restart cleanly
        self.counters.reset_page(page)
        return outcome.cost

    def _collapse_replicas(self, page: int, writer: int, now: int) -> int:
        """Collapse a replicated page to read-write; return the cycles charged."""
        outcome = self.engine.collapse_replicas(page, writer, now)
        stats = self.node_stats[writer]
        stats.replica_collapses += 1
        self.page_tables[writer].record_protection_fault(page)
        self.fault_logs[writer].record(FaultKind.PROTECTION_FAULT, outcome.cost)
        # a page that needed a collapse is clearly not read-only: reset its
        # counters so replication is not immediately re-triggered
        self.counters.reset_page(page)
        return outcome.cost

    def _evaluate_policy(self, page: int, node: int, home: int, now: int) -> int:
        """Run the MigRep decision policy; return any page-op cycles incurred."""
        # equivalent to `node in self.vm.replicas_of(page)` without the
        # per-miss set copy that replicas_of() makes
        rec = self._vm_pages.get(page)
        is_replica_request = rec is not None and node in rec.replicas
        decision = self.policy.evaluate(self.counters, page, node, home,
                                        is_replica_request=is_replica_request)
        if decision is MigRepDecision.REPLICATE:
            return self._perform_replication(page, node, now)
        if decision is MigRepDecision.MIGRATE:
            return self._perform_migration(page, node, now)
        return 0

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        pageop = 0

        # Writes to a replicated page fault and collapse the replicas first.
        if self.vm.is_replicated(page) and is_write:
            pageop += self._collapse_replicas(page, node, now)
            mode = self.page_tables[node].mode_of(page)
            home = self.vm.home_of(page) or home

        # Reads served by a local replica are local memory accesses.
        if not is_write and mode is PageMode.REPLICA:
            stats = self.node_stats[node]
            stats.local_misses += 1
            version = self._directory_read(node, block)
            return self.costs.local_miss, pageop, version, False

        # Otherwise behave like CC-NUMA, but account the miss at the home.
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        if remote:
            self._record_miss(page, node, is_write)
            pageop += self._evaluate_policy(page, node, home, now)
        return latency, pageop, version, remote

    def _local_fill(self, node: int, block: int, is_write: bool) -> Tuple[int, int]:
        # The home node's own misses also feed its counters so that the
        # migration comparison (requester vs home) sees both sides.
        latency, version = super()._local_fill(node, block, is_write)
        page = block // self._bpp
        rec = self._vm_pages.get(page)
        if rec is not None and rec.home == node:
            self._record_miss(page, node, is_write)
        return latency, version

    def describe(self) -> str:
        parts = []
        if self.policy.enable_migration:
            parts.append("migration")
        if self.policy.enable_replication:
            parts.append("replication")
        return "CC-NUMA + " + "/".join(parts) if parts else "CC-NUMA"
