"""CC-NUMA+MigRep: kernel page migration and replication (Section 3.1).

The cluster device of CC-NUMA+MigRep adds per-page per-node miss counters
at the home node.  Every cache-fill request arriving at the home bumps the
appropriate counter, and the hardware compares the counters against a
threshold:

* **replication** when the page has seen no write misses and the
  requester's read-miss counter exceeds the threshold — the page is copied
  read-only into the requester's memory;
* **migration** when the requester's miss counter exceeds the home's by at
  least the threshold — the page is gathered from all cachers and moved to
  the requester, which becomes the new home.

A write to a replicated page raises a protection fault at the writer and a
request at the home to collapse the page back to a single read-write copy.

The ``Mig``-only and ``Rep``-only systems of Figure 5 are this protocol
with one of the two mechanisms disabled.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.counters import MigRepCounters
from repro.core.decisions import MigRepDecision, MigRepPolicy, resolve_policy
from repro.core.protocol import _DEPARTED_INVALIDATED
from repro.interconnect.message import MessageType
from repro.kernel.faults import FaultKind
from repro.kernel.migration import MigrationEngine
from repro.mem.page_table import PageMode


class MigRepProtocol(CCNUMAProtocol):
    """CC-NUMA plus home-driven page migration/replication."""

    name = "migrep"

    def __init__(self, machine, *, enable_migration: Optional[bool] = None,
                 enable_replication: Optional[bool] = None,
                 policy=None) -> None:
        super().__init__(machine)
        thresholds = self.cfg.thresholds
        self.counters = MigRepCounters(
            num_nodes=self.cfg.machine.num_nodes,
            reset_interval=thresholds.effective_migrep_reset_interval,
        )
        # resolved through the open POLICIES registry: an explicit policy
        # object/name wins, then the system spec's override, then the
        # config's thresholds.migrep_policy (default: the paper's
        # static-threshold rule, bit-identical to the closed version).
        # Only explicitly-given enable flags are forwarded, so the "mig"/
        # "rep" factories stay authoritative while config-level policy
        # args are not clobbered by constructor defaults.
        flags = {k: v for k, v in (("enable_migration", enable_migration),
                                   ("enable_replication", enable_replication))
                 if v is not None}
        self.policy = resolve_policy(
            "migrep", self.cfg, spec=getattr(machine, "system", None),
            policy=policy, **flags)
        self.engine = MigrationEngine(
            addr=self.addr,
            costs=self.costs,
            vm=self.vm,
            directory=self.directory,
            network=self.network,
            page_tables=self.page_tables,
            block_caches=self.block_caches,
            l1_caches=machine.l1_by_node,
        )
        # pre-bound for the per-miss fast path; the inlined decision body
        # in _service_remote_page is only valid for the exact static
        # policy, so any other policy takes the generic evaluate() path
        self._record_miss = self.counters.record_miss
        self._mr_static = type(self.policy) is MigRepPolicy
        if self._mr_static:
            self._mr_threshold = self.policy.threshold
            self._mr_migration = self.policy.enable_migration
            self._mr_replication = self.policy.enable_replication

    # ------------------------------------------------------------------ page-op helpers

    def _perform_replication(self, page: int, node: int, now: int) -> int:
        """Replicate ``page`` at ``node``; return the page-operation cycles."""
        outcome = self.engine.replicate(page, node, now)
        stats = self.node_stats[node]
        stats.replications += 1
        self.fault_logs[node].record(FaultKind.REPLICATION_TRAP, outcome.cost)
        return outcome.cost

    def _perform_migration(self, page: int, node: int, now: int) -> int:
        """Migrate ``page`` to ``node``; return the page-operation cycles."""
        outcome = self.engine.migrate(page, node, now)
        stats = self.node_stats[node]
        stats.migrations += 1
        self.fault_logs[node].record(FaultKind.MIGRATION_TRAP, outcome.cost)
        # after a migration the page's counters no longer describe the new
        # home relationship; reset them so decisions restart cleanly
        self.counters.reset_page(page)
        return outcome.cost

    def _collapse_replicas(self, page: int, writer: int, now: int) -> int:
        """Collapse a replicated page to read-write; return the cycles charged."""
        outcome = self.engine.collapse_replicas(page, writer, now)
        stats = self.node_stats[writer]
        stats.replica_collapses += 1
        self.page_tables[writer].record_protection_fault(page)
        self.fault_logs[writer].record(FaultKind.PROTECTION_FAULT, outcome.cost)
        # a page that needed a collapse is clearly not read-only: reset its
        # counters so replication is not immediately re-triggered
        self.counters.reset_page(page)
        return outcome.cost

    def _evaluate_policy(self, page: int, node: int, home: int, now: int) -> int:
        """Run the MigRep decision policy; return any page-op cycles incurred."""
        # equivalent to `node in self.vm.replicas_of(page)` without the
        # per-miss set copy that replicas_of() makes
        rec = self._vm_pages.get(page)
        is_replica_request = rec is not None and node in rec.replicas
        decision = self.policy.evaluate(self.counters, page, node, home,
                                        is_replica_request=is_replica_request)
        if decision is MigRepDecision.REPLICATE:
            return self._perform_replication(page, node, now)
        if decision is MigRepDecision.MIGRATE:
            return self._perform_migration(page, node, now)
        return 0

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        pageop = 0

        # Writes to a replicated page fault and collapse the replicas first
        # (inlined vm.is_replicated on the pre-bound page map).
        rec = self._vm_pages.get(page)
        if is_write and rec is not None and rec.replicated:
            pageop += self._collapse_replicas(page, node, now)
            mode = self.page_tables[node].mode_of(page)
            home = self.vm.home_of(page) or home

        # Reads served by a local replica are local memory accesses.
        if not is_write and mode is PageMode.REPLICA:
            stats = self.node_stats[node]
            stats.local_misses += 1
            version = self._directory_read(node, block)
            return self.costs.local_miss, pageop, version, False

        # Otherwise behave like CC-NUMA, but account the miss at the home.
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        if remote:
            # inlined MigRepCounters.record_miss + _evaluate_policy on the
            # dense counter columns (one copy of the counter body lives in
            # _local_fill and one in the compiled kernel; keep in sync) —
            # this runs on every remote miss reaching the home
            counters = self.counters
            nn = counters.num_nodes
            if page >= counters._cap:
                counters.reserve(page + 1)
            base = page * nn
            if is_write:
                counters._live_w[page] = 1
                counters._write[base + node] += 1
            else:
                counters._live_r[page] = 1
                counters._read[base + node] += 1
            total = counters._since[page] + 1
            if total >= counters.reset_interval:
                counters.reset_page(page)
            else:
                counters._since[page] = total
            # inlined MigRepPolicy.evaluate (node != home on this path;
            # replica holders trigger no further operation).  `rec` from
            # the entry of this method is still the live record: page
            # operations mutate records in place, never replace them.
            # Reset-to-zero rows read the same as never-recorded rows for
            # every comparison here (all strict > on non-negative counts),
            # so the live flags need no consulting.
            if rec is None or node not in rec.replicas:
                if not self._mr_static:
                    # the guard above already established this is not a
                    # replica request; dispatch the decision directly
                    decision = self.policy.evaluate(
                        counters, page, node, home, is_replica_request=False)
                    if decision is MigRepDecision.REPLICATE:
                        pageop += self._perform_replication(page, node, now)
                    elif decision is MigRepDecision.MIGRATE:
                        pageop += self._perform_migration(page, node, now)
                    return latency, pageop, version, remote
                reads = counters._read
                writes = counters._write
                decided = False
                if self._mr_replication:
                    remote_writes = (sum(writes[base:base + nn])
                                     - writes[base + home])
                    if (remote_writes == 0
                            and reads[base + node] > self._mr_threshold):
                        pageop += self._perform_replication(page, node, now)
                        decided = True
                if not decided and self._mr_migration:
                    requester_misses = reads[base + node] + writes[base + node]
                    home_misses = reads[base + home] + writes[base + home]
                    if requester_misses - home_misses > self._mr_threshold:
                        pageop += self._perform_migration(page, node, now)
        return latency, pageop, version, remote

    def _local_fill(self, node: int, block: int, is_write: bool) -> Tuple[int, int]:
        # The home node's own misses also feed its counters so that the
        # migration comparison (requester vs home) sees both sides.  The
        # base _local_fill, _directory_write/_directory_read and
        # MigRepCounters.record_miss bodies are all inlined: this runs on
        # every home-local miss, the hottest MigRep event by far on the
        # paper's workloads.
        self.node_stats[node].local_misses += 1
        sharers = self._dir_sharers
        if block >= len(sharers):
            self._dir_reserve(block + 1)
        self._dir_tracked[block] = 1
        if is_write:
            # inlined _directory_write
            bit = 1 << node
            others = sharers[block] & ~bit
            owner = self._dir_owner
            directory = self.directory
            if owner[block] >= 0 and owner[block] != node:
                directory.writebacks += 1
            sharers[block] = bit
            owner[block] = node
            versions = self._dir_version
            version = versions[block] + 1
            versions[block] = version
            latency = self._local_miss_cost
            if others:
                invalidations = others.bit_count()
                directory.invalidations_sent += invalidations
                latency += invalidations * self._inval_cost
                stats = self.network.stats
                stats.record(MessageType.INVALIDATION, invalidations)
                stats.record(MessageType.INVALIDATION_ACK, invalidations)
                departed = self._departed
                while others:
                    low = others & -others
                    others ^= low
                    departed[low.bit_length() - 1][block] = \
                        _DEPARTED_INVALIDATED
        else:
            # inlined _directory_read
            sharers[block] |= 1 << node
            latency = self._local_miss_cost
            version = self._dir_version[block]
        page = block // self._bpp
        vm_home = self._vm_home
        if page < len(vm_home) and vm_home[page] == node:
            # inlined MigRepCounters.record_miss (node is in range) on the
            # dense counter columns
            counters = self.counters
            if page >= counters._cap:
                counters.reserve(page + 1)
            base = page * counters.num_nodes
            if is_write:
                counters._live_w[page] = 1
                counters._write[base + node] += 1
            else:
                counters._live_r[page] = 1
                counters._read[base + node] += 1
            total = counters._since[page] + 1
            if total >= counters.reset_interval:
                counters.reset_page(page)
            else:
                counters._since[page] = total
        return latency, version

    def describe(self) -> str:
        parts = []
        if getattr(self.policy, "enable_migration", True):
            parts.append("migration")
        if getattr(self.policy, "enable_replication", True):
            parts.append("replication")
        base = "CC-NUMA + " + "/".join(parts) if parts else "CC-NUMA"
        policy_name = getattr(self.policy, "name", "")
        if policy_name and policy_name != "static-threshold":
            base += f" [{policy_name} policy]"
        return base
