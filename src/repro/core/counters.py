"""Per-page per-node counter tables driving page operations.

Two counter families appear in the paper:

* **MigRep miss counters** (Figure 3a): kept at the *home* node, one
  read-miss and one write-miss counter per (page, node) pair.  They are
  compared against a threshold to trigger replication or migration and are
  reset periodically.
* **R-NUMA refetch counters** (Figure 4a): kept at the *requesting* node,
  one counter per remote page counting capacity/conflict refetches.  They
  trigger the purely local relocation into the S-COMA page cache.

Both tables are sparse dictionaries keyed by page, because only a small
fraction of the address space is ever shared remotely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class MigRepCounters:
    """Home-side per-page per-node read/write miss counters.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the cluster.
    reset_interval:
        After this many misses have been recorded against a page since its
        last reset, the page's counters are cleared (the paper resets the
        counters periodically to track phase changes).
    """

    __slots__ = ("num_nodes", "reset_interval", "_read", "_write",
                 "_since_reset", "resets")

    def __init__(self, num_nodes: int, reset_interval: int) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if reset_interval <= 0:
            raise ValueError("reset_interval must be positive")
        self.num_nodes = num_nodes
        self.reset_interval = reset_interval
        self._read: Dict[int, List[int]] = {}
        self._write: Dict[int, List[int]] = {}
        self._since_reset: Dict[int, int] = {}
        self.resets = 0

    # -- recording ----------------------------------------------------------------

    def _row(self, table: Dict[int, List[int]], page: int) -> List[int]:
        row = table.get(page)
        if row is None:
            row = [0] * self.num_nodes
            table[page] = row
        return row

    def record_miss(self, page: int, node: int, is_write: bool) -> None:
        """Record one miss on ``page`` by ``node``; reset the page if due."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        # inlined _row: this runs once per (local or remote) miss reaching
        # a MigRep home
        table = self._write if is_write else self._read
        row = table.get(page)
        if row is None:
            row = [0] * self.num_nodes
            table[page] = row
        row[node] += 1
        since = self._since_reset
        total = since.get(page, 0) + 1
        if total >= self.reset_interval:
            self.reset_page(page)
        else:
            since[page] = total

    def reset_page(self, page: int) -> None:
        """Clear the counters of ``page`` (periodic reset)."""
        self._read.pop(page, None)
        self._write.pop(page, None)
        self._since_reset[page] = 0
        self.resets += 1

    # -- queries -------------------------------------------------------------------

    def read_misses(self, page: int, node: int) -> int:
        """Read misses recorded for (page, node) since the last reset."""
        row = self._read.get(page)
        return row[node] if row is not None else 0

    def write_misses(self, page: int, node: int) -> int:
        """Write misses recorded for (page, node) since the last reset."""
        row = self._write.get(page)
        return row[node] if row is not None else 0

    def misses(self, page: int, node: int) -> int:
        """Total (read + write) misses for (page, node) since the last reset."""
        return self.read_misses(page, node) + self.write_misses(page, node)

    def total_write_misses(self, page: int) -> int:
        """Write misses on ``page`` summed over every node."""
        row = self._write.get(page)
        return sum(row) if row is not None else 0

    def total_misses(self, page: int) -> int:
        """All misses on ``page`` since the last reset."""
        read = self._read.get(page)
        write = self._write.get(page)
        total = 0
        if read is not None:
            total += sum(read)
        if write is not None:
            total += sum(write)
        return total

    def misses_since_placement(self, page: int) -> int:
        """Misses recorded against ``page`` since its last reset (reset-relative)."""
        return self._since_reset.get(page, 0)

    def hottest_node(self, page: int) -> Tuple[Optional[int], int]:
        """Node with the most misses on ``page`` and its miss count."""
        best_node: Optional[int] = None
        best = 0
        for node in range(self.num_nodes):
            m = self.misses(page, node)
            if m > best:
                best = m
                best_node = node
        return best_node, best

    def tracked_pages(self) -> int:
        """Number of pages with live counters."""
        return len(set(self._read) | set(self._write))


class RefetchCounters:
    """Requester-side per-page capacity/conflict refetch counters (R-NUMA).

    One instance per node.  A counter is cleared when the node relocates
    the page (it is no longer a CC-NUMA page there) and when the page is
    later evicted from the page cache the counter restarts from zero.
    """

    __slots__ = ("_counts", "total_recorded")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self.total_recorded = 0

    def record_refetch(self, page: int) -> int:
        """Record one capacity/conflict refetch on ``page``; return the new count."""
        new = self._counts.get(page, 0) + 1
        self._counts[page] = new
        self.total_recorded += 1
        return new

    def count(self, page: int) -> int:
        """Current refetch count for ``page``."""
        return self._counts.get(page, 0)

    def clear(self, page: int) -> None:
        """Clear the counter for ``page`` (after relocation or eviction)."""
        self._counts.pop(page, None)

    def tracked_pages(self) -> int:
        """Number of pages with a non-zero counter."""
        return len(self._counts)
