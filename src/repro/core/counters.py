"""Per-page per-node counter tables driving page operations.

Two counter families appear in the paper:

* **MigRep miss counters** (Figure 3a): kept at the *home* node, one
  read-miss and one write-miss counter per (page, node) pair.  They are
  compared against a threshold to trigger replication or migration and are
  reset periodically.
* **R-NUMA refetch counters** (Figure 4a): kept at the *requesting* node,
  one counter per remote page counting capacity/conflict refetches.  They
  trigger the purely local relocation into the S-COMA page cache.

The MigRep table is stored *dense*: flat buffer-backed ``array('q')``
columns indexed by ``page * num_nodes + node``, plus per-page "row live"
flag bytes preserving the sparse table's distinction between "never
counted" and "counted then reset to zero" (the two are value-identical
for every threshold comparison — all comparisons are strict ``>`` against
non-negative counts — but :meth:`MigRepCounters.tracked_pages` observes
the difference).  The dense layout is what lets the compiled residual
kernel bump counters and evaluate the static-threshold policy without
touching Python objects.  The R-NUMA refetch counters use the same dense
layout (one flat ``array('q')`` per node, indexed by page) so the
kernel's R-NUMA lane can count capacity refetches and test the static
relocation threshold inside the compiled walk.
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence, Tuple


class MigRepCounters:
    """Home-side per-page per-node read/write miss counters.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the cluster.
    reset_interval:
        After this many misses have been recorded against a page since its
        last reset, the page's counters are cleared (the paper resets the
        counters periodically to track phase changes).

    Storage: ``_read``/``_write`` are flat ``array('q')`` columns indexed
    by ``page * num_nodes + node``; ``_since`` holds the per-page miss
    count since the last reset; ``_live_r``/``_live_w`` flag which pages
    have a live (ever-recorded-since-reset) row.  All grow in place via
    :meth:`reserve` so aliases (and exported buffer views) stay valid.
    """

    __slots__ = ("num_nodes", "reset_interval", "_cap", "_read", "_write",
                 "_since", "_live_r", "_live_w", "resets")

    def __init__(self, num_nodes: int, reset_interval: int) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if reset_interval <= 0:
            raise ValueError("reset_interval must be positive")
        self.num_nodes = num_nodes
        self.reset_interval = reset_interval
        self._cap = 0
        self._read = array("q")
        self._write = array("q")
        self._since = array("q")
        self._live_r = bytearray()
        self._live_w = bytearray()
        self.resets = 0

    # -- storage management ---------------------------------------------------------

    def reserve(self, n: int) -> None:
        """Grow the columns (in place) to cover page ids ``< n``."""
        cap = self._cap
        if n <= cap:
            return
        grow = max(n, 2 * cap, 256) - cap
        row_bytes = bytes(8 * grow * self.num_nodes)
        self._read.frombytes(row_bytes)
        self._write.frombytes(row_bytes)
        self._since.frombytes(bytes(8 * grow))
        self._live_r += bytes(grow)
        self._live_w += bytes(grow)
        self._cap = cap + grow

    # -- recording ----------------------------------------------------------------

    def record_miss(self, page: int, node: int, is_write: bool) -> None:
        """Record one miss on ``page`` by ``node``; reset the page if due."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        # this runs once per (local or remote) miss reaching a MigRep home
        # (hot-path copies of this body are inlined in core/migrep.py and
        # the compiled kernel — keep them in sync)
        if page >= self._cap:
            self.reserve(page + 1)
        if is_write:
            self._live_w[page] = 1
            self._write[page * self.num_nodes + node] += 1
        else:
            self._live_r[page] = 1
            self._read[page * self.num_nodes + node] += 1
        total = self._since[page] + 1
        if total >= self.reset_interval:
            self.reset_page(page)
        else:
            self._since[page] = total

    def reset_page(self, page: int) -> None:
        """Clear the counters of ``page`` (periodic reset)."""
        if page < self._cap:
            nn = self.num_nodes
            base = page * nn
            zeros = array("q", bytes(8 * nn))
            self._read[base:base + nn] = zeros
            self._write[base:base + nn] = zeros
            self._since[page] = 0
            self._live_r[page] = 0
            self._live_w[page] = 0
        self.resets += 1

    # -- queries -------------------------------------------------------------------

    def read_row(self, page: int) -> Optional[Sequence[int]]:
        """Live read-miss row of ``page`` (length ``num_nodes``), or None."""
        if page < self._cap and self._live_r[page]:
            base = page * self.num_nodes
            return self._read[base:base + self.num_nodes]
        return None

    def write_row(self, page: int) -> Optional[Sequence[int]]:
        """Live write-miss row of ``page`` (length ``num_nodes``), or None."""
        if page < self._cap and self._live_w[page]:
            base = page * self.num_nodes
            return self._write[base:base + self.num_nodes]
        return None

    def read_misses(self, page: int, node: int) -> int:
        """Read misses recorded for (page, node) since the last reset."""
        if page < self._cap:
            return self._read[page * self.num_nodes + node]
        return 0

    def write_misses(self, page: int, node: int) -> int:
        """Write misses recorded for (page, node) since the last reset."""
        if page < self._cap:
            return self._write[page * self.num_nodes + node]
        return 0

    def misses(self, page: int, node: int) -> int:
        """Total (read + write) misses for (page, node) since the last reset."""
        return self.read_misses(page, node) + self.write_misses(page, node)

    def total_write_misses(self, page: int) -> int:
        """Write misses on ``page`` summed over every node."""
        if page < self._cap:
            base = page * self.num_nodes
            return sum(self._write[base:base + self.num_nodes])
        return 0

    def total_misses(self, page: int) -> int:
        """All misses on ``page`` since the last reset."""
        if page < self._cap:
            nn = self.num_nodes
            base = page * nn
            return (sum(self._read[base:base + nn])
                    + sum(self._write[base:base + nn]))
        return 0

    def misses_since_placement(self, page: int) -> int:
        """Misses recorded against ``page`` since its last reset (reset-relative)."""
        return self._since[page] if page < self._cap else 0

    def hottest_node(self, page: int) -> Tuple[Optional[int], int]:
        """Node with the most misses on ``page`` and its miss count."""
        best_node: Optional[int] = None
        best = 0
        for node in range(self.num_nodes):
            m = self.misses(page, node)
            if m > best:
                best = m
                best_node = node
        return best_node, best

    def tracked_pages(self) -> int:
        """Number of pages with live counters."""
        return sum(1 for r, w in zip(self._live_r, self._live_w) if r or w)


class RefetchCounters:
    """Requester-side per-page capacity/conflict refetch counters (R-NUMA).

    One instance per node.  A counter is cleared when the node relocates
    the page (it is no longer a CC-NUMA page there) and when the page is
    later evicted from the page cache the counter restarts from zero.

    Storage: one flat ``array('q')`` indexed by page, grown in place via
    :meth:`reserve` so exported buffer views (the kernel's zero-copy
    window) stay valid.  ``total_recorded`` remains a Python int; the
    kernel mirrors it through a per-node delta that the driver folds back
    after each phase.
    """

    __slots__ = ("_cap", "_counts", "total_recorded")

    def __init__(self) -> None:
        self._cap = 0
        self._counts = array("q")
        self.total_recorded = 0

    def reserve(self, n: int) -> None:
        """Grow the counter column (in place) to cover page ids ``< n``."""
        cap = self._cap
        if n <= cap:
            return
        grow = max(n, 2 * cap, 256) - cap
        self._counts.frombytes(bytes(8 * grow))
        self._cap = cap + grow

    def record_refetch(self, page: int) -> int:
        """Record one capacity/conflict refetch on ``page``; return the new count."""
        if page >= self._cap:
            self.reserve(page + 1)
        new = self._counts[page] + 1
        self._counts[page] = new
        self.total_recorded += 1
        return new

    def count(self, page: int) -> int:
        """Current refetch count for ``page``."""
        return self._counts[page] if page < self._cap else 0

    def clear(self, page: int) -> None:
        """Clear the counter for ``page`` (after relocation or eviction)."""
        if page < self._cap:
            self._counts[page] = 0

    def tracked_pages(self) -> int:
        """Number of pages with a non-zero counter."""
        return sum(1 for c in self._counts if c)
