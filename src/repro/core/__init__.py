"""The paper's primary contribution: the protocols under comparison.

* :mod:`repro.core.protocol` — the common DSM protocol machinery (miss
  classification, first-touch mapping, remote fetch path) every system
  shares.
* :mod:`repro.core.ccnuma` — base CC-NUMA with an SRAM block cache, and
  the perfect (infinite block cache) variant used for normalisation.
* :mod:`repro.core.migrep` — CC-NUMA plus kernel page migration and/or
  replication (Section 3.1).
* :mod:`repro.core.rnuma` — R-NUMA: reactive fine-grain memory caching
  with an S-COMA page cache (Section 3.2).
* :mod:`repro.core.rnuma_migrep` — the R-NUMA+MigRep hybrid of Section 6.4.
* :mod:`repro.core.counters` / :mod:`repro.core.decisions` — the per-page
  per-node counter tables and the threshold policies that drive page
  operations.
* :mod:`repro.core.factory` — named system configurations
  (``"ccnuma"``, ``"mig"``, ``"rep"``, ``"migrep"``, ``"rnuma"``, ...).
"""

from repro.core.protocol import AccessResult, DSMProtocol
from repro.core.counters import MigRepCounters, RefetchCounters
from repro.core.decisions import MigRepDecision, MigRepPolicy, RNUMAPolicy
from repro.core.ccnuma import CCNUMAProtocol
from repro.core.migrep import MigRepProtocol
from repro.core.rnuma import RNUMAProtocol
from repro.core.rnuma_migrep import RNUMAMigRepProtocol
from repro.core.factory import SYSTEM_NAMES, SystemSpec, build_system

__all__ = [
    "AccessResult",
    "DSMProtocol",
    "MigRepCounters",
    "RefetchCounters",
    "MigRepDecision",
    "MigRepPolicy",
    "RNUMAPolicy",
    "CCNUMAProtocol",
    "MigRepProtocol",
    "RNUMAProtocol",
    "RNUMAMigRepProtocol",
    "SYSTEM_NAMES",
    "SystemSpec",
    "build_system",
]
