"""R-NUMA+MigRep: the integrated system of Section 6.4.

The motivation: R-NUMA's hardware cost (fine-grain tags, reverse
translation table, reactive counters) grows with the page-cache size, so
one would like to shrink the page cache and recover the lost opportunity
with page migration/replication, which needs no per-block hardware.

The integration problem the paper identifies is *counter interference*:
early R-NUMA relocation removes the very misses the home-side MigRep
counters need to observe, so migration/replication stops being invoked.
The paper's mitigation — and the one implemented here — is to give MigRep
first claim on every page by delaying R-NUMA relocation until the page has
absorbed a preset number of misses (the ``hybrid_relocation_delay``
threshold).

This protocol composes the two mechanisms:

* home-side MigRep counters and policy identical to
  :class:`repro.core.migrep.MigRepProtocol`, and
* requester-side refetch counters and relocation identical to
  :class:`repro.core.rnuma.RNUMAProtocol`, gated by the delay.

The Figure 8 systems are built by the factory as ``rnuma-half`` (no
MigRep) and ``rnuma-half-migrep`` (this protocol with a half-size page
cache).
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

from repro.core.counters import MigRepCounters
from repro.core.decisions import MigRepDecision, resolve_policy
from repro.core.rnuma import RNUMAProtocol
from repro.kernel.faults import FaultKind
from repro.kernel.migration import MigrationEngine
from repro.mem.page_table import PageMode


class RNUMAMigRepProtocol(RNUMAProtocol):
    """R-NUMA with page migration/replication layered on top."""

    name = "rnuma-migrep"

    def __init__(self, machine, *, enable_migration: Optional[bool] = None,
                 enable_replication: Optional[bool] = None,
                 migrep_policy=None, rnuma_policy=None) -> None:
        thresholds = machine.cfg.thresholds
        # a ready rnuma-policy *instance* is used verbatim (it must bake
        # in its own relocation delay); the hybrid's delayed-relocation
        # budget applies when the policy is resolved by name
        ready_rnuma = (rnuma_policy is not None
                       and not isinstance(rnuma_policy, str))
        if (ready_rnuma
                and not getattr(rnuma_policy, "relocation_delay", 0)
                and thresholds.effective_hybrid_delay):
            warnings.warn(
                "RNUMAMigRepProtocol received a ready rnuma policy with "
                "relocation_delay=0; the hybrid's delayed-relocation "
                "budget (Section 6.4 counter-interference mitigation) is "
                "disabled — bake a delay into the instance (e.g. "
                "thresholds.effective_hybrid_delay) if that is not "
                "intended", stacklevel=2)
        super().__init__(machine,
                         relocation_delay=(None if ready_rnuma else
                                           thresholds.effective_hybrid_delay),
                         policy=rnuma_policy)
        self.migrep_counters = MigRepCounters(
            num_nodes=self.cfg.machine.num_nodes,
            reset_interval=thresholds.effective_migrep_reset_interval,
        )
        # same resolution order as MigRepProtocol (registry-driven, only
        # explicit enable flags forwarded); the hybrid always consults
        # the generic evaluate() hook, so every registered migrep policy
        # composes with delayed relocation
        flags = {k: v for k, v in (("enable_migration", enable_migration),
                                   ("enable_replication", enable_replication))
                 if v is not None}
        self.migrep_policy = resolve_policy(
            "migrep", self.cfg, spec=getattr(machine, "system", None),
            policy=migrep_policy, **flags)
        self.migration_engine = MigrationEngine(
            addr=self.addr,
            costs=self.costs,
            vm=self.vm,
            directory=self.directory,
            network=self.network,
            page_tables=self.page_tables,
            block_caches=self.block_caches,
            l1_caches=machine.l1_by_node,
        )
        # pre-bound for the per-miss fast path
        self._record_migrep_miss = self.migrep_counters.record_miss

    # ------------------------------------------------------------------ MigRep side

    def _perform_replication(self, page: int, node: int, now: int) -> int:
        outcome = self.migration_engine.replicate(page, node, now)
        self.node_stats[node].replications += 1
        self.fault_logs[node].record(FaultKind.REPLICATION_TRAP, outcome.cost)
        return outcome.cost

    def _perform_migration(self, page: int, node: int, now: int) -> int:
        outcome = self.migration_engine.migrate(page, node, now)
        self.node_stats[node].migrations += 1
        self.fault_logs[node].record(FaultKind.MIGRATION_TRAP, outcome.cost)
        self.migrep_counters.reset_page(page)
        return outcome.cost

    def _collapse_replicas(self, page: int, writer: int, now: int) -> int:
        outcome = self.migration_engine.collapse_replicas(page, writer, now)
        self.node_stats[writer].replica_collapses += 1
        self.page_tables[writer].record_protection_fault(page)
        self.fault_logs[writer].record(FaultKind.PROTECTION_FAULT, outcome.cost)
        self.migrep_counters.reset_page(page)
        return outcome.cost

    def _evaluate_migrep(self, page: int, node: int, home: int, now: int) -> int:
        # pages already relocated into this node's page cache are no longer
        # candidates: the node serves them locally
        pc = self.page_caches[node]
        if pc is not None and pc.contains(page):
            return 0
        rec = self._vm_pages.get(page)
        is_replica_request = rec is not None and node in rec.replicas
        decision = self.migrep_policy.evaluate(
            self.migrep_counters, page, node, home,
            is_replica_request=is_replica_request)
        if decision is MigRepDecision.REPLICATE:
            return self._perform_replication(page, node, now)
        if decision is MigRepDecision.MIGRATE:
            return self._perform_migration(page, node, now)
        return 0

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        pageop = 0

        if self.vm.is_replicated(page) and is_write:
            pageop += self._collapse_replicas(page, node, now)
            mode = self.page_tables[node].mode_of(page)
            home = self.vm.home_of(page) or home

        if not is_write and mode is PageMode.REPLICA:
            stats = self.node_stats[node]
            stats.local_misses += 1
            version = self._directory_read(node, block)
            return self.costs.local_miss, pageop, version, False

        latency, rnuma_pageop, version, remote = super()._service_remote_page(
            node, proc, page, block, is_write, now, home, mode)
        pageop += rnuma_pageop
        if remote:
            # the home also observes this miss for its MigRep counters
            self._record_migrep_miss(page, node, is_write)
            pageop += self._evaluate_migrep(page, node, home, now)
        return latency, pageop, version, remote

    def _local_fill(self, node: int, block: int, is_write: bool) -> Tuple[int, int]:
        latency, version = super()._local_fill(node, block, is_write)
        page = block // self._bpp
        rec = self._vm_pages.get(page)
        if rec is not None and rec.home == node:
            self._record_migrep_miss(page, node, is_write)
        return latency, version

    def describe(self) -> str:
        return "R-NUMA + migration/replication (delayed relocation)"
