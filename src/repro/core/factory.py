"""Named system configurations and the protocol factory.

The paper evaluates a fixed menagerie of systems; the factory maps their
names onto (protocol class, machine adjustments) pairs so experiments and
examples can say ``build_system("rnuma-half-migrep")`` and get exactly the
Figure 8 configuration.

============== =======================================================
name            system
============== =======================================================
``perfect``     CC-NUMA with an infinite block cache (normalisation
                baseline of every figure)
``ccnuma``      base CC-NUMA with the 64 KB SRAM block cache
``mig``         CC-NUMA + page migration only
``rep``         CC-NUMA + page replication only
``migrep``      CC-NUMA + page migration and replication
``rnuma``       R-NUMA with the 2.4 MB page cache
``rnuma-half``  R-NUMA with a half-size page cache (Figure 8)
``rnuma-inf``   R-NUMA with an unbounded page cache
``rnuma-half-migrep``  R-NUMA-1/2 + MigRep hybrid (Figure 8)
``rnuma-migrep``       R-NUMA (full page cache) + MigRep hybrid
============== =======================================================

Beyond the paper's menagerie, three *ablation* systems fill in design
points the paper discusses but does not evaluate (see the module
docstrings of :mod:`repro.core.scoma` and :mod:`repro.core.dram_cache`):

=================== ====================================================
``scoma``            pure S-COMA — every remote page is allocated in the
                     page cache on its first remote miss (ASCOMA-style)
``scoma-inf``        pure S-COMA with an unbounded page cache
``ccnuma-dram``      CC-NUMA with a large-but-slow DRAM block cache
=================== ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.dram_cache import (
    DEFAULT_DRAM_CAPACITY_SCALE,
    DRAMBlockCacheProtocol,
)
from repro.core.migrep import MigRepProtocol
from repro.core.protocol import DSMProtocol
from repro.core.rnuma import RNUMAProtocol
from repro.core.rnuma_migrep import RNUMAMigRepProtocol
from repro.core.scoma import SCOMAProtocol


@dataclass(frozen=True)
class SystemSpec:
    """A named, buildable system configuration.

    Attributes
    ----------
    name:
        Canonical system name (one of :data:`SYSTEM_NAMES`).
    label:
        Human-readable label matching the paper's figure legends.
    protocol_factory:
        Callable building the protocol object given the machine.
    infinite_block_cache:
        True for the perfect CC-NUMA baseline.
    page_cache_fraction:
        Fraction of the configured page-cache size to use; ``None`` means
        the system has no S-COMA page cache at all.
    infinite_page_cache:
        True for R-NUMA-Inf.
    block_cache_scale:
        Multiplier applied to the configured block-cache capacity
        (1.0 for every paper system; 8.0 for the DRAM block-cache
        ablation).
    uses_page_cache:
        Whether the machine must construct page caches for this system.
    """

    name: str
    label: str
    protocol_factory: Callable[["object"], DSMProtocol]
    infinite_block_cache: bool = False
    page_cache_fraction: Optional[float] = None
    infinite_page_cache: bool = False
    block_cache_scale: float = 1.0

    @property
    def uses_page_cache(self) -> bool:
        return self.infinite_page_cache or self.page_cache_fraction is not None


def _specs() -> Dict[str, SystemSpec]:
    return {
        "perfect": SystemSpec(
            name="perfect",
            label="Perfect CC-NUMA",
            protocol_factory=CCNUMAProtocol,
            infinite_block_cache=True,
        ),
        "ccnuma": SystemSpec(
            name="ccnuma",
            label="CC-NUMA",
            protocol_factory=CCNUMAProtocol,
        ),
        "mig": SystemSpec(
            name="mig",
            label="Mig",
            protocol_factory=lambda m: MigRepProtocol(
                m, enable_migration=True, enable_replication=False),
        ),
        "rep": SystemSpec(
            name="rep",
            label="Rep",
            protocol_factory=lambda m: MigRepProtocol(
                m, enable_migration=False, enable_replication=True),
        ),
        "migrep": SystemSpec(
            name="migrep",
            label="MigRep",
            protocol_factory=MigRepProtocol,
        ),
        "rnuma": SystemSpec(
            name="rnuma",
            label="R-NUMA",
            protocol_factory=RNUMAProtocol,
            page_cache_fraction=1.0,
        ),
        "rnuma-half": SystemSpec(
            name="rnuma-half",
            label="R-NUMA-1/2",
            protocol_factory=RNUMAProtocol,
            page_cache_fraction=0.5,
        ),
        "rnuma-inf": SystemSpec(
            name="rnuma-inf",
            label="R-NUMA-Inf",
            protocol_factory=RNUMAProtocol,
            page_cache_fraction=1.0,
            infinite_page_cache=True,
        ),
        "rnuma-migrep": SystemSpec(
            name="rnuma-migrep",
            label="R-NUMA+MigRep",
            protocol_factory=RNUMAMigRepProtocol,
            page_cache_fraction=1.0,
        ),
        "rnuma-half-migrep": SystemSpec(
            name="rnuma-half-migrep",
            label="R-NUMA-1/2+MigRep",
            protocol_factory=RNUMAMigRepProtocol,
            page_cache_fraction=0.5,
        ),
        # ---- ablation systems beyond the paper's own menagerie -----------
        "scoma": SystemSpec(
            name="scoma",
            label="S-COMA",
            protocol_factory=SCOMAProtocol,
            page_cache_fraction=1.0,
        ),
        "scoma-inf": SystemSpec(
            name="scoma-inf",
            label="S-COMA-Inf",
            protocol_factory=SCOMAProtocol,
            page_cache_fraction=1.0,
            infinite_page_cache=True,
        ),
        "ccnuma-dram": SystemSpec(
            name="ccnuma-dram",
            label="CC-NUMA (DRAM cache)",
            protocol_factory=DRAMBlockCacheProtocol,
            block_cache_scale=DEFAULT_DRAM_CAPACITY_SCALE,
        ),
    }


_SPECS = _specs()

#: Canonical names of every buildable system.
SYSTEM_NAMES = tuple(_SPECS.keys())

#: The systems that appear in the paper's figures (everything else is an
#: ablation added by this reproduction).
PAPER_SYSTEM_NAMES = tuple(
    n for n in SYSTEM_NAMES if n not in ("scoma", "scoma-inf", "ccnuma-dram")
)


def build_system(name: str) -> SystemSpec:
    """Return the :class:`SystemSpec` for ``name``.

    Raises ``KeyError`` with the list of valid names for typos.
    """
    key = name.strip().lower()
    spec = _SPECS.get(key)
    if spec is None:
        raise KeyError(
            f"unknown system {name!r}; valid systems: {', '.join(SYSTEM_NAMES)}"
        )
    return spec
