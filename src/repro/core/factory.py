"""Named system configurations and the protocol factory.

The paper evaluates a fixed menagerie of systems; this module registers
their names into the shared open registry (:data:`repro.registry.SYSTEMS`)
as (protocol class, machine adjustments) pairs so experiments and examples
can say ``build_system("rnuma-half-migrep")`` and get exactly the Figure 8
configuration — and so user code can register *additional* systems that
immediately appear in :data:`SYSTEM_NAMES`, the CLI and every sweep.

============== =======================================================
name            system
============== =======================================================
``perfect``     CC-NUMA with an infinite block cache (normalisation
                baseline of every figure)
``ccnuma``      base CC-NUMA with the 64 KB SRAM block cache
``mig``         CC-NUMA + page migration only
``rep``         CC-NUMA + page replication only
``migrep``      CC-NUMA + page migration and replication
``rnuma``       R-NUMA with the 2.4 MB page cache
``rnuma-half``  R-NUMA with a half-size page cache (Figure 8)
``rnuma-inf``   R-NUMA with an unbounded page cache
``rnuma-half-migrep``  R-NUMA-1/2 + MigRep hybrid (Figure 8)
``rnuma-migrep``       R-NUMA (full page cache) + MigRep hybrid
============== =======================================================

Beyond the paper's menagerie, three *ablation* systems fill in design
points the paper discusses but does not evaluate (see the module
docstrings of :mod:`repro.core.scoma` and :mod:`repro.core.dram_cache`):

=================== ====================================================
``scoma``            pure S-COMA — every remote page is allocated in the
                     page cache on its first remote miss (ASCOMA-style)
``scoma-inf``        pure S-COMA with an unbounded page cache
``ccnuma-dram``      CC-NUMA with a large-but-slow DRAM block cache
=================== ====================================================

Variants are declared as *derivations* of their parent spec: e.g.
``rnuma-half`` is ``build_system("rnuma").derive("rnuma-half",
label="R-NUMA-1/2", page_cache_fraction=0.5)``.  Downstream users extend
the menagerie the same way::

    from repro import build_system, register_system

    register_system(build_system("rnuma").derive(
        "rnuma-quarter", label="R-NUMA-1/4", page_cache_fraction=0.25))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.config import ConfigError, canonical_policy_args
from repro.core.ccnuma import CCNUMAProtocol
from repro.core.dram_cache import (
    DEFAULT_DRAM_CAPACITY_SCALE,
    DRAMBlockCacheProtocol,
)
from repro.core.migrep import MigRepProtocol
from repro.core.protocol import DSMProtocol
from repro.core.rnuma import RNUMAProtocol
from repro.core.rnuma_migrep import RNUMAMigRepProtocol
from repro.core.scoma import SCOMAProtocol
from repro.registry import SYSTEMS, NamesView, register_system


@dataclass(frozen=True)
class SystemSpec:
    """A named, buildable system configuration.

    Parameters
    ----------
    name:
        Canonical system name (one of :data:`SYSTEM_NAMES`).
    label:
        Human-readable label matching the paper's figure legends.
    protocol_factory:
        Callable building the protocol object given the machine.
    infinite_block_cache:
        True for the perfect CC-NUMA baseline.
    page_cache_fraction:
        Fraction of the configured page-cache size to use; ``None`` means
        the system has no S-COMA page cache at all.
    infinite_page_cache:
        True for R-NUMA-Inf.
    block_cache_scale:
        Multiplier applied to the configured block-cache capacity
        (1.0 for every paper system; 8.0 for the DRAM block-cache
        ablation).
    migrep_policy / rnuma_policy:
        Optional decision-policy names (see
        :data:`repro.core.decisions.POLICY_NAMES`) overriding the
        configuration's ``thresholds.migrep_policy`` /
        ``thresholds.rnuma_policy`` selection for this system only.
        ``None`` (the default) defers to the configuration.
    policy_args:
        Extra keyword arguments for the overriding policies' factories,
        stored canonically as a sorted tuple of ``(name, value)`` pairs
        (a mapping passed in is converted).  Applied only to the roles
        this spec actually overrides.  Because there is one argument bag,
        a spec overriding *both* roles with *different* families while
        supplying ``policy_args`` is rejected (one family's knobs would
        be fed to the other family's factory) — use
        ``ThresholdConfig.migrep_policy_args`` / ``rnuma_policy_args``
        for per-role arguments instead.

    Examples
    --------
    >>> spec = build_system("rnuma")
    >>> spec.label
    'R-NUMA'
    >>> spec.uses_page_cache
    True
    >>> build_system("ccnuma").uses_page_cache
    False
    """

    name: str
    label: str
    protocol_factory: Callable[["object"], DSMProtocol]
    infinite_block_cache: bool = False
    page_cache_fraction: Optional[float] = None
    infinite_page_cache: bool = False
    block_cache_scale: float = 1.0
    migrep_policy: Optional[str] = None
    rnuma_policy: Optional[str] = None
    policy_args: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy_args",
                           canonical_policy_args(self.policy_args))
        if self.policy_args:
            if self.migrep_policy is None and self.rnuma_policy is None:
                raise ConfigError(
                    f"system {self.name!r} supplies policy_args but "
                    "overrides no policy; they would be silently ignored "
                    "— set migrep_policy/rnuma_policy on the spec, or use "
                    "ThresholdConfig.migrep_policy_args / "
                    "rnuma_policy_args to tune a config-selected policy")
            if (self.migrep_policy and self.rnuma_policy
                    and self.migrep_policy != self.rnuma_policy):
                raise ConfigError(
                    f"system {self.name!r} overrides both roles with "
                    f"different policies ({self.migrep_policy!r} / "
                    f"{self.rnuma_policy!r}) but supplies one shared "
                    "policy_args bag; use "
                    "ThresholdConfig.migrep_policy_args / "
                    "rnuma_policy_args for per-role arguments")

    @property
    def uses_page_cache(self) -> bool:
        """Whether the machine must construct page caches for this system."""
        return self.infinite_page_cache or self.page_cache_fraction is not None

    def derive(self, name: str, *, label: Optional[str] = None,
               **overrides) -> "SystemSpec":
        """Return a variant of this spec under a new name.

        Parameters
        ----------
        name:
            Name of the new spec (register it to make it buildable).
        label:
            Figure-legend label; defaults to ``name``.
        **overrides:
            Any other :class:`SystemSpec` fields — cache geometry
            (``page_cache_fraction=0.25``), a different
            ``protocol_factory``, or decision-policy overrides
            (``migrep_policy="competitive"``, ``policy_args={...}``).

        Returns
        -------
        SystemSpec
            A new frozen spec; the original is unchanged.

        Examples
        --------
        This is how the registry declares families like ``rnuma`` /
        ``rnuma-half`` / ``rnuma-inf``, and how user code mints new
        design points without touching the package:

        >>> quarter = build_system("rnuma").derive(
        ...     "rnuma-quarter", label="R-NUMA-1/4",
        ...     page_cache_fraction=0.25)
        >>> (quarter.name, quarter.label, quarter.page_cache_fraction)
        ('rnuma-quarter', 'R-NUMA-1/4', 0.25)
        >>> adaptive = build_system("migrep").derive(
        ...     "migrep-ski", migrep_policy="competitive",
        ...     policy_args={"beta": 2.0})
        >>> adaptive.policy_args
        (('beta', 2.0),)
        """
        return dataclasses.replace(self, name=name,
                                   label=label if label is not None else name,
                                   **overrides)


# ---------------------------------------------------------------------------
# The paper's menagerie, registered into the shared open registry
# ---------------------------------------------------------------------------

_ccnuma = SystemSpec(name="ccnuma", label="CC-NUMA",
                     protocol_factory=CCNUMAProtocol)
register_system(_ccnuma.derive("perfect", label="Perfect CC-NUMA",
                               infinite_block_cache=True))
register_system(_ccnuma)
register_system(SystemSpec(
    name="mig", label="Mig",
    protocol_factory=lambda m: MigRepProtocol(
        m, enable_migration=True, enable_replication=False)))
register_system(SystemSpec(
    name="rep", label="Rep",
    protocol_factory=lambda m: MigRepProtocol(
        m, enable_migration=False, enable_replication=True)))
register_system(SystemSpec(name="migrep", label="MigRep",
                           protocol_factory=MigRepProtocol))

_rnuma = SystemSpec(name="rnuma", label="R-NUMA",
                    protocol_factory=RNUMAProtocol, page_cache_fraction=1.0)
register_system(_rnuma)
register_system(_rnuma.derive("rnuma-half", label="R-NUMA-1/2",
                              page_cache_fraction=0.5))
register_system(_rnuma.derive("rnuma-inf", label="R-NUMA-Inf",
                              infinite_page_cache=True))
register_system(_rnuma.derive("rnuma-migrep", label="R-NUMA+MigRep",
                              protocol_factory=RNUMAMigRepProtocol))
register_system(_rnuma.derive("rnuma-half-migrep", label="R-NUMA-1/2+MigRep",
                              protocol_factory=RNUMAMigRepProtocol,
                              page_cache_fraction=0.5))

# ---- ablation systems beyond the paper's menagerie ------------------------
_scoma = SystemSpec(name="scoma", label="S-COMA",
                    protocol_factory=SCOMAProtocol, page_cache_fraction=1.0)
register_system(_scoma)
register_system(_scoma.derive("scoma-inf", label="S-COMA-Inf",
                              infinite_page_cache=True))
register_system(_ccnuma.derive("ccnuma-dram", label="CC-NUMA (DRAM cache)",
                               protocol_factory=DRAMBlockCacheProtocol,
                               block_cache_scale=DEFAULT_DRAM_CAPACITY_SCALE))


#: Live view of every buildable system name (grows as systems register).
SYSTEM_NAMES = NamesView(SYSTEMS)

#: The systems that appear in the paper's figures (everything else is an
#: ablation or a user addition); fixed by the paper, hence a plain tuple.
PAPER_SYSTEM_NAMES = (
    "perfect", "ccnuma", "mig", "rep", "migrep", "rnuma", "rnuma-half",
    "rnuma-inf", "rnuma-migrep", "rnuma-half-migrep",
)


def build_system(name: str) -> SystemSpec:
    """Return the :class:`SystemSpec` registered under ``name``.

    Parameters
    ----------
    name:
        A registered system name (case-insensitive; see
        :data:`SYSTEM_NAMES`).

    Returns
    -------
    SystemSpec
        The registered spec (not a copy: specs are frozen).

    Raises
    ------
    repro.registry.UnknownNameError
        A ``ValueError`` listing the valid names, with a did-you-mean
        suggestion for typos.

    Examples
    --------
    >>> build_system("rnuma").label
    'R-NUMA'
    >>> build_system("RNUMA").name     # lookups are case-insensitive
    'rnuma'
    >>> build_system("rnumma")   # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.registry.UnknownNameError: unknown system 'rnumma' — did you \
mean 'rnuma'?...
    """
    return SYSTEMS.resolve(name)
