"""Pure S-COMA: unconditional fine-grain memory caching.

Simple COMA (Hagersten, Saulsbury & Landin, 1994) is the substrate R-NUMA
reacts *into*: remote data is always cached in page frames allocated from
the node's local memory, with coherence kept at cache-block granularity by
fine-grain tags.  The paper never evaluates pure S-COMA directly — it
motivates R-NUMA precisely because always allocating local page frames
wastes memory and page-operation time on pages with little reuse — but it
discusses the design in Sections 1 and 3.2 and cites ASCOMA, which
"always allocates S-COMA pages first", as the closest relative.

This module provides that missing comparison point as an *ablation*
protocol: every remote page is placed in the S-COMA page cache on the very
first remote miss, with no reactive counter standing between the miss and
the allocation.  Comparing ``scoma`` against ``rnuma`` and ``ccnuma``
quantifies how much of R-NUMA's win comes from the page cache itself and
how much from being selective about what goes into it — exactly the
trade-off Table 1 of the paper describes qualitatively.

Expected behaviour (and what the ablation benchmark checks):

* on workloads dominated by actively read-write-shared pages with reuse
  (barnes, lu, ocean) pure S-COMA matches or beats R-NUMA, because R-NUMA
  would have relocated those pages anyway and merely pays extra remote
  misses while its refetch counters warm up;
* on low-reuse kernels (cholesky, radix) pure S-COMA pays an allocation
  and refetch penalty for every streaming page and falls behind R-NUMA —
  the behaviour that motivated reactive switching in the first place;
* under page-cache pressure pure S-COMA thrashes earlier than R-NUMA
  because it admits pages indiscriminately.

Which of the first two effects dominates on average is a function of the
page-operation cost model: with the paper's full Table 3 costs the
up-front allocations are expensive enough that reactive switching wins,
with the reduced experiment cost model they are cheap and unconditional
allocation can come out ahead (see EXPERIMENTS.md, "Ablations beyond the
paper").  That sensitivity is itself the point of the ablation — it is the
quantitative version of the paper's Section 4 overhead argument.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.rnuma import RNUMAProtocol
from repro.kernel.faults import FaultKind
from repro.mem.page_table import PageMode


class SCOMAProtocol(RNUMAProtocol):
    """S-COMA: allocate a local page-cache frame on the first remote miss."""

    name = "scoma"

    def _allocate_on_first_miss(self, node: int, page: int, now: int) -> int:
        """Place ``page`` in the node's page cache immediately.

        Returns the page-operation cycles charged to the faulting
        processor: the same relocation mechanics R-NUMA uses (soft trap,
        local TLB invalidation, possible victim eviction) — the only
        difference is that no refetch evidence is required first.
        """
        outcome = self.engine.relocate(node, page, now)
        stats = self.node_stats[node]
        stats.relocations += 1
        if outcome.evicted_page is not None:
            stats.page_cache_evictions += 1
            self.refetch_counters[node].clear(outcome.evicted_page)
            self.fault_logs[node].record(FaultKind.PAGE_CACHE_EVICTION, 0)
        self.fault_logs[node].record(FaultKind.RELOCATION_INTERRUPT, outcome.cost)
        return outcome.cost

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        pc = self.page_caches[node]
        pageop = 0
        if pc is not None and not pc.contains(page):
            pageop = self._allocate_on_first_miss(node, page, now)

        if pc is not None and pc.contains(page):
            latency, version, remote = self._scoma_fetch(
                node, page, block, is_write, now, home)
            if remote:
                self._record_page_miss(page)
            return latency, pageop, version, remote

        # no page cache configured at all: degenerate to CC-NUMA behaviour
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        return latency, pageop, version, remote

    def describe(self) -> str:
        pc = self.page_caches[0]
        if pc is None:
            size = "no page cache"
        elif pc.is_infinite:
            size = "infinite page cache"
        else:
            size = f"{pc.capacity_pages} page frames"
        return f"S-COMA ({size}, unconditional allocation)"
