"""CC-NUMA with a large-but-slow DRAM block cache (Section 2 alternative).

Section 2 of the paper deliberately restricts the evaluation to small,
fast SRAM block caches and notes that "some designs incorporate large but
slow DRAM-based block caches [17, 2, 21]", which "reduce the
capacity/conflict miss traffic in CC-NUMA at the cost of increasing the
cache look-up time and the controller occupancy".  The design-space study
is delegated to Moga & Dubois; this module provides the corresponding
ablation point so the trade-off can be measured on the same workloads:

* the block cache is ``capacity_scale`` times larger than the SRAM block
  cache of the base CC-NUMA system (8x by default, mirroring the paper's
  SRAM-vs-DRAM cost argument that DRAM buys roughly an order of magnitude
  more capacity per dollar), and
* every access that reaches the block cache — hit or fill — pays an extra
  ``hit_penalty`` cycles of look-up time and controller occupancy on top
  of the normal service latency.

Comparing ``ccnuma-dram`` against ``ccnuma`` and ``rnuma`` shows where a
bigger remote cache alone closes the capacity/conflict gap and where the
page-grain approach (R-NUMA) still wins because even a large block cache
keeps paying the per-block look-up penalty.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.ccnuma import CCNUMAProtocol
from repro.mem.page_table import PageMode

#: Default extra look-up/occupancy cycles of a DRAM block cache access.
DEFAULT_DRAM_PENALTY = 40

#: Default capacity multiplier of the DRAM block cache over the SRAM one.
DEFAULT_DRAM_CAPACITY_SCALE = 8.0


class DRAMBlockCacheProtocol(CCNUMAProtocol):
    """CC-NUMA whose cluster cache is DRAM: bigger, but slower to access."""

    name = "ccnuma-dram"

    def __init__(self, machine, *, hit_penalty: int = DEFAULT_DRAM_PENALTY) -> None:
        super().__init__(machine)
        if hit_penalty < 0:
            raise ValueError("hit_penalty must be non-negative")
        self.hit_penalty = hit_penalty

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        # Every block-cache transaction — a hit served from DRAM or a fill
        # installing the remote reply — pays the DRAM look-up penalty.
        return latency + self.hit_penalty, 0, version, remote

    def describe(self) -> str:
        bc = self.block_caches[0]
        size = "infinite" if bc.is_infinite else f"{bc.capacity_blocks} blocks"
        return f"CC-NUMA (DRAM block cache, {size}, +{self.hit_penalty} cycles)"
