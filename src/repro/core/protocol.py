"""Common DSM protocol machinery shared by every simulated system.

:class:`DSMProtocol` implements the parts of the cluster device behaviour
that are identical across CC-NUMA, CC-NUMA+MigRep and R-NUMA:

* first-touch page placement and the initial mapping fault,
* the directory-side handling of reads, writes and upgrades (sharer
  tracking, invalidation counting, version bumps),
* the remote block-fetch path (network messages, NIC contention and the
  Table 3 round-trip latency), and
* per-node miss-cause classification (cold vs capacity/conflict vs
  coherence), which both MigRep's and R-NUMA's counters observe.

Concrete protocols override :meth:`_service_remote_page` (how a miss on a
*remote* page is satisfied) and may hook :meth:`_after_remote_fetch` (to
update their counters and trigger page operations).

The protocol objects operate on the substrate owned by a
:class:`repro.cluster.machine.Machine`; the machine is passed in at
construction and accessed by duck typing to avoid an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.interconnect.message import MessageType
from repro.kernel.faults import FaultKind
from repro.mem.page_table import PageMode
from repro.stats.counters import MissClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine


#: Departure reasons used for miss classification.
_DEPARTED_EVICTED = 1
_DEPARTED_INVALIDATED = 2


@dataclass
class AccessResult:
    """Outcome of servicing one L1 miss (or upgrade).

    Attributes
    ----------
    service_cycles:
        Cycles of memory-system latency (local or remote fill).
    pageop_cycles:
        Cycles spent in page operations triggered by this access
        (migration, replication, relocation, replica collapse).
    fault_cycles:
        Cycles spent in the initial mapping fault, if this access mapped
        the page for the first time on the node.
    version:
        Directory version to record in the cache that fills the block.
    remote:
        True when the access required a fetch from a remote home node.
    """

    service_cycles: int
    pageop_cycles: int
    fault_cycles: int
    version: int
    remote: bool


class DSMProtocol:
    """Base class for all simulated DSM systems."""

    #: short machine-readable name, overridden by subclasses
    name = "base"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.cfg = machine.cfg
        self.costs = machine.cfg.costs
        self.addr = machine.addr
        self.vm = machine.vm
        self.directory = machine.directory
        self.network = machine.network
        self.page_tables = machine.page_tables
        self.block_caches = machine.block_caches
        self.page_caches = machine.page_caches
        self.node_stats = machine.stats.nodes
        self.fault_logs = machine.fault_logs
        num_nodes = machine.cfg.machine.num_nodes
        # per-node, per-block departure reason for miss classification
        self._departed: list[dict[int, int]] = [dict() for _ in range(num_nodes)]

    # ------------------------------------------------------------------ classification

    def mark_evicted(self, node: int, block: int) -> None:
        """Record that ``node`` lost ``block`` to a capacity/conflict eviction."""
        self._departed[node][block] = _DEPARTED_EVICTED

    def mark_invalidated(self, node: int, block: int) -> None:
        """Record that ``node`` lost ``block`` to a coherence invalidation."""
        self._departed[node][block] = _DEPARTED_INVALIDATED

    def classify_fetch(self, node: int, block: int) -> MissClass:
        """Classify a fetch of ``block`` by ``node`` and consume the record."""
        reason = self._departed[node].pop(block, 0)
        if reason == _DEPARTED_EVICTED:
            return MissClass.CAPACITY_CONFLICT
        if reason == _DEPARTED_INVALIDATED:
            return MissClass.COHERENCE
        return MissClass.COLD

    # ------------------------------------------------------------------ mapping

    def ensure_mapped(self, node: int, page: int) -> Tuple[int, int]:
        """Make sure ``page`` is mapped on ``node``; return (home, fault_cycles).

        First touch places the page at the requesting node (first-touch
        migration).  The first time any node maps a page it takes a soft
        mapping fault (Figure 2b); the cost is charged to the faulting
        processor and is identical across all systems.
        """
        rec, first_touch = self.vm.ensure_placed(page, node)
        pt = self.page_tables[node]
        if pt.is_mapped(page):
            return rec.home, 0

        fault_cycles = self.costs.soft_trap
        stats = self.node_stats[node]
        stats.mapping_faults += 1
        self.fault_logs[node].record(FaultKind.MAPPING_FAULT, fault_cycles)
        if rec.home == node:
            pt.map_page(page, PageMode.LOCAL_HOME)
        else:
            self.network.one_way(node, rec.home, 0, MessageType.PAGE_MAP_REQUEST)
            self.network.one_way(rec.home, node, 0, MessageType.PAGE_MAP_REPLY)
            pt.map_page(page, PageMode.CCNUMA_REMOTE)
        return rec.home, fault_cycles

    # ------------------------------------------------------------------ directory helpers

    def _directory_read(self, node: int, block: int) -> int:
        """Record a read fill by ``node``; return the block's version."""
        self.directory.record_read(block, node)
        return self.directory.version(block)

    def _directory_write(self, node: int, block: int) -> Tuple[int, int]:
        """Record a write by ``node``; return (extra_latency, new_version).

        Other sharers are invalidated: each costs
        ``invalidation_per_sharer`` cycles and a pair of protocol messages,
        and the losing nodes' future refetches classify as coherence
        misses.
        """
        sharers_before = self.directory.sharers_of(block)
        invalidations, version = self.directory.record_write(block, node)
        extra = 0
        if invalidations:
            extra = invalidations * self.costs.invalidation_per_sharer
            self.network.stats.record(MessageType.INVALIDATION, invalidations)
            self.network.stats.record(MessageType.INVALIDATION_ACK, invalidations)
            for other in sharers_before:
                if other != node:
                    self.mark_invalidated(other, block)
        return extra, version

    # ------------------------------------------------------------------ remote fetch path

    def _remote_fetch(self, node: int, page: int, block: int, is_write: bool,
                      now: int, home: int) -> Tuple[int, int, MissClass]:
        """Fetch ``block`` from its remote ``home``; return (latency, version, cause)."""
        stats = self.node_stats[node]
        cause = self.classify_fetch(node, block)
        stats.record_remote_miss(cause)

        request = MessageType.WRITE_REQUEST if is_write else MessageType.READ_REQUEST
        contention = self.network.fetch_contention(node, home, now, request,
                                                   MessageType.DATA_REPLY)

        if is_write:
            extra, version = self._directory_write(node, block)
        else:
            extra = 0
            version = self._directory_read(node, block)
        latency = self.costs.remote_miss + contention + extra
        return latency, version, cause

    def _local_fill(self, node: int, block: int, is_write: bool) -> Tuple[int, int]:
        """Service a miss from the node's local memory; return (latency, version)."""
        stats = self.node_stats[node]
        stats.local_misses += 1
        if is_write:
            extra, version = self._directory_write(node, block)
        else:
            extra = 0
            version = self._directory_read(node, block)
        return self.costs.local_miss + extra, version

    # ------------------------------------------------------------------ main entry points

    def handle_miss(self, node: int, proc: int, page: int, block: int,
                    is_write: bool, now: int) -> AccessResult:
        """Service an L1 miss from processor ``proc`` of ``node``."""
        home, fault_cycles = self.ensure_mapped(node, page)
        mode = self.page_tables[node].mode_of(page)

        if mode is PageMode.LOCAL_HOME or home == node:
            latency, version = self._local_fill(node, block, is_write)
            return AccessResult(latency, 0, fault_cycles, version, False)

        service, pageop, version, remote = self._service_remote_page(
            node, proc, page, block, is_write, now, home, mode)
        return AccessResult(service, pageop, fault_cycles, version, remote)

    def handle_upgrade(self, node: int, proc: int, page: int, block: int,
                       now: int) -> Tuple[int, int]:
        """Service a write to a block the processor holds in shared state.

        Returns ``(latency, version)``.  The latency is a local directory
        access when the home is local, a control-message round trip when it
        is remote; invalidations of other sharers are charged on top.
        """
        self.node_stats[node].upgrades += 1
        home = self.vm.home_of(page)
        extra, version = self._directory_write(node, block)
        if home is None or home == node:
            return self.costs.local_miss + extra, version
        completion = self.network.round_trip(node, home, now,
                                             MessageType.WRITE_REQUEST,
                                             MessageType.DATA_REPLY)
        nominal = 2 * self.network.latency + 4 * self.network.nic_occupancy
        contention = max(0, completion - now - nominal)
        return self.costs.remote_miss + contention + extra, version

    def note_l1_eviction(self, node: int, block: int, dirty: bool) -> None:
        """Hook: a processor cache on ``node`` evicted ``block``.

        The base protocol only uses this for nodes where the block is not
        also held in a node-level structure (block cache or page cache);
        subclasses refine it.  The default marks the departure as an
        eviction when no node-level copy remains.
        """
        if not self.block_caches[node].contains(block):
            pc = self.page_caches[node]
            page = self.addr.page_of_block(block)
            if pc is None or not pc.contains(page):
                home = self.vm.home_of(page)
                if home is not None and home != node:
                    self.mark_evicted(node, block)

    # ------------------------------------------------------------------ overridable

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        """Service a miss on a page whose home is remote.

        Returns ``(service_cycles, pageop_cycles, version, remote)``.
        The base implementation performs an uncached remote fetch; concrete
        systems override it to add block caches, replicas or page caches.
        """
        latency, version, _ = self._remote_fetch(node, page, block, is_write,
                                                 now, home)
        return latency, 0, version, True

    # ------------------------------------------------------------------ reporting

    def describe(self) -> str:
        """One-line human-readable description of the protocol."""
        return self.name
