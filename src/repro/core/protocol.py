"""Common DSM protocol machinery shared by every simulated system.

:class:`DSMProtocol` implements the parts of the cluster device behaviour
that are identical across CC-NUMA, CC-NUMA+MigRep and R-NUMA:

* first-touch page placement and the initial mapping fault,
* the directory-side handling of reads, writes and upgrades (sharer
  tracking, invalidation counting, version bumps),
* the remote block-fetch path (network messages, NIC contention and the
  Table 3 round-trip latency), and
* per-node miss-cause classification (cold vs capacity/conflict vs
  coherence), which both MigRep's and R-NUMA's counters observe.

Concrete protocols override :meth:`_service_remote_page` (how a miss on a
*remote* page is satisfied) and may hook :meth:`_after_remote_fetch` (to
update their counters and trigger page operations).

The protocol objects operate on the substrate owned by a
:class:`repro.cluster.machine.Machine`; the machine is passed in at
construction and accessed by duck typing to avoid an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional, Tuple

from repro.interconnect.message import MessageType
from repro.kernel.faults import FaultKind
from repro.mem.directory import DirectoryEntry
from repro.mem.page_table import PageMode
from repro.stats.counters import MissClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine


#: Departure reasons used for miss classification.
_DEPARTED_EVICTED = 1
_DEPARTED_INVALIDATED = 2

_UNMAPPED = PageMode.UNMAPPED
_LOCAL_HOME = PageMode.LOCAL_HOME
_READ_REQUEST = MessageType.READ_REQUEST
_WRITE_REQUEST = MessageType.WRITE_REQUEST
_DATA_REPLY = MessageType.DATA_REPLY


class AccessResult(NamedTuple):
    """Outcome of servicing one L1 miss (or upgrade).

    This is the *schema* of :meth:`DSMProtocol.handle_miss`'s return value.
    One result is produced per L1 miss on the simulator's hottest path, so
    ``handle_miss`` returns a plain tuple in this field order (the engines
    unpack it positionally); wrap it in :class:`AccessResult` when named
    access is more convenient.

    Attributes
    ----------
    service_cycles:
        Cycles of memory-system latency (local or remote fill).
    pageop_cycles:
        Cycles spent in page operations triggered by this access
        (migration, replication, relocation, replica collapse).
    fault_cycles:
        Cycles spent in the initial mapping fault, if this access mapped
        the page for the first time on the node.
    version:
        Directory version to record in the cache that fills the block.
    remote:
        True when the access required a fetch from a remote home node.
    """

    service_cycles: int
    pageop_cycles: int
    fault_cycles: int
    version: int
    remote: bool


class DSMProtocol:
    """Base class for all simulated DSM systems."""

    #: short machine-readable name, overridden by subclasses
    name = "base"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.cfg = machine.cfg
        self.costs = machine.cfg.costs
        self.addr = machine.addr
        self.vm = machine.vm
        self.directory = machine.directory
        self.network = machine.network
        self.page_tables = machine.page_tables
        self.block_caches = machine.block_caches
        self.page_caches = machine.page_caches
        self.node_stats = machine.stats.nodes
        self.fault_logs = machine.fault_logs
        num_nodes = machine.cfg.machine.num_nodes
        # per-node, per-block departure reason for miss classification
        self._departed: list[dict[int, int]] = [dict() for _ in range(num_nodes)]
        # Pre-bound substrate internals for the per-miss fast paths below.
        # These alias live objects (the dicts are mutated through their
        # owners' methods as usual); they only skip attribute traversal and
        # wrapper calls on the hottest path.
        self._vm_pages = machine.vm._pages
        self._pt_entries = [pt._entries for pt in machine.page_tables]
        self._dir_entries = machine.directory._entries
        self._bc_frames = [bc._frames for bc in machine.block_caches]
        self._bc_caps = [bc.capacity_blocks for bc in machine.block_caches]
        self._bc_stats = [bc.stats for bc in machine.block_caches]
        self._fetch_contention = machine.network.fetch_contention
        self._bpp = machine.addr.blocks_per_page
        self._local_miss_cost = self.costs.local_miss
        self._remote_miss_cost = self.costs.remote_miss
        self._inval_cost = self.costs.invalidation_per_sharer

    # ------------------------------------------------------------------ classification

    def mark_evicted(self, node: int, block: int) -> None:
        """Record that ``node`` lost ``block`` to a capacity/conflict eviction."""
        self._departed[node][block] = _DEPARTED_EVICTED

    def mark_invalidated(self, node: int, block: int) -> None:
        """Record that ``node`` lost ``block`` to a coherence invalidation."""
        self._departed[node][block] = _DEPARTED_INVALIDATED

    def classify_fetch(self, node: int, block: int) -> MissClass:
        """Classify a fetch of ``block`` by ``node`` and consume the record."""
        reason = self._departed[node].pop(block, 0)
        if reason == _DEPARTED_EVICTED:
            return MissClass.CAPACITY_CONFLICT
        if reason == _DEPARTED_INVALIDATED:
            return MissClass.COHERENCE
        return MissClass.COLD

    # ------------------------------------------------------------------ mapping

    def ensure_mapped(self, node: int, page: int) -> Tuple[int, int]:
        """Make sure ``page`` is mapped on ``node``; return (home, fault_cycles).

        First touch places the page at the requesting node (first-touch
        migration).  The first time any node maps a page it takes a soft
        mapping fault (Figure 2b); the cost is charged to the faulting
        processor and is identical across all systems.
        """
        rec, first_touch = self.vm.ensure_placed(page, node)
        pt = self.page_tables[node]
        if pt.is_mapped(page):
            return rec.home, 0

        fault_cycles = self.costs.soft_trap
        stats = self.node_stats[node]
        stats.mapping_faults += 1
        self.fault_logs[node].record(FaultKind.MAPPING_FAULT, fault_cycles)
        if rec.home == node:
            pt.map_page(page, PageMode.LOCAL_HOME)
        else:
            self.network.one_way(node, rec.home, 0, MessageType.PAGE_MAP_REQUEST)
            self.network.one_way(rec.home, node, 0, MessageType.PAGE_MAP_REPLY)
            pt.map_page(page, PageMode.CCNUMA_REMOTE)
        return rec.home, fault_cycles

    # ------------------------------------------------------------------ directory helpers

    def _directory_read(self, node: int, block: int) -> int:
        """Record a read fill by ``node``; return the block's version.

        Equivalent to ``directory.record_read`` + ``directory.version``,
        inlined on the directory entry (this runs once per read fill).
        """
        entries = self._dir_entries
        e = entries.get(block)
        if e is None:
            e = DirectoryEntry()
            entries[block] = e
        e.sharers |= 1 << node
        return e.version

    def _directory_write(self, node: int, block: int) -> Tuple[int, int]:
        """Record a write by ``node``; return (extra_latency, new_version).

        Other sharers are invalidated: each costs
        ``invalidation_per_sharer`` cycles and a pair of protocol messages,
        and the losing nodes' future refetches classify as coherence
        misses.  Equivalent to ``directory.record_write`` (plus the sharer
        walk of ``directory.sharers_of``), inlined on the entry and the
        sharer bitmask — this runs once per write fill/upgrade.
        """
        entries = self._dir_entries
        e = entries.get(block)
        if e is None:
            e = DirectoryEntry()
            entries[block] = e
        bit = 1 << node
        others = e.sharers & ~bit
        directory = self.directory
        if e.owner >= 0 and e.owner != node:
            # previous exclusive owner must write back before we proceed
            directory.writebacks += 1
        e.sharers = bit
        e.owner = node
        e.version += 1
        extra = 0
        if others:
            invalidations = others.bit_count()
            directory.invalidations_sent += invalidations
            extra = invalidations * self._inval_cost
            stats = self.network.stats
            stats.record(MessageType.INVALIDATION, invalidations)
            stats.record(MessageType.INVALIDATION_ACK, invalidations)
            departed = self._departed
            while others:
                low = others & -others
                others ^= low
                departed[low.bit_length() - 1][block] = _DEPARTED_INVALIDATED
        return extra, e.version

    # ------------------------------------------------------------------ remote fetch path

    def _remote_fetch(self, node: int, page: int, block: int, is_write: bool,
                      now: int, home: int) -> Tuple[int, int, MissClass]:
        """Fetch ``block`` from its remote ``home``; return (latency, version, cause)."""
        stats = self.node_stats[node]
        # inlined classify_fetch + NodeStats.record_remote_miss
        reason = self._departed[node].pop(block, 0)
        stats.remote_misses += 1
        if reason == _DEPARTED_EVICTED:
            cause = MissClass.CAPACITY_CONFLICT
            stats.remote_capacity_conflict += 1
        elif reason == _DEPARTED_INVALIDATED:
            cause = MissClass.COHERENCE
            stats.remote_coherence += 1
        else:
            cause = MissClass.COLD
            stats.remote_cold += 1

        contention = self._fetch_contention(
            node, home, now,
            _WRITE_REQUEST if is_write else _READ_REQUEST, _DATA_REPLY)

        if is_write:
            extra, version = self._directory_write(node, block)
        else:
            extra = 0
            version = self._directory_read(node, block)
        latency = self._remote_miss_cost + contention + extra
        return latency, version, cause

    def _local_fill(self, node: int, block: int, is_write: bool) -> Tuple[int, int]:
        """Service a miss from the node's local memory; return (latency, version)."""
        self.node_stats[node].local_misses += 1
        if is_write:
            extra, version = self._directory_write(node, block)
            return self._local_miss_cost + extra, version
        # inlined _directory_read (the most common single operation)
        entries = self._dir_entries
        e = entries.get(block)
        if e is None:
            e = DirectoryEntry()
            entries[block] = e
        e.sharers |= 1 << node
        return self._local_miss_cost, e.version

    # ------------------------------------------------------------------ main entry points

    def handle_miss(self, node: int, proc: int, page: int, block: int,
                    is_write: bool, now: int) -> Tuple[int, int, int, int, bool]:
        """Service an L1 miss from processor ``proc`` of ``node``.

        Returns a plain tuple in :class:`AccessResult` field order:
        ``(service_cycles, pageop_cycles, fault_cycles, version, remote)``.
        """
        # Fast path: page already placed and mapped on this node
        # (equivalent to ensure_mapped + mode_of, without the wrapper calls).
        rec = self._vm_pages.get(page)
        pte = self._pt_entries[node].get(page) if rec is not None else None
        if pte is not None and pte.mode is not _UNMAPPED:
            home = rec.home
            fault_cycles = 0
            mode = pte.mode
        else:
            home, fault_cycles = self.ensure_mapped(node, page)
            mode = self.page_tables[node].mode_of(page)

        if mode is _LOCAL_HOME or home == node:
            latency, version = self._local_fill(node, block, is_write)
            return (latency, 0, fault_cycles, version, False)

        service, pageop, version, remote = self._service_remote_page(
            node, proc, page, block, is_write, now, home, mode)
        return (service, pageop, fault_cycles, version, remote)

    def handle_upgrade(self, node: int, proc: int, page: int, block: int,
                       now: int) -> Tuple[int, int]:
        """Service a write to a block the processor holds in shared state.

        Returns ``(latency, version)``.  The latency is a local directory
        access when the home is local, a control-message round trip when it
        is remote; invalidations of other sharers are charged on top.
        """
        self.node_stats[node].upgrades += 1
        rec = self._vm_pages.get(page)
        home = rec.home if rec is not None else None
        extra, version = self._directory_write(node, block)
        if home is None or home == node:
            return self.costs.local_miss + extra, version
        completion = self.network.round_trip(node, home, now,
                                             MessageType.WRITE_REQUEST,
                                             MessageType.DATA_REPLY)
        nominal = 2 * self.network.latency + 4 * self.network.nic_occupancy
        contention = max(0, completion - now - nominal)
        return self.costs.remote_miss + contention + extra, version

    def note_l1_eviction(self, node: int, block: int, dirty: bool) -> None:
        """Hook: a processor cache on ``node`` evicted ``block``.

        The base protocol only uses this for nodes where the block is not
        also held in a node-level structure (block cache or page cache);
        subclasses refine it.  The default marks the departure as an
        eviction when no node-level copy remains.

        NOTE: the batched engine inlines this body on its two miss paths
        (``repro/engine/batched.py``) when it is not overridden; a change
        here must be mirrored there.
        """
        # inlined BlockCache.contains
        cap = self._bc_caps[node]
        frames = self._bc_frames[node]
        if cap is None:
            if block in frames:
                return
        else:
            entry = frames.get(block % cap)
            if entry is not None and entry[0] == block:
                return
        pc = self.page_caches[node]
        page = block // self._bpp
        if pc is None or not pc.contains(page):
            rec = self._vm_pages.get(page)
            if rec is not None and rec.home != node:
                self._departed[node][block] = _DEPARTED_EVICTED

    # ------------------------------------------------------------------ overridable

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        """Service a miss on a page whose home is remote.

        Returns ``(service_cycles, pageop_cycles, version, remote)``.
        The base implementation performs an uncached remote fetch; concrete
        systems override it to add block caches, replicas or page caches.
        """
        latency, version, _ = self._remote_fetch(node, page, block, is_write,
                                                 now, home)
        return latency, 0, version, True

    # ------------------------------------------------------------------ reporting

    def describe(self) -> str:
        """One-line human-readable description of the protocol."""
        return self.name
