"""Common DSM protocol machinery shared by every simulated system.

:class:`DSMProtocol` implements the parts of the cluster device behaviour
that are identical across CC-NUMA, CC-NUMA+MigRep and R-NUMA:

* first-touch page placement and the initial mapping fault,
* the directory-side handling of reads, writes and upgrades (sharer
  tracking, invalidation counting, version bumps),
* the remote block-fetch path (network messages, NIC contention and the
  Table 3 round-trip latency), and
* per-node miss-cause classification (cold vs capacity/conflict vs
  coherence), which both MigRep's and R-NUMA's counters observe.

Concrete protocols override :meth:`_service_remote_page` (how a miss on a
*remote* page is satisfied) and may hook :meth:`_after_remote_fetch` (to
update their counters and trigger page operations).

The protocol objects operate on the substrate owned by a
:class:`repro.cluster.machine.Machine`; the machine is passed in at
construction and accessed by duck typing to avoid an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional, Tuple

from repro.interconnect.message import MessageType
from repro.kernel.faults import FaultKind
from repro.mem.page_table import LOCAL_HOME_CODE, MODES_BY_CODE, PageMode
from repro.stats.counters import MissClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine


#: Departure reasons used for miss classification.  The codes are chosen
#: so a departure reason doubles as the ``MissClass.index`` of the miss it
#: causes (0 = never departed = cold).
_DEPARTED_EVICTED = 1
_DEPARTED_INVALIDATED = 2

#: MissClass by departure reason (0 none, 1 evicted, 2 invalidated).
_MISS_CLASS_OF_REASON = (MissClass.COLD, MissClass.CAPACITY_CONFLICT,
                         MissClass.COHERENCE)

_READ_REQUEST = MessageType.READ_REQUEST
_WRITE_REQUEST = MessageType.WRITE_REQUEST
_DATA_REPLY = MessageType.DATA_REPLY
#: counter-array indices of the fetch request/reply messages
_READ_I = MessageType.READ_REQUEST.index
_WRITE_I = MessageType.WRITE_REQUEST.index
_DATA_I = MessageType.DATA_REPLY.index


class AccessResult(NamedTuple):
    """Outcome of servicing one L1 miss (or upgrade).

    This is the *schema* of :meth:`DSMProtocol.handle_miss`'s return value.
    One result is produced per L1 miss on the simulator's hottest path, so
    ``handle_miss`` returns a plain tuple in this field order (the engines
    unpack it positionally); wrap it in :class:`AccessResult` when named
    access is more convenient.

    Attributes
    ----------
    service_cycles:
        Cycles of memory-system latency (local or remote fill).
    pageop_cycles:
        Cycles spent in page operations triggered by this access
        (migration, replication, relocation, replica collapse).
    fault_cycles:
        Cycles spent in the initial mapping fault, if this access mapped
        the page for the first time on the node.
    version:
        Directory version to record in the cache that fills the block.
    remote:
        True when the access required a fetch from a remote home node.
    """

    service_cycles: int
    pageop_cycles: int
    fault_cycles: int
    version: int
    remote: bool


class DSMProtocol:
    """Base class for all simulated DSM systems."""

    #: short machine-readable name, overridden by subclasses
    name = "base"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.cfg = machine.cfg
        self.costs = machine.cfg.costs
        self.addr = machine.addr
        self.vm = machine.vm
        self.directory = machine.directory
        self.network = machine.network
        self.page_tables = machine.page_tables
        self.block_caches = machine.block_caches
        self.page_caches = machine.page_caches
        self.node_stats = machine.stats.nodes
        self.fault_logs = machine.fault_logs
        num_nodes = machine.cfg.machine.num_nodes
        # per-node, per-block departure reason for miss classification.
        # The bytearrays live on the directory (whose reserve() grows them
        # in lockstep with the block columns); alias them here so the
        # per-miss paths read/clear a flat byte instead of a dict entry.
        self._departed: list[bytearray] = machine.directory._departed
        # Pre-bound substrate internals for the per-miss fast paths below.
        # These alias the owners' live flat arrays (directory columns, page
        # table mode codes, block cache frames); the stores grow their
        # arrays strictly in place, so the aliases stay valid for the
        # machine's lifetime.  They only skip attribute traversal and
        # wrapper calls on the hottest path.
        self._vm_pages = machine.vm._pages
        self._vm_home = machine.vm._home
        self._pt_modes = [pt._modes for pt in machine.page_tables]
        directory = machine.directory
        self._dir_sharers = directory._sharers
        self._dir_owner = directory._owner
        self._dir_version = directory._version
        self._dir_tracked = directory._tracked
        self._dir_reserve = directory.reserve
        self._bc_blocks = [bc._blocks for bc in machine.block_caches]
        self._bc_versions = [bc._versions for bc in machine.block_caches]
        self._bc_dirty = [bc._dirty for bc in machine.block_caches]
        self._bc_store = [bc._store for bc in machine.block_caches]
        self._bc_caps = [bc.capacity_blocks for bc in machine.block_caches]
        self._bc_stats = [bc.stats for bc in machine.block_caches]
        self._bpp = machine.addr.blocks_per_page
        self._local_miss_cost = self.costs.local_miss
        self._remote_miss_cost = self.costs.remote_miss
        self._inval_cost = self.costs.invalidation_per_sharer
        # network internals for the inlined remote-fetch contention path
        network = machine.network
        self._nics = network._nics
        self._net_enabled = network.enabled
        self._net_latency = network.latency
        self._nic_occ = network.nic_occupancy
        self._msg_counts = network.stats._counts
        self._msg_sizes = network.stats._sizes
        self._net_stats = network.stats
        sizes = network.stats._sizes
        self._sz_read_pair = sizes[_READ_I] + sizes[_DATA_I]
        self._sz_write_pair = sizes[_WRITE_I] + sizes[_DATA_I]

    # ------------------------------------------------------------------ classification

    def mark_evicted(self, node: int, block: int) -> None:
        """Record that ``node`` lost ``block`` to a capacity/conflict eviction."""
        departed = self._departed[node]
        if block >= len(departed):
            self._dir_reserve(block + 1)
        departed[block] = _DEPARTED_EVICTED

    def mark_invalidated(self, node: int, block: int) -> None:
        """Record that ``node`` lost ``block`` to a coherence invalidation."""
        departed = self._departed[node]
        if block >= len(departed):
            self._dir_reserve(block + 1)
        departed[block] = _DEPARTED_INVALIDATED

    def classify_fetch(self, node: int, block: int) -> MissClass:
        """Classify a fetch of ``block`` by ``node`` and consume the record."""
        departed = self._departed[node]
        if block < len(departed):
            reason = departed[block]
            if reason:
                departed[block] = 0
        else:
            reason = 0
        return _MISS_CLASS_OF_REASON[reason]

    # ------------------------------------------------------------------ mapping

    def ensure_mapped(self, node: int, page: int) -> Tuple[int, int]:
        """Make sure ``page`` is mapped on ``node``; return (home, fault_cycles).

        First touch places the page at the requesting node (first-touch
        migration).  The first time any node maps a page it takes a soft
        mapping fault (Figure 2b); the cost is charged to the faulting
        processor and is identical across all systems.
        """
        rec, first_touch = self.vm.ensure_placed(page, node)
        pt = self.page_tables[node]
        if pt.is_mapped(page):
            return rec.home, 0

        fault_cycles = self.costs.soft_trap
        stats = self.node_stats[node]
        stats.mapping_faults += 1
        self.fault_logs[node].record(FaultKind.MAPPING_FAULT, fault_cycles)
        if rec.home == node:
            pt.map_page(page, PageMode.LOCAL_HOME)
        else:
            self.network.one_way(node, rec.home, 0, MessageType.PAGE_MAP_REQUEST)
            self.network.one_way(rec.home, node, 0, MessageType.PAGE_MAP_REPLY)
            pt.map_page(page, PageMode.CCNUMA_REMOTE)
        return rec.home, fault_cycles

    # ------------------------------------------------------------------ directory helpers

    def _directory_read(self, node: int, block: int) -> int:
        """Record a read fill by ``node``; return the block's version.

        Equivalent to ``directory.record_read`` + ``directory.version``,
        inlined on the directory's flat arrays (this runs once per read
        fill).
        """
        sharers = self._dir_sharers
        if block >= len(sharers):
            self._dir_reserve(block + 1)
        self._dir_tracked[block] = 1
        sharers[block] |= 1 << node
        return self._dir_version[block]

    def _directory_write(self, node: int, block: int) -> Tuple[int, int]:
        """Record a write by ``node``; return (extra_latency, new_version).

        Other sharers are invalidated: each costs
        ``invalidation_per_sharer`` cycles and a pair of protocol messages,
        and the losing nodes' future refetches classify as coherence
        misses.  Equivalent to ``directory.record_write`` (plus the sharer
        walk of ``directory.sharers_of``), inlined on the directory's flat
        arrays — this runs once per write fill/upgrade.
        """
        sharers = self._dir_sharers
        if block >= len(sharers):
            self._dir_reserve(block + 1)
        self._dir_tracked[block] = 1
        bit = 1 << node
        others = sharers[block] & ~bit
        owner = self._dir_owner
        directory = self.directory
        if owner[block] >= 0 and owner[block] != node:
            # previous exclusive owner must write back before we proceed
            directory.writebacks += 1
        sharers[block] = bit
        owner[block] = node
        versions = self._dir_version
        version = versions[block] + 1
        versions[block] = version
        extra = 0
        if others:
            invalidations = others.bit_count()
            directory.invalidations_sent += invalidations
            extra = invalidations * self._inval_cost
            stats = self.network.stats
            stats.record(MessageType.INVALIDATION, invalidations)
            stats.record(MessageType.INVALIDATION_ACK, invalidations)
            departed = self._departed
            while others:
                low = others & -others
                others ^= low
                departed[low.bit_length() - 1][block] = _DEPARTED_INVALIDATED
        return extra, version

    # ------------------------------------------------------------------ remote fetch path

    def _remote_fetch(self, node: int, page: int, block: int, is_write: bool,
                      now: int, home: int) -> Tuple[int, int, MissClass]:
        """Fetch ``block`` from its remote ``home``; return (latency, version, cause).

        Compatibility wrapper around :meth:`_remote_fill` for callers that
        also want the miss cause materialized as a :class:`MissClass`.
        """
        departed = self._departed[node]
        reason = departed[block] if block < len(departed) else 0
        latency, version = self._remote_fill(node, block, is_write, now, home)
        return latency, version, _MISS_CLASS_OF_REASON[reason]

    def _remote_fill(self, node: int, block: int, is_write: bool,
                     now: int, home: int) -> Tuple[int, int]:
        """Fetch ``block`` from its remote ``home``; return (latency, version).

        The per-remote-miss fast path: miss-cause accounting, the
        request/reply traffic and NIC contention (the body of
        :meth:`Network.fetch_contention`, inlined) and the directory side
        of the fill, all on the flat state arrays.
        """
        stats = self.node_stats[node]
        # inlined classify_fetch + NodeStats.record_remote_miss: the
        # departure reason doubles as the miss-cause counter index
        # (bounds-checked: this read precedes the directory reserve below)
        departed = self._departed[node]
        if block < len(departed):
            reason = departed[block]
            if reason:
                departed[block] = 0
        else:
            reason = 0
        stats.remote_misses += 1
        stats.remote_by_cause[reason] += 1

        # inlined Network.fetch_contention (request/reply traffic + the
        # four NIC serialisation points); this runs on every remote miss
        msg_counts = self._msg_counts
        if is_write:
            msg_counts[_WRITE_I] += 1
            msg_counts[_DATA_I] += 1
            self._net_stats.bytes_total += self._sz_write_pair
        else:
            msg_counts[_READ_I] += 1
            msg_counts[_DATA_I] += 1
            self._net_stats.bytes_total += self._sz_read_pair
        if node == home:
            contention = 0
        else:
            occ = self._nic_occ
            occ2 = occ + occ
            nics = self._nics
            req_nic = nics[node]
            home_nic = nics[home]
            if not self._net_enabled:
                req_nic.messages += 2
                home_nic.messages += 2
                req_nic.busy_cycles += occ2
                home_nic.busy_cycles += occ2
                contention = 0
            else:
                latency_net = self._net_latency
                free = req_nic.next_free
                s1 = now if now >= free else free
                w1 = s1 - now
                req_nic.next_free = s1 + occ
                t = s1 + occ + latency_net
                free = home_nic.next_free
                s2 = t if t >= free else free
                w2 = s2 - t
                home_nic.next_free = s2 + occ
                t2 = s2 + occ
                free = home_nic.next_free
                s3 = t2 if t2 >= free else free
                w3 = s3 - t2
                home_nic.next_free = s3 + occ
                t3 = s3 + occ + latency_net
                free = req_nic.next_free
                s4 = t3 if t3 >= free else free
                w4 = s4 - t3
                req_nic.next_free = s4 + occ
                req_nic.messages += 2
                home_nic.messages += 2
                req_nic.busy_cycles += occ2
                home_nic.busy_cycles += occ2
                req_nic.wait_cycles += w1 + w4
                home_nic.wait_cycles += w2 + w3
                contention = w1 + w2 + w3 + w4

        if is_write:
            extra, version = self._directory_write(node, block)
        else:
            # inlined _directory_read
            sharers = self._dir_sharers
            if block >= len(sharers):
                self._dir_reserve(block + 1)
            self._dir_tracked[block] = 1
            sharers[block] |= 1 << node
            version = self._dir_version[block]
            extra = 0
        return self._remote_miss_cost + contention + extra, version

    def _local_fill(self, node: int, block: int, is_write: bool) -> Tuple[int, int]:
        """Service a miss from the node's local memory; return (latency, version)."""
        self.node_stats[node].local_misses += 1
        if is_write:
            extra, version = self._directory_write(node, block)
            return self._local_miss_cost + extra, version
        # inlined _directory_read (the most common single operation)
        sharers = self._dir_sharers
        if block >= len(sharers):
            self._dir_reserve(block + 1)
        self._dir_tracked[block] = 1
        sharers[block] |= 1 << node
        return self._local_miss_cost, self._dir_version[block]

    # ------------------------------------------------------------------ main entry points

    def handle_miss(self, node: int, proc: int, page: int, block: int,
                    is_write: bool, now: int) -> Tuple[int, int, int, int, bool]:
        """Service an L1 miss from processor ``proc`` of ``node``.

        Returns a plain tuple in :class:`AccessResult` field order:
        ``(service_cycles, pageop_cycles, fault_cycles, version, remote)``.
        """
        # Fast path: page already placed and mapped on this node
        # (equivalent to ensure_mapped + mode_of, without the wrapper calls;
        # the home array and mode-code bytearray reads avoid both the
        # record-dict lookup and materializing the PageMode).
        vm_home = self._vm_home
        home = vm_home[page] if page < len(vm_home) else -1
        if home >= 0:
            modes = self._pt_modes[node]
            mode_code = modes[page] if page < len(modes) else 0
        else:
            mode_code = 0
        if mode_code:
            fault_cycles = 0
        else:
            home, fault_cycles = self.ensure_mapped(node, page)
            mode_code = self.page_tables[node].mode_code(page)

        if mode_code == LOCAL_HOME_CODE or home == node:
            latency, version = self._local_fill(node, block, is_write)
            return (latency, 0, fault_cycles, version, False)

        service, pageop, version, remote = self._service_remote_page(
            node, proc, page, block, is_write, now, home,
            MODES_BY_CODE[mode_code])
        return (service, pageop, fault_cycles, version, remote)

    def handle_upgrade(self, node: int, proc: int, page: int, block: int,
                       now: int) -> Tuple[int, int]:
        """Service a write to a block the processor holds in shared state.

        Returns ``(latency, version)``.  The latency is a local directory
        access when the home is local, a control-message round trip when it
        is remote; invalidations of other sharers are charged on top.
        """
        self.node_stats[node].upgrades += 1
        vm_home = self._vm_home
        home = vm_home[page] if page < len(vm_home) else -1
        extra, version = self._directory_write(node, block)
        if home < 0 or home == node:
            return self.costs.local_miss + extra, version
        completion = self.network.round_trip(node, home, now,
                                             MessageType.WRITE_REQUEST,
                                             MessageType.DATA_REPLY)
        nominal = 2 * self.network.latency + 4 * self.network.nic_occupancy
        contention = max(0, completion - now - nominal)
        return self.costs.remote_miss + contention + extra, version

    def note_l1_eviction(self, node: int, block: int, dirty: bool) -> None:
        """Hook: a processor cache on ``node`` evicted ``block``.

        The base protocol only uses this for nodes where the block is not
        also held in a node-level structure (block cache or page cache);
        subclasses refine it.  The default marks the departure as an
        eviction when no node-level copy remains.

        NOTE: the batched engine inlines this body on its two miss paths
        (``repro/engine/batched.py``) when it is not overridden; a change
        here must be mirrored there.
        """
        # inlined BlockCache.contains
        cap = self._bc_caps[node]
        if cap is None:
            if block in self._bc_store[node]:
                return
        elif self._bc_blocks[node][block % cap] == block:
            return
        pc = self.page_caches[node]
        page = block // self._bpp
        if pc is None or not pc.contains(page):
            vm_home = self._vm_home
            home = vm_home[page] if page < len(vm_home) else -1
            if home >= 0 and home != node:
                departed = self._departed[node]
                if block >= len(departed):
                    self._dir_reserve(block + 1)
                departed[block] = _DEPARTED_EVICTED

    # ------------------------------------------------------------------ overridable

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        """Service a miss on a page whose home is remote.

        Returns ``(service_cycles, pageop_cycles, version, remote)``.
        The base implementation performs an uncached remote fetch; concrete
        systems override it to add block caches, replicas or page caches.
        """
        latency, version = self._remote_fill(node, block, is_write, now, home)
        return latency, 0, version, True

    # ------------------------------------------------------------------ reporting

    def describe(self) -> str:
        """One-line human-readable description of the protocol."""
        return self.name
