"""R-NUMA: reactive fine-grain memory caching (Section 3.2).

R-NUMA starts every remote page in CC-NUMA mode and counts, per page and
per node, the *refetches* — fetches of blocks the node recently cached but
lost to capacity/conflict replacement.  When a page's refetch counter
exceeds the switching threshold the node takes a relocation interrupt and
remaps the page into its local S-COMA page cache: subsequent fills for
blocks present in the page cache are satisfied locally, while absent
blocks are fetched remotely on demand and then kept locally.

The decision is entirely local (no coordination with other nodes), which
is why R-NUMA's page operations are cheap but frequent — the opposite
trade-off from page migration/replication.

The factory builds three variants that differ only in the page-cache
capacity handed to the machine: ``rnuma`` (2.4 MB), ``rnuma-half``
(1.2 MB, Figure 8) and ``rnuma-inf`` (unbounded).
"""

from __future__ import annotations

from array import array
from typing import Optional, Tuple

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.counters import RefetchCounters
from repro.core.decisions import RNUMAPolicy, resolve_policy
from repro.kernel.faults import FaultKind
from repro.kernel.relocation import RelocationEngine
from repro.mem.page_table import PageMode
from repro.stats.counters import MissClass

#: remote_by_cause index of capacity/conflict misses (refetch signal)
_CAPACITY_IDX = MissClass.CAPACITY_CONFLICT.index


class RNUMAProtocol(CCNUMAProtocol):
    """Hybrid CC-NUMA / S-COMA protocol with reactive per-page switching."""

    name = "rnuma"

    def __init__(self, machine, *, relocation_delay: Optional[int] = None,
                 policy=None) -> None:
        super().__init__(machine)
        num_nodes = self.cfg.machine.num_nodes
        self.refetch_counters = [RefetchCounters() for _ in range(num_nodes)]
        # resolved through the open POLICIES registry (explicit policy >
        # system-spec override > thresholds.rnuma_policy; the default
        # builds the paper's static refetch-threshold rule).  The delay
        # is forwarded only when a caller (the hybrid) supplied one.
        delay = ({} if relocation_delay is None
                 else {"relocation_delay": relocation_delay})
        self.policy = resolve_policy(
            "rnuma", self.cfg, spec=getattr(machine, "system", None),
            policy=policy, **delay)
        # exact-type check: a subclass may override should_relocate, so it
        # only counts as the static paper rule when it *is* the base class.
        # The compiled kernel inlines the static threshold test from these
        # scalars; adaptive policies bail to Python at each evaluation.
        self._rn_static = type(self.policy) is RNUMAPolicy
        self._rn_threshold = self.policy.threshold if self._rn_static else 0
        self._rn_delay = (self.policy.relocation_delay or 0) if self._rn_static else 0
        self.engine = RelocationEngine(
            addr=self.addr,
            costs=self.costs,
            vm=self.vm,
            directory=self.directory,
            network=self.network,
            page_tables=self.page_tables,
            block_caches=self.block_caches,
            page_caches=self.page_caches,
            l1_caches=machine.l1_by_node,
        )
        #: total misses observed per page, stored as a flat in-place-grown
        #: column so the kernel's R-NUMA lane can bump it (missing == 0)
        self._page_miss_totals = array("q")
        self._pmt_cap = 0
        # pre-bound page-cache residency flag buffers for the per-miss
        # fast path (bytearray indexed by page; grows in place)
        self._pc_res = [pc._resident if pc is not None else None
                        for pc in self.page_caches]

    # ------------------------------------------------------------------ helpers

    def _reserve_totals(self, n: int) -> None:
        """Grow the per-page miss-total column (in place) to cover pages ``< n``."""
        cap = self._pmt_cap
        if n <= cap:
            return
        grow = max(n, 2 * cap, 256) - cap
        self._page_miss_totals.frombytes(bytes(8 * grow))
        self._pmt_cap = cap + grow

    def _record_page_miss(self, page: int) -> int:
        if page >= self._pmt_cap:
            self._reserve_totals(page + 1)
        total = self._page_miss_totals[page] + 1
        self._page_miss_totals[page] = total
        return total

    def _page_total(self, page: int) -> int:
        return self._page_miss_totals[page] if page < self._pmt_cap else 0

    def _perform_relocation(self, node: int, page: int, now: int) -> int:
        """Relocate ``page`` into ``node``'s page cache (decision already made)."""
        outcome = self.engine.relocate(node, page, now)
        self.refetch_counters[node].clear(page)
        stats = self.node_stats[node]
        stats.relocations += 1
        if outcome.evicted_page is not None:
            stats.page_cache_evictions += 1
            self.refetch_counters[node].clear(outcome.evicted_page)
            self.fault_logs[node].record(FaultKind.PAGE_CACHE_EVICTION, 0)
        self.fault_logs[node].record(FaultKind.RELOCATION_INTERRUPT, outcome.cost)
        return outcome.cost

    def _maybe_relocate(self, node: int, page: int, now: int) -> int:
        """Relocate ``page`` on ``node`` if its refetch counter warrants it."""
        counters = self.refetch_counters[node]
        if not self.policy.should_relocate(counters, page,
                                           page_total_misses=self._page_total(page),
                                           node=node):
            return 0
        return self._perform_relocation(node, page, now)

    def _scoma_fetch(self, node: int, page: int, block: int, is_write: bool,
                     now: int, home: int) -> Tuple[int, int, bool]:
        """Service a miss on a page held in the node's S-COMA page cache.

        The :class:`~repro.mem.page_cache.PageCache` lookup/write/fill
        steps are inlined on the cache's flat tag arrays (the page's
        block tags live at the *global* block index, since
        ``block == page * blocks_per_page + offset``) — this runs on
        every reference to a relocated page, R-NUMA's hottest service
        path once an application's hot pages have switched.  The
        compiled kernel's page-cache probe lane is a transcription of
        this body; keep them in sync.
        """
        stats = self.node_stats[node]
        pc = self.page_caches[node]
        pc_stats = pc.stats
        # inlined PageCache._touch (LRU stamp; resident: the caller checked)
        pc._clock[0] += 1
        pc._stamp[page] = pc._clock[0]
        # inlined Directory.version
        versions = self._dir_version
        version = versions[block] if block < len(versions) else 0

        # inlined PageCache.lookup_block
        pcv = pc._version
        pcd = pc._dirty
        stored = pcv[block]
        if stored >= 0:
            if stored >= version:
                pc_stats.block_hits += 1
                stats.page_cache_hits += 1
                if is_write:
                    extra, version = self._directory_write(node, block)
                    # inlined PageCache.write_block (the tag is valid)
                    if version > stored:
                        pcv[block] = version
                    if not pcd[block]:
                        pcd[block] = 1
                        pc._ndirty[page] += 1
                    return self._local_miss_cost + extra, version, False
                return self._local_miss_cost, version, False
            # stale block: invalidate and refetch below
            pcv[block] = -1
            pc._nvalid[page] -= 1
            if pcd[block]:
                pcd[block] = 0
                pc._ndirty[page] -= 1
            pc_stats.block_invalidations += 1
        pc_stats.block_misses += 1

        latency, version = self._remote_fill(node, block, is_write, now, home)
        # inlined PageCache.fill_block
        if pcv[block] < 0:
            pc._nvalid[page] += 1
        pcv[block] = version
        if is_write and not pcd[block]:
            pcd[block] = 1
            pc._ndirty[page] += 1
        pc._fills[page] += 1
        pc_stats.block_fills += 1
        return latency, version, True

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        # inlined PageCache.contains on the pre-bound residency buffer
        pc_res = self._pc_res[node]
        if pc_res is not None and page < len(pc_res) and pc_res[page]:
            latency, version, remote = self._scoma_fetch(
                node, page, block, is_write, now, home)
            if remote:
                self._record_page_miss(page)
            return latency, 0, version, remote

        # CC-NUMA mode: go through the block cache and feed the reactive
        # counters (the capacity/conflict cell of the by-cause array is
        # read directly; the named property would re-resolve the index)
        stats = self.node_stats[node]
        by_cause = stats.remote_by_cause
        remote_before = by_cause[_CAPACITY_IDX]
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        pageop = 0
        if remote:
            self._record_page_miss(page)
            if by_cause[_CAPACITY_IDX] > remote_before:
                # this fetch was a capacity/conflict refetch: count it
                self.refetch_counters[node].record_refetch(page)
                pageop = self._maybe_relocate(node, page, now)
        return latency, pageop, version, remote

    def describe(self) -> str:
        pc = self.page_caches[0]
        if pc is None:
            size = "no page cache"
        elif pc.is_infinite:
            size = "infinite page cache"
        else:
            size = f"{pc.capacity_pages} page frames"
        return f"R-NUMA ({size})"
