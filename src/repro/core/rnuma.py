"""R-NUMA: reactive fine-grain memory caching (Section 3.2).

R-NUMA starts every remote page in CC-NUMA mode and counts, per page and
per node, the *refetches* — fetches of blocks the node recently cached but
lost to capacity/conflict replacement.  When a page's refetch counter
exceeds the switching threshold the node takes a relocation interrupt and
remaps the page into its local S-COMA page cache: subsequent fills for
blocks present in the page cache are satisfied locally, while absent
blocks are fetched remotely on demand and then kept locally.

The decision is entirely local (no coordination with other nodes), which
is why R-NUMA's page operations are cheap but frequent — the opposite
trade-off from page migration/replication.

The factory builds three variants that differ only in the page-cache
capacity handed to the machine: ``rnuma`` (2.4 MB), ``rnuma-half``
(1.2 MB, Figure 8) and ``rnuma-inf`` (unbounded).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.counters import RefetchCounters
from repro.core.decisions import RNUMAPolicy
from repro.kernel.faults import FaultKind
from repro.kernel.relocation import RelocationEngine
from repro.mem.page_table import PageMode
from repro.stats.counters import MissClass


class RNUMAProtocol(CCNUMAProtocol):
    """Hybrid CC-NUMA / S-COMA protocol with reactive per-page switching."""

    name = "rnuma"

    def __init__(self, machine, *, relocation_delay: int = 0) -> None:
        super().__init__(machine)
        thresholds = self.cfg.thresholds
        num_nodes = self.cfg.machine.num_nodes
        self.refetch_counters = [RefetchCounters() for _ in range(num_nodes)]
        self.policy = RNUMAPolicy(
            threshold=thresholds.effective_rnuma_threshold,
            relocation_delay=relocation_delay,
        )
        self.engine = RelocationEngine(
            addr=self.addr,
            costs=self.costs,
            vm=self.vm,
            directory=self.directory,
            network=self.network,
            page_tables=self.page_tables,
            block_caches=self.block_caches,
            page_caches=self.page_caches,
            l1_caches=machine.l1_by_node,
        )
        #: total misses observed per page (used only by the hybrid's delay)
        self._page_miss_totals: dict[int, int] = {}
        # pre-bound page-cache residency dicts for the per-miss fast path
        self._pc_pages = [pc._pages if pc is not None else None
                          for pc in self.page_caches]

    # ------------------------------------------------------------------ helpers

    def _record_page_miss(self, page: int) -> int:
        total = self._page_miss_totals.get(page, 0) + 1
        self._page_miss_totals[page] = total
        return total

    def _maybe_relocate(self, node: int, page: int, now: int) -> int:
        """Relocate ``page`` on ``node`` if its refetch counter warrants it."""
        counters = self.refetch_counters[node]
        total = self._page_miss_totals.get(page, 0)
        if not self.policy.should_relocate(counters, page, page_total_misses=total):
            return 0
        outcome = self.engine.relocate(node, page, now)
        counters.clear(page)
        stats = self.node_stats[node]
        stats.relocations += 1
        if outcome.evicted_page is not None:
            stats.page_cache_evictions += 1
            self.refetch_counters[node].clear(outcome.evicted_page)
            self.fault_logs[node].record(FaultKind.PAGE_CACHE_EVICTION, 0)
        self.fault_logs[node].record(FaultKind.RELOCATION_INTERRUPT, outcome.cost)
        return outcome.cost

    def _scoma_fetch(self, node: int, page: int, block: int, is_write: bool,
                     now: int, home: int) -> Tuple[int, int, bool]:
        """Service a miss on a page held in the node's S-COMA page cache."""
        stats = self.node_stats[node]
        pc = self.page_caches[node]
        offset = self.addr.block_offset_in_page(block)
        version = self.directory.version(block)

        if pc.lookup_block(page, offset, version):
            stats.page_cache_hits += 1
            if is_write:
                extra, version = self._directory_write(node, block)
                pc.write_block(page, offset, version)
                return self.costs.local_miss + extra, version, False
            return self.costs.local_miss, version, False

        latency, version, _cause = self._remote_fetch(node, page, block,
                                                      is_write, now, home)
        pc.fill_block(page, offset, version, dirty=is_write)
        return latency, version, True

    # ------------------------------------------------------------------ overrides

    def _service_remote_page(self, node: int, proc: int, page: int, block: int,
                             is_write: bool, now: int, home: int,
                             mode: PageMode) -> Tuple[int, int, int, bool]:
        # inlined PageCache.contains on the pre-bound residency dict
        pc_pages = self._pc_pages[node]
        if pc_pages is not None and page in pc_pages:
            latency, version, remote = self._scoma_fetch(
                node, page, block, is_write, now, home)
            if remote:
                self._record_page_miss(page)
            return latency, 0, version, remote

        # CC-NUMA mode: go through the block cache and feed the reactive counters
        stats = self.node_stats[node]
        remote_before = stats.remote_capacity_conflict
        latency, version, remote = self._block_cache_fetch(
            node, page, block, is_write, now, home)
        pageop = 0
        if remote:
            self._record_page_miss(page)
            if stats.remote_capacity_conflict > remote_before:
                # this fetch was a capacity/conflict refetch: count it
                self.refetch_counters[node].record_refetch(page)
                pageop = self._maybe_relocate(node, page, now)
        return latency, pageop, version, remote

    def describe(self) -> str:
        pc = self.page_caches[0]
        if pc is None:
            size = "no page cache"
        elif pc.is_infinite:
            size = "infinite page cache"
        else:
            size = f"{pc.capacity_pages} page frames"
        return f"R-NUMA ({size})"
