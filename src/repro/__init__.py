"""Reproduction of Lai & Falsafi, SPAA 2000.

``repro`` is a trace-driven simulator of CC-NUMA DSM clusters built from
SMP nodes, together with implementations of the two traffic-reduction
techniques the paper compares:

* kernel-based **page migration/replication** (``CC-NUMA+MigRep``), and
* reactive fine-grain memory caching (**R-NUMA**), which relocates pages
  into a local S-COMA page cache.

The public API is intentionally small:

``MachineConfig`` / ``CostModel`` / ``ThresholdConfig``
    describe the simulated hardware and software cost model
    (Table 3 of the paper).

``build_system``
    construct a named system (``"ccnuma"``, ``"migrep"``, ``"rnuma"``,
    ``"rnuma-inf"``, ...) ready to run a workload.

``get_workload`` / ``list_workloads``
    the seven synthetic SPLASH-2-like workloads (Table 2 of the paper).

``run_experiment`` / ``ExperimentResult``
    run one (workload, system) pair and collect execution time, miss
    breakdowns and page-operation counts.

``SweepRunner``
    execute batches of independent runs — memoized by a trace/config
    digest and fanned out across worker processes — the engine behind
    every figure/table/ablation harness.

``ENGINE_NAMES``
    the available execution engines (``"batched"``, the vectorised
    two-tier default, and ``"legacy"``, the reference interpreter); pick
    one per run with ``Machine.run(trace, engine=...)`` or globally with
    the ``REPRO_ENGINE`` environment variable.

``analyze_trace``
    sharing-pattern analysis of a workload trace (the measured Table 1).

``save_trace`` / ``load_trace``
    persist generated traces as ``.npz`` archives.

``repro.experiments``
    one module per table/figure of the paper's evaluation section, the
    ablation harnesses, and the EXPERIMENTS.md report builder.

``repro.cli``
    the ``repro`` / ``python -m repro`` command-line interface.

Example
-------
>>> from repro import build_system, get_workload, run_experiment
>>> wl = get_workload("lu", scale=0.05)
>>> result = run_experiment(wl, "rnuma")
>>> result.normalized_time(run_experiment(wl, "perfect"))  # doctest: +SKIP
1.18
"""

from __future__ import annotations

from repro.config import (
    CostModel,
    MachineConfig,
    ThresholdConfig,
    SimulationConfig,
    base_config,
    slow_page_ops_config,
    long_latency_config,
)
from repro.analysis.sharing import SharingClass, SharingReport, analyze_trace
from repro.core.factory import PAPER_SYSTEM_NAMES, SYSTEM_NAMES, build_system
from repro.engine import ENGINE_NAMES
from repro.experiments.runner import (
    ExperimentResult,
    SweepRunner,
    run_experiment,
    run_pair,
)
from repro.kernel.placement import PLACEMENT_NAMES, build_placement
from repro.workloads import get_workload, list_workloads
from repro.workloads.trace_io import load_trace, save_trace

__version__ = "1.2.0"

__all__ = [
    "CostModel",
    "MachineConfig",
    "ThresholdConfig",
    "SimulationConfig",
    "base_config",
    "slow_page_ops_config",
    "long_latency_config",
    "build_system",
    "SYSTEM_NAMES",
    "PAPER_SYSTEM_NAMES",
    "build_placement",
    "PLACEMENT_NAMES",
    "get_workload",
    "list_workloads",
    "save_trace",
    "load_trace",
    "run_experiment",
    "run_pair",
    "ExperimentResult",
    "SweepRunner",
    "ENGINE_NAMES",
    "analyze_trace",
    "SharingClass",
    "SharingReport",
    "__version__",
]
