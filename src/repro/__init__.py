"""Reproduction of Lai & Falsafi, SPAA 2000.

``repro`` is a trace-driven simulator of CC-NUMA DSM clusters built from
SMP nodes, together with implementations of the two traffic-reduction
techniques the paper compares:

* kernel-based **page migration/replication** (``CC-NUMA+MigRep``), and
* reactive fine-grain memory caching (**R-NUMA**), which relocates pages
  into a local S-COMA page cache.

The public API is intentionally small:

``MachineConfig`` / ``CostModel`` / ``ThresholdConfig``
    describe the simulated hardware and software cost model
    (Table 3 of the paper).

``build_system``
    construct a named system (``"ccnuma"``, ``"migrep"``, ``"rnuma"``,
    ``"rnuma-inf"``, ...) ready to run a workload.

``get_workload`` / ``list_workloads``
    the seven synthetic SPLASH-2-like workloads (Table 2 of the paper).

``register_system`` / ``register_workload`` / ``register_placement`` /
``register_scenario`` / ``register_policy``
    the open-registry extension points: systems (often derived from an
    existing spec via :meth:`SystemSpec.derive`), workloads, placement
    policies, scenarios and page-operation decision policies registered
    by user code immediately appear in the name lists, the CLI and every
    sweep.

``build_policy`` / ``POLICY_NAMES`` / ``DecisionPolicy``
    the decision-policy axis: when to migrate, replicate or relocate a
    page.  The paper's static thresholds (``"static-threshold"``) are
    the default; ``"competitive"`` (ski-rental), ``"hysteresis"``
    (decayed miss pressure) and ``"cost-model"`` (margin-gated
    cost/benefit) adapt to the configured cost model.  Select per run
    with ``SimulationConfig.with_policies`` or per system with
    ``SystemSpec.derive(migrep_policy=..., rnuma_policy=...)``.

``Scenario`` / ``run_scenario`` / ``ResultSet``
    the declarative experiment API: a :class:`Scenario` names the axes
    (apps × systems × configs × scales × seeds) and the normalisation
    baseline, :func:`run_scenario` executes it as one parallel batch, and
    the returned :class:`ResultSet` carries the flat result rows with
    pivot/mean/export helpers.  Every figure/table of the paper is such a
    scenario (``run_scenario("figure5")``, or ``repro exp figure5``).

``run_experiment`` / ``ExperimentResult``
    run one (workload, system) pair and collect execution time, miss
    breakdowns and page-operation counts.

``SweepRunner`` / ``SweepJournal`` / ``RunnerStats``
    execute batches of independent runs — memoized by a trace/config
    digest and fanned out across *supervised* worker processes — the
    engine behind every figure/table/ablation harness.  Worker crashes,
    hangs and run exceptions are classified, retried with capped
    exponential backoff and demoted down a shm → npz → inline
    degradation ladder; a :class:`SweepJournal` checkpoints completed
    results so an interrupted sweep resumes without recomputing
    (``repro exp --journal/--resume``), and :class:`RunnerStats`
    surfaces the cache/dispatch/fault counters.

``ResultStore``
    the durable, content-addressed result store: one SQLite file holding
    every completed run keyed by the same trace/config digests as the
    runner's memo table and the journal, with provenance, checksums and
    schema migration.  Wire it in with ``SweepRunner(store=...)``,
    ``run_scenario(store=...)`` or ``repro exp --store PATH`` — a sweep
    re-run in a fresh process replays from the store without simulating
    (``repro store ls|verify|gc|export`` inspects one).

``SweepService`` / ``ServiceClient``
    the persistent sweep service: a warm local daemon (``repro serve``)
    holding one runner + store behind a Unix socket, deduping identical
    in-flight submissions across any number of clients and streaming
    per-run progress (``repro exp <scenario> --service SOCKET``, or
    :meth:`ServiceClient.submit` from Python).

``ENGINE_NAMES``
    the available execution engines (``"batched"``, the vectorised
    two-tier default, and ``"legacy"``, the reference interpreter); pick
    one per run with ``Machine.run(trace, engine=...)`` or globally with
    the ``REPRO_ENGINE`` environment variable.

``analyze_trace``
    sharing-pattern analysis of a workload trace (the measured Table 1).

``save_trace`` / ``load_trace``
    persist generated traces as ``.npz`` archives.

``open_trace`` / ``write_trace_file`` / ``import_trace_file`` /
``register_trace_file``
    the out-of-core trace subsystem (``repro.traces``): versioned
    mmap-able trace *files* written chunk by chunk, streamed back
    lazily through every engine with bit-identical results, importable
    from external recordings (``tsv``, valgrind ``lackey``) and usable
    anywhere a workload name is accepted (``--apps file:app.rpt``,
    ``repro trace gen|import|info|verify``).

``repro.experiments``
    one module per table/figure of the paper's evaluation section, the
    ablation harnesses, and the EXPERIMENTS.md report builder.

``repro.cli``
    the ``repro`` / ``python -m repro`` command-line interface.

Example
-------
>>> from repro import build_system, get_workload, run_experiment
>>> wl = get_workload("lu", scale=0.05)
>>> result = run_experiment(wl, "rnuma")
>>> result.normalized_time(run_experiment(wl, "perfect"))  # doctest: +SKIP
1.18
"""

from __future__ import annotations

from repro.config import (
    CostModel,
    MachineConfig,
    ThresholdConfig,
    SimulationConfig,
    base_config,
    slow_page_ops_config,
    long_latency_config,
)
from repro.analysis.sharing import SharingClass, SharingReport, analyze_trace
from repro.core.decisions import (
    POLICY_NAMES,
    DecisionPolicy,
    MigRepDecision,
    MigRepPolicy,
    PolicySpec,
    RNUMAPolicy,
    build_policy,
)
from repro.core.factory import (
    PAPER_SYSTEM_NAMES,
    SYSTEM_NAMES,
    SystemSpec,
    build_system,
)
from repro.engine import ENGINE_NAMES
from repro.experiments.runner import (
    ExperimentResult,
    RunnerStats,
    SweepJournal,
    SweepRunner,
    run_experiment,
    run_pair,
)
from repro.experiments.scenario import (
    ResultSet,
    Scenario,
    get_scenario,
    list_scenarios,
    run_scenario,
)
from repro.experiments.service import ServiceClient, SweepService
from repro.experiments.store import ResultStore
from repro.kernel.placement import PLACEMENT_NAMES, build_placement
from repro.registry import (
    Registry,
    UnknownNameError,
    register_placement,
    register_policy,
    register_scenario,
    register_system,
    register_workload,
)
from repro.traces import (
    StreamingTrace,
    import_trace_file,
    open_trace,
    register_trace_file,
    write_trace_file,
)
from repro.workloads import get_workload, list_workloads
from repro.workloads.trace_io import load_trace, save_trace

__version__ = "1.9.0"

__all__ = [
    "CostModel",
    "MachineConfig",
    "ThresholdConfig",
    "SimulationConfig",
    "base_config",
    "slow_page_ops_config",
    "long_latency_config",
    "build_system",
    "SystemSpec",
    "SYSTEM_NAMES",
    "PAPER_SYSTEM_NAMES",
    "build_placement",
    "PLACEMENT_NAMES",
    "Registry",
    "UnknownNameError",
    "register_system",
    "register_workload",
    "register_placement",
    "register_scenario",
    "register_policy",
    "DecisionPolicy",
    "PolicySpec",
    "MigRepDecision",
    "MigRepPolicy",
    "RNUMAPolicy",
    "build_policy",
    "POLICY_NAMES",
    "Scenario",
    "ResultSet",
    "run_scenario",
    "get_scenario",
    "list_scenarios",
    "get_workload",
    "list_workloads",
    "save_trace",
    "load_trace",
    "open_trace",
    "write_trace_file",
    "import_trace_file",
    "register_trace_file",
    "StreamingTrace",
    "run_experiment",
    "run_pair",
    "ExperimentResult",
    "SweepRunner",
    "SweepJournal",
    "RunnerStats",
    "ResultStore",
    "SweepService",
    "ServiceClient",
    "ENGINE_NAMES",
    "analyze_trace",
    "SharingClass",
    "SharingReport",
    "__version__",
]
