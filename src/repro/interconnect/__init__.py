"""Interconnect substrates: intra-node bus, inter-node network, messages.

The paper's machine connects the four processors of each node over a
100 MHz split-transaction memory bus and the eight nodes over a
point-to-point network with a constant 80-cycle latency; contention is
modelled at the memory bus and at the network interfaces (Section 5).

* :mod:`repro.interconnect.message` — message taxonomy and sizes, used for
  traffic accounting.
* :mod:`repro.interconnect.bus` — the split-transaction memory bus
  (occupancy-based contention).
* :mod:`repro.interconnect.network` — the point-to-point network and
  per-node network interfaces (NICs).
"""

from repro.interconnect.message import MessageType, MessageStats
from repro.interconnect.bus import SplitTransactionBus
from repro.interconnect.network import Network

__all__ = [
    "MessageType",
    "MessageStats",
    "SplitTransactionBus",
    "Network",
]
