"""Point-to-point cluster network with per-node NIC contention.

The paper assumes a point-to-point network with a constant latency of
80 cycles but models contention at the network interfaces accurately
(Section 5).  The model here follows that: the fabric itself is
contention-free and adds ``latency`` cycles to every traversal, while each
node has a network interface (NIC) that serialises message injection and
delivery with a per-message occupancy.

``round_trip`` composes the four NIC acquisitions (request out at the
requester, request in at the home, reply out at the home, reply in at the
requester) with two fabric traversals, returning the completion time of a
remote request/reply pair; this is used by the protocols for remote block
fetches.  One-way messages (invalidations, flush requests) use
``one_way``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.interconnect.message import MessageStats, MessageType


@dataclass(slots=True)
class _Nic:
    """Network interface of one node (a serialising resource)."""

    next_free: int = 0
    messages: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0

    def acquire(self, now: int, occupancy: int, enabled: bool) -> int:
        self.messages += 1
        if not enabled:
            self.busy_cycles += occupancy
            return now
        start = now if now >= self.next_free else self.next_free
        self.wait_cycles += start - now
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        return start


class Network:
    """Constant-latency point-to-point network with NIC contention.

    Parameters
    ----------
    num_nodes:
        Number of nodes (NICs).
    latency:
        One-way fabric latency in cycles (80 in the base system).
    nic_occupancy:
        Cycles a NIC is busy per message.
    enabled:
        When False, contention is ignored (latency still applies).
    block_size, page_size:
        Used for traffic (byte) accounting in :class:`MessageStats`.
    """

    __slots__ = ("num_nodes", "latency", "nic_occupancy", "enabled",
                 "_nics", "stats")

    def __init__(self, num_nodes: int, latency: int, nic_occupancy: int,
                 *, enabled: bool = True, block_size: int = 64,
                 page_size: int = 4096) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if latency < 0 or nic_occupancy < 0:
            raise ValueError("latency and nic_occupancy must be non-negative")
        self.num_nodes = num_nodes
        self.latency = latency
        self.nic_occupancy = nic_occupancy
        self.enabled = enabled
        self._nics: List[_Nic] = [_Nic() for _ in range(num_nodes)]
        self.stats = MessageStats(block_size=block_size, page_size=page_size)

    # -- helpers ---------------------------------------------------------------

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    def nic(self, node: int) -> _Nic:
        """The NIC of ``node`` (exposed for statistics/tests)."""
        self._check(node)
        return self._nics[node]

    # -- message timing -----------------------------------------------------------

    def one_way(self, src: int, dst: int, now: int, mtype: MessageType) -> int:
        """Send one message from ``src`` to ``dst`` starting at ``now``.

        Returns the delivery completion time at ``dst``.  Messages between
        a node and itself (``src == dst``) are local and free.
        """
        self._check(src)
        self._check(dst)
        self.stats.record(mtype)
        if src == dst:
            return now
        t = self._nics[src].acquire(now, self.nic_occupancy, self.enabled)
        t += self.nic_occupancy + self.latency
        t = self._nics[dst].acquire(t, self.nic_occupancy, self.enabled)
        return t + self.nic_occupancy

    def fetch_contention(self, requester: int, home: int, now: int,
                         request: MessageType = MessageType.READ_REQUEST,
                         reply: MessageType = MessageType.DATA_REPLY) -> int:
        """Fast path for the block-fetch request/reply exchange.

        Records the two messages and performs NIC occupancy accounting,
        returning only the *queueing delay* beyond the nominal (uncontended)
        round trip — which the protocols add on top of the Table 3 remote
        miss latency.  Semantically equivalent to :meth:`round_trip` minus
        the nominal latency, but with the per-message bookkeeping inlined
        because it sits on the simulator's hottest path.  Unlike
        :meth:`one_way` it does not validate the node ids; callers pass
        protocol-derived (always valid) nodes.
        """
        # inlined MessageStats.record for the two messages
        stats = self.stats
        counts = stats._counts
        ri = request.index
        pi = reply.index
        counts[ri] += 1
        counts[pi] += 1
        sizes = stats._sizes
        stats.bytes_total += sizes[ri] + sizes[pi]
        if requester == home:
            return 0
        occ = self.nic_occupancy
        req_nic = self._nics[requester]
        home_nic = self._nics[home]
        if not self.enabled:
            req_nic.messages += 2
            home_nic.messages += 2
            req_nic.busy_cycles += 2 * occ
            home_nic.busy_cycles += 2 * occ
            return 0
        # inlined _Nic.acquire for the four serialisation points
        latency = self.latency
        # request injection at the requester
        free = req_nic.next_free
        start1 = now if now >= free else free
        w1 = start1 - now
        req_nic.next_free = start1 + occ
        t = start1 + occ + latency
        # request delivery at the home
        free = home_nic.next_free
        start2 = t if t >= free else free
        w2 = start2 - t
        home_nic.next_free = start2 + occ
        t2 = start2 + occ
        # reply injection at the home
        free = home_nic.next_free
        start3 = t2 if t2 >= free else free
        w3 = start3 - t2
        home_nic.next_free = start3 + occ
        t3 = start3 + occ + latency
        # reply delivery at the requester
        free = req_nic.next_free
        start4 = t3 if t3 >= free else free
        w4 = start4 - t3
        req_nic.next_free = start4 + occ
        req_nic.messages += 2
        home_nic.messages += 2
        req_nic.busy_cycles += 2 * occ
        home_nic.busy_cycles += 2 * occ
        req_nic.wait_cycles += w1 + w4
        home_nic.wait_cycles += w2 + w3
        return w1 + w2 + w3 + w4

    def round_trip(self, requester: int, home: int, now: int,
                   request: MessageType = MessageType.READ_REQUEST,
                   reply: MessageType = MessageType.DATA_REPLY,
                   service_time: int = 0) -> int:
        """Request/reply exchange between ``requester`` and ``home``.

        ``service_time`` is time the home spends servicing the request
        (e.g. directory access + invalidation gathering) between receiving
        the request and injecting the reply.  Returns the completion time
        at the requester.
        """
        arrive = self.one_way(requester, home, now, request)
        return self.one_way(home, requester, arrive + service_time, reply)

    # -- statistics -----------------------------------------------------------------

    def total_messages(self) -> int:
        """Total messages sent over the network."""
        return self.stats.total_messages

    def total_bytes(self) -> int:
        """Total bytes sent over the network."""
        return self.stats.bytes_total

    def reset(self) -> None:
        """Clear NIC timing state and traffic statistics.

        The MessageStats object (and its counter list) is cleared in
        place, never replaced: the protocol layer pre-binds both for its
        inlined recording paths and must keep observing the live counters.
        """
        for nic in self._nics:
            nic.next_free = 0
            nic.messages = 0
            nic.busy_cycles = 0
            nic.wait_cycles = 0
        self.stats.clear()
