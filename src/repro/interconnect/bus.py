"""Split-transaction memory bus with occupancy-based contention.

Each SMP node's processors share a 100 MHz split-transaction bus
(Section 5 of the paper).  The simulator models contention at this bus
the same way the paper's simulator does for its purposes: every cache-miss
transaction occupies the bus for a fixed number of cycles, and a
transaction issued while the bus is busy waits until the bus frees up.

The model is a simple ``next_free`` resource: ``acquire(now, occupancy)``
returns the cycle at which the transaction may start (>= ``now``), records
the queueing delay, and advances ``next_free``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class SplitTransactionBus:
    """Occupancy/contention model for one node's memory bus.

    Parameters
    ----------
    node:
        Node id (for reporting only).
    enabled:
        When False the bus never queues (used to disable contention
        modelling globally from :class:`repro.config.SimulationConfig`).
    """

    node: int = 0
    enabled: bool = True
    next_free: int = 0
    transactions: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0

    def acquire(self, now: int, occupancy: int) -> int:
        """Acquire the bus at time ``now`` for ``occupancy`` cycles.

        Returns the start time of the transaction (equal to ``now`` when
        the bus is idle, later when it is busy).  The caller adds
        ``start - now`` to the requesting processor's stall time.
        """
        if occupancy < 0:
            raise ValueError("occupancy must be non-negative")
        self.transactions += 1
        if not self.enabled:
            self.busy_cycles += occupancy
            return now
        start = now if now >= self.next_free else self.next_free
        self.wait_cycles += start - now
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        return start

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the bus spent busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)

    def reset(self) -> None:
        """Clear timing state and statistics."""
        self.next_free = 0
        self.transactions = 0
        self.busy_cycles = 0
        self.wait_cycles = 0
