"""Machine, cost-model and threshold configuration.

This module encodes the simulated machine of Section 5 ("Methodology") and
the cost model of Table 3 of the paper.  Every experiment in
:mod:`repro.experiments` is a function of three ingredients:

* a :class:`MachineConfig` — the hardware geometry (8 nodes of 4 processors,
  16 KB direct-mapped processor caches, a 64 KB per-node SRAM block cache,
  a 2.4 MB per-node S-COMA page cache, 4 KB pages and 64-byte blocks),
* a :class:`CostModel` — the per-operation cycle costs of Table 3, plus the
  "slow page operation" and "long network latency" variants used by the
  sensitivity studies of Sections 6.2 and 6.3, and
* a :class:`ThresholdConfig` — the migration/replication/relocation
  thresholds and counter reset interval of Section 5.

The three convenience constructors :func:`base_config`,
:func:`slow_page_ops_config` and :func:`long_latency_config` build the
exact parameterisations used by Figures 5-8 and Table 4.

Threshold scaling
-----------------
The paper's thresholds (migration/replication threshold of 800 misses,
reset interval of 32 000 misses, R-NUMA switching threshold of 32 misses)
were tuned for full-size SPLASH-2 runs of hundreds of millions of
references.  The synthetic traces used in this reproduction are several
orders of magnitude shorter, so thresholds are expressed *relative* to the
R-NUMA threshold through :class:`ThresholdConfig` and scaled together by a
single ``scale`` knob; the ratios between the thresholds — the quantity
that actually governs the comparative behaviour — are preserved.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


# ---------------------------------------------------------------------------
# Machine geometry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineConfig:
    """Geometry of the simulated DSM cluster (Figure 1 / Section 5).

    Attributes
    ----------
    num_nodes:
        Number of SMP nodes in the cluster.  The paper simulates eight.
    procs_per_node:
        Processors per node (four in the paper).
    block_size:
        Coherence/cache block size in bytes.
    page_size:
        Virtual-memory page size in bytes.
    l1_size:
        Per-processor cache capacity in bytes.  The paper conservatively
        uses 16 KB direct-mapped caches to compensate for the scaled-down
        SPLASH-2 data sets.
    l1_assoc:
        Associativity of the processor cache (1 = direct mapped).
    block_cache_size:
        Per-node CC-NUMA SRAM block cache capacity in bytes.  The paper
        sizes it as the sum of the node's processor caches (64 KB for a
        4-way node) to honour inclusion.
    page_cache_size:
        Per-node S-COMA page cache capacity in bytes (2.4 MB in the base
        system, a factor of 40 larger than the block cache).
    """

    num_nodes: int = 8
    procs_per_node: int = 4
    block_size: int = 64
    page_size: int = 4096
    l1_size: int = 16 * 1024
    l1_assoc: int = 1
    block_cache_size: int = 64 * 1024
    page_cache_size: int = int(2.4 * 1024 * 1024)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if self.procs_per_node <= 0:
            raise ConfigError("procs_per_node must be positive")
        for name in ("block_size", "page_size", "l1_size"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two, got {value}")
        if self.page_size % self.block_size:
            raise ConfigError("page_size must be a multiple of block_size")
        if self.l1_size % self.block_size:
            raise ConfigError("l1_size must be a multiple of block_size")
        if self.l1_assoc <= 0:
            raise ConfigError("l1_assoc must be positive")
        if self.block_cache_size < 0 or self.page_cache_size < 0:
            raise ConfigError("cache sizes must be non-negative")

    # -- derived quantities -------------------------------------------------

    @property
    def num_processors(self) -> int:
        """Total processors in the cluster."""
        return self.num_nodes * self.procs_per_node

    @property
    def blocks_per_page(self) -> int:
        """Number of coherence blocks per page."""
        return self.page_size // self.block_size

    @property
    def l1_blocks(self) -> int:
        """Number of block frames in one processor cache."""
        return self.l1_size // self.block_size

    @property
    def l1_sets(self) -> int:
        """Number of sets in one processor cache."""
        return self.l1_blocks // self.l1_assoc

    @property
    def block_cache_blocks(self) -> int:
        """Number of block frames in one node's block cache."""
        return self.block_cache_size // self.block_size

    @property
    def page_cache_frames(self) -> int:
        """Number of page frames in one node's S-COMA page cache."""
        return self.page_cache_size // self.page_size

    def with_page_cache_fraction(self, fraction: float) -> "MachineConfig":
        """Return a copy with the page cache scaled by ``fraction``.

        Used by the Figure 8 study (R-NUMA-1/2 uses ``fraction=0.5``).
        """
        if fraction < 0:
            raise ConfigError("page cache fraction must be non-negative")
        return replace(self, page_cache_size=int(self.page_cache_size * fraction))


# ---------------------------------------------------------------------------
# Cost model (Table 3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs (Table 3 of the paper).

    Block operations
    ----------------
    ``network_latency`` (80 cycles), ``local_miss`` (104 cycles) and
    ``remote_miss`` (418 cycles round-trip) govern ordinary cache-fill
    traffic.  ``l1_hit`` and the bus/NIC occupancies are not tabulated in
    the paper but follow from the 600 MHz dual-issue processors on a
    100 MHz split-transaction bus it describes.

    Page operations
    ---------------
    ``soft_trap`` (3 000 cycles), ``tlb_shootdown`` (300 cycles) and the
    page allocation/replacement (and R-NUMA relocation) range of
    3 000-11 500 cycles depending on how many blocks must be flushed.

    Migration/replication operations
    --------------------------------
    Page invalidation + data gathering (3 000-11 500 cycles) and page
    copying (8 000-21 800 cycles).  The minimum is paid for an empty page,
    the maximum when every block of the page must be flushed/copied; the
    simulator interpolates linearly on the number of dirty/valid blocks.
    """

    # block operations
    l1_hit: int = 1
    network_latency: int = 80
    local_miss: int = 104
    remote_miss: int = 418
    bus_occupancy: int = 12
    nic_occupancy: int = 20
    invalidation_per_sharer: int = 20

    # page operations
    soft_trap: int = 3000
    tlb_shootdown: int = 300
    page_alloc_min: int = 3000
    page_alloc_max: int = 11500

    # migration/replication operations
    gather_min: int = 3000
    gather_max: int = 11500
    copy_min: int = 8000
    copy_max: int = 21800

    # synchronisation
    barrier_cost: int = 400

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"cost {f.name} must be non-negative")
        if self.page_alloc_max < self.page_alloc_min:
            raise ConfigError("page_alloc_max < page_alloc_min")
        if self.gather_max < self.gather_min:
            raise ConfigError("gather_max < gather_min")
        if self.copy_max < self.copy_min:
            raise ConfigError("copy_max < copy_min")

    # -- derived helpers ----------------------------------------------------

    @property
    def remote_to_local_ratio(self) -> float:
        """Remote-to-local miss latency ratio (≈4 in the base system)."""
        return self.remote_miss / self.local_miss

    def _interp(self, lo: int, hi: int, filled: int, total: int) -> int:
        """Linear interpolation of a per-page cost on the block count."""
        if total <= 0:
            return lo
        filled = max(0, min(filled, total))
        return int(round(lo + (hi - lo) * (filled / total)))

    def page_alloc_cost(self, blocks_flushed: int, blocks_per_page: int) -> int:
        """Cost of a page allocation/replacement or R-NUMA relocation."""
        return self._interp(self.page_alloc_min, self.page_alloc_max,
                            blocks_flushed, blocks_per_page)

    def gather_cost(self, blocks_flushed: int, blocks_per_page: int) -> int:
        """Cost of page invalidation and data gathering (MigRep)."""
        return self._interp(self.gather_min, self.gather_max,
                            blocks_flushed, blocks_per_page)

    def copy_cost(self, blocks_copied: int, blocks_per_page: int) -> int:
        """Cost of copying a page to a new home or a replica."""
        return self._interp(self.copy_min, self.copy_max,
                            blocks_copied, blocks_per_page)

    # -- variants used by the sensitivity studies ---------------------------

    def with_page_op_scale(self, factor: float) -> "CostModel":
        """Return a copy with every *page-operation* cost scaled by ``factor``.

        Block-operation latencies (local/remote miss, network) are left
        untouched.  Used by the reduced experiment configuration: the
        synthetic traces are orders of magnitude shorter than the paper's
        runs while page-operation *counts* shrink far less, so leaving the
        Table 3 page-operation costs unscaled would overstate their share
        of execution time (see EXPERIMENTS.md, "scaling" section).  The
        Figure 6 sensitivity study multiplies whatever base this produces
        by ten, so the fast/slow comparison is unaffected.
        """
        if factor <= 0:
            raise ConfigError("page-op scale factor must be positive")

        def s(v: int) -> int:
            return max(1, int(round(v * factor)))

        return replace(
            self,
            soft_trap=s(self.soft_trap),
            tlb_shootdown=s(self.tlb_shootdown),
            page_alloc_min=s(self.page_alloc_min),
            page_alloc_max=s(self.page_alloc_max),
            gather_min=s(self.gather_min),
            gather_max=s(self.gather_max),
            copy_min=s(self.copy_min),
            copy_max=s(self.copy_max),
        )

    def with_slow_page_ops(self, factor: int = 10) -> "CostModel":
        """Return the Section 6.2 "slow" cost model.

        The paper assumes a ten-fold increase in page-operation overheads:
        50 µs soft traps (30 000 cycles), 5 µs TLB shootdowns
        (3 000 cycles) and an extra 10 µs (6 000 cycles) of page copying.
        """
        extra_copy = 6000
        return replace(
            self,
            soft_trap=self.soft_trap * factor,
            tlb_shootdown=self.tlb_shootdown * factor,
            page_alloc_min=self.page_alloc_min * factor,
            page_alloc_max=self.page_alloc_max * factor,
            gather_min=self.gather_min * factor,
            gather_max=self.gather_max * factor,
            copy_min=self.copy_min + extra_copy,
            copy_max=self.copy_max + extra_copy,
        )

    def with_network_scale(self, factor: float = 4.0) -> "CostModel":
        """Return the Section 6.3 long-latency cost model.

        The network latency is scaled so the remote-to-local access ratio
        grows by ``factor`` (4× in the paper, ratio ≈ 16).  Only the
        network portion of the remote round trip scales; the local part is
        unchanged.
        """
        if factor <= 0:
            raise ConfigError("network scale factor must be positive")
        new_network = int(round(self.network_latency * factor))
        network_part = self.remote_miss - self.local_miss
        new_remote = self.local_miss + int(round(network_part * factor))
        return replace(self, network_latency=new_network, remote_miss=new_remote)


# ---------------------------------------------------------------------------
# Protocol thresholds (Section 5)
# ---------------------------------------------------------------------------


def canonical_policy_args(value: object) -> "Tuple[Tuple[str, Any], ...]":
    """Canonicalize policy kwargs to a sorted tuple of (name, value) pairs.

    Accepts a mapping or any iterable of pairs; the canonical tuple form
    keeps the (frozen, hashable) dataclasses hashable and makes two
    configurations with the same arguments compare/digest equal
    regardless of how the arguments were spelled.  Shared by
    :class:`ThresholdConfig` and :class:`repro.core.factory.SystemSpec`.

    Raises :class:`ConfigError` for non-scalar argument values (they
    must survive hashing, pickling to workers and repr-based digests).
    """
    if isinstance(value, Mapping):
        items = list(value.items())
    else:
        items = [tuple(pair) for pair in value]  # type: ignore[union-attr]
    seen: "Dict[str, Any]" = {}
    for k, v in items:
        key = str(k)
        if key in seen:
            raise ConfigError(f"duplicate policy argument {key!r}")
        if not isinstance(v, (int, float, str, bool, type(None))):
            raise ConfigError(
                f"policy arguments must be scalars, got {v!r}")
        seen[key] = v
    return tuple(sorted(seen.items()))


@dataclass(frozen=True)
class ThresholdConfig:
    """Thresholds and decision-policy selection governing page operations.

    ``migrep_threshold``
        Miss-count threshold for page migration/replication (800 in the
        paper's fast systems, 1 200 in the slow systems).
    ``migrep_reset_interval``
        Periodic reset interval of the MigRep miss counters (32 000 misses).
    ``rnuma_threshold``
        R-NUMA per-page refetch threshold (32 in the fast systems, 64 in
        the slow systems).
    ``hybrid_relocation_delay``
        R-NUMA+MigRep only: number of misses a page must absorb before
        R-NUMA relocation is allowed (32 000 in the paper), giving MigRep
        first claim on the page (Section 6.4).
    ``scale``
        Multiplicative scaling applied to every threshold to adapt them to
        the shorter synthetic traces; ratios are preserved.
    ``migrep_policy`` / ``rnuma_policy``
        Names of the decision policies (looked up in the open
        :data:`repro.registry.POLICIES` registry at machine-build time)
        evaluated by the MigRep home side and the R-NUMA requester side.
        The default, ``"static-threshold"``, is the paper's fixed-counter
        rule driven by the thresholds above.
    ``migrep_policy_args`` / ``rnuma_policy_args``
        Extra keyword arguments for the selected policy's factory (e.g.
        ``{"beta": 1.5}`` for ``"competitive"``).  Stored canonically as
        a sorted tuple of ``(name, value)`` pairs; a mapping passed in is
        converted automatically.
    """

    migrep_threshold: int = 800
    migrep_reset_interval: int = 32000
    rnuma_threshold: int = 32
    hybrid_relocation_delay: int = 32000
    scale: float = 1.0
    migrep_policy: str = "static-threshold"
    rnuma_policy: str = "static-threshold"
    migrep_policy_args: Tuple[Tuple[str, Any], ...] = ()
    rnuma_policy_args: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.migrep_threshold <= 0:
            raise ConfigError("migrep_threshold must be positive")
        if self.migrep_reset_interval <= 0:
            raise ConfigError("migrep_reset_interval must be positive")
        if self.rnuma_threshold <= 0:
            raise ConfigError("rnuma_threshold must be positive")
        if self.hybrid_relocation_delay < 0:
            raise ConfigError("hybrid_relocation_delay must be non-negative")
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        for name in ("migrep_policy", "rnuma_policy"):
            value = getattr(self, name)
            if not isinstance(value, str) or not value.strip():
                raise ConfigError(f"{name} must be a non-empty policy name")
        for name in ("migrep_policy_args", "rnuma_policy_args"):
            object.__setattr__(self, name,
                               canonical_policy_args(getattr(self, name)))

    @property
    def migrep_policy_kwargs(self) -> Dict[str, Any]:
        """The MigRep policy arguments as a plain keyword dictionary."""
        return dict(self.migrep_policy_args)

    @property
    def rnuma_policy_kwargs(self) -> Dict[str, Any]:
        """The R-NUMA policy arguments as a plain keyword dictionary."""
        return dict(self.rnuma_policy_args)

    def _scaled(self, value: int, minimum: int = 1) -> int:
        return max(minimum, int(round(value * self.scale)))

    @property
    def effective_migrep_threshold(self) -> int:
        """Migration/replication threshold after trace scaling."""
        return self._scaled(self.migrep_threshold)

    @property
    def effective_migrep_reset_interval(self) -> int:
        """Counter reset interval after trace scaling."""
        return self._scaled(self.migrep_reset_interval)

    @property
    def effective_rnuma_threshold(self) -> int:
        """R-NUMA relocation threshold after trace scaling.

        A floor (:data:`RNUMA_THRESHOLD_FLOOR`) keeps the threshold
        meaningful when the scale would round it down to one or two
        misses: a relocation must still be justified by repeated
        capacity/conflict refetching of the page.
        """
        if self.scale >= 1.0:
            return self._scaled(self.rnuma_threshold)
        return max(RNUMA_THRESHOLD_FLOOR, self._scaled(self.rnuma_threshold))

    @property
    def effective_hybrid_delay(self) -> int:
        """Per-page miss budget before hybrid relocation, after scaling."""
        return self._scaled(self.hybrid_relocation_delay, minimum=0)

    def with_slow_page_ops(self) -> "ThresholdConfig":
        """Thresholds used with the Section 6.2 slow page operations.

        The paper raises the MigRep threshold to 1 200 and the R-NUMA
        threshold to 64 to avoid page thrashing under slow operations.
        """
        return replace(self, migrep_threshold=1200, rnuma_threshold=64)


# ---------------------------------------------------------------------------
# Top-level simulation configuration
# ---------------------------------------------------------------------------


#: Default threshold scaling for the scaled-down synthetic traces.  The
#: paper's thresholds were tuned for full-size SPLASH-2 runs of hundreds of
#: millions of references; the synthetic traces here are three orders of
#: magnitude shorter, so thresholds are scaled down to keep the relative
#: frequency of page operations comparable.  The R-NUMA threshold has a
#: floor (see :class:`ThresholdConfig.effective_rnuma_threshold`) so that
#: relocation still requires evidence of repeated refetching.
DEFAULT_THRESHOLD_SCALE = 1.0 / 25.0

#: Minimum effective R-NUMA switching threshold regardless of scaling.
RNUMA_THRESHOLD_FLOOR = 5


@dataclass(frozen=True)
class SimulationConfig:
    """Complete configuration of a simulated system.

    Combines the machine geometry, cost model and thresholds, plus a small
    number of simulator knobs that do not come from the paper (random seed,
    whether bus/NIC contention is modelled, initial placement policy).
    """

    machine: MachineConfig = field(default_factory=MachineConfig)
    costs: CostModel = field(default_factory=CostModel)
    thresholds: ThresholdConfig = field(
        default_factory=lambda: ThresholdConfig(scale=DEFAULT_THRESHOLD_SCALE)
    )
    model_contention: bool = True
    seed: int = 0
    #: initial page-placement policy (``repro.kernel.placement``); the paper
    #: uses first-touch for every system it studies.
    placement: str = "first-touch"

    def describe(self) -> Mapping[str, Any]:
        """Return a flat dictionary view, convenient for reports/tests."""
        out: dict[str, Any] = {}
        for section_name, section in (
            ("machine", self.machine),
            ("costs", self.costs),
            ("thresholds", self.thresholds),
        ):
            for f in dataclasses.fields(section):
                out[f"{section_name}.{f.name}"] = getattr(section, f.name)
        out["model_contention"] = self.model_contention
        out["seed"] = self.seed
        out["placement"] = self.placement
        return out

    # -- named variants ------------------------------------------------------

    def with_machine(self, machine: MachineConfig) -> "SimulationConfig":
        return replace(self, machine=machine)

    def with_costs(self, costs: CostModel) -> "SimulationConfig":
        return replace(self, costs=costs)

    def with_thresholds(self, thresholds: ThresholdConfig) -> "SimulationConfig":
        return replace(self, thresholds=thresholds)

    def with_placement(self, placement: str) -> "SimulationConfig":
        return replace(self, placement=placement)

    def with_policies(self, migrep: Optional[str] = None,
                      rnuma: Optional[str] = None, *,
                      migrep_args: Optional[Mapping[str, Any]] = None,
                      rnuma_args: Optional[Mapping[str, Any]] = None
                      ) -> "SimulationConfig":
        """Return a copy selecting named page-operation decision policies.

        Parameters
        ----------
        migrep / rnuma:
            Policy names for the MigRep home side and the R-NUMA
            requester side (see :data:`repro.core.decisions.POLICY_NAMES`);
            ``None`` keeps the current selection.
        migrep_args / rnuma_args:
            Keyword arguments for the selected policy's factory.
            ``None`` keeps the current arguments — unless the role's
            policy *name* is being changed, in which case the old
            family's arguments are cleared (they belong to the previous
            family and would be meaningless or invalid for the new one).

        Examples
        --------
        >>> cfg = SimulationConfig().with_policies("competitive",
        ...                                        migrep_args={"beta": 1.5})
        >>> cfg.thresholds.migrep_policy
        'competitive'
        >>> cfg.thresholds.migrep_policy_kwargs
        {'beta': 1.5}
        >>> cfg.thresholds.rnuma_policy
        'static-threshold'
        >>> cfg.with_policies("hysteresis").thresholds.migrep_policy_kwargs
        {}
        """
        updates: Dict[str, Any] = {}
        if migrep is not None:
            updates["migrep_policy"] = migrep
            if migrep_args is None and migrep != self.thresholds.migrep_policy:
                updates["migrep_policy_args"] = ()
        if rnuma is not None:
            updates["rnuma_policy"] = rnuma
            if rnuma_args is None and rnuma != self.thresholds.rnuma_policy:
                updates["rnuma_policy_args"] = ()
        if migrep_args is not None:
            updates["migrep_policy_args"] = canonical_policy_args(migrep_args)
        if rnuma_args is not None:
            updates["rnuma_policy_args"] = canonical_policy_args(rnuma_args)
        if not updates:
            return self
        return replace(self, thresholds=replace(self.thresholds, **updates))


def reduced_machine() -> MachineConfig:
    """A proportionally reduced machine used by the experiments.

    Simulating the paper's full cache geometry would require traces of
    hundreds of millions of references to exercise the 2.4 MB page cache.
    The experiment harnesses therefore use a machine whose cache hierarchy
    is scaled down by 8× while preserving the ratios that drive the
    paper's results:

    * processor cache : block cache = 1 : 4 (16 KB : 64 KB in the paper),
    * block cache : page cache ≈ 1 : 37.5 (1 : 40 in the paper),
    * 16 blocks per page (64 in the paper), keeping page-grain effects
      (relocation refetch, fragmentation, gather cost scaling) visible.

    The full-size :class:`MachineConfig` remains the library default.
    """
    return MachineConfig(
        num_nodes=8,
        procs_per_node=4,
        block_size=64,
        page_size=1024,
        l1_size=2 * 1024,
        l1_assoc=1,
        block_cache_size=8 * 1024,
        page_cache_size=300 * 1024,
    )


#: Page-operation cost scaling used by the reduced experiment configuration
#: (see :meth:`CostModel.with_page_op_scale`).
REDUCED_PAGE_OP_SCALE = 0.1


def reduced_costs() -> CostModel:
    """Cost model used with the reduced experiment machine.

    Block-operation latencies are the paper's Table 3 values.  Page
    operation costs are scaled by :data:`REDUCED_PAGE_OP_SCALE` and the
    bus/NIC occupancies are reduced because every synthetic trace record
    stands for a run of references (the miss *density* per record is far
    higher than per real reference, so unscaled occupancies would
    overstate queueing).
    """
    scaled = CostModel().with_page_op_scale(REDUCED_PAGE_OP_SCALE)
    return replace(scaled, bus_occupancy=2, nic_occupancy=3)


def base_config(*, seed: int = 0,
                threshold_scale: float = DEFAULT_THRESHOLD_SCALE,
                reduced: bool = True) -> SimulationConfig:
    """The base system of Section 5 (fast page-operation support).

    ``reduced`` selects the proportionally scaled-down machine and cost
    model used by the experiment harnesses (see :func:`reduced_machine`
    and :func:`reduced_costs`); pass ``False`` for the paper's full-size
    geometry and unscaled Table 3 costs.
    """
    return SimulationConfig(
        machine=reduced_machine() if reduced else MachineConfig(),
        costs=reduced_costs() if reduced else CostModel(),
        thresholds=ThresholdConfig(scale=threshold_scale),
        seed=seed,
    )


def slow_page_ops_config(*, seed: int = 0,
                         threshold_scale: float = DEFAULT_THRESHOLD_SCALE,
                         reduced: bool = True) -> SimulationConfig:
    """The Section 6.2 system with ten-fold slower page operations."""
    cfg = base_config(seed=seed, threshold_scale=threshold_scale, reduced=reduced)
    return cfg.with_costs(cfg.costs.with_slow_page_ops()).with_thresholds(
        cfg.thresholds.with_slow_page_ops()
    )


def long_latency_config(*, seed: int = 0, factor: float = 4.0,
                        threshold_scale: float = DEFAULT_THRESHOLD_SCALE,
                        reduced: bool = True) -> SimulationConfig:
    """The Section 6.3 system with a remote-to-local latency ratio of ~16."""
    cfg = base_config(seed=seed, threshold_scale=threshold_scale, reduced=reduced)
    return cfg.with_costs(cfg.costs.with_network_scale(factor))
