"""Per-processor state: private cache, TLB and clock bookkeeping.

Each of the paper's 32 processors (8 nodes × 4 CPUs) issues the references
of its trace stream against a private 16 KB direct-mapped data cache.  The
:class:`Processor` object bundles that cache with a TLB (used for
shootdown accounting) and the identifiers linking it to its node.

The per-access timing itself is tracked centrally in
:class:`repro.stats.timing.TimingStats`; the processor object is
deliberately small because the machine's hot loop touches it constantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import DirectMappedCache
from repro.mem.tlb import TLB


@dataclass(slots=True)
class Processor:
    """One CPU of an SMP node.

    Attributes
    ----------
    proc_id:
        Global processor index in ``[0, num_nodes * procs_per_node)``.
    node_id:
        Node the processor belongs to.
    local_index:
        Index of the processor within its node.
    cache:
        Private direct-mapped data cache.
    tlb:
        Private TLB (cost-accounting model).
    """

    proc_id: int
    node_id: int
    local_index: int
    cache: DirectMappedCache
    tlb: TLB = field(default_factory=TLB)

    @classmethod
    def create(cls, proc_id: int, node_id: int, local_index: int,
               l1_lines: int) -> "Processor":
        """Build a processor with an ``l1_lines``-line direct-mapped cache."""
        return cls(
            proc_id=proc_id,
            node_id=node_id,
            local_index=local_index,
            cache=DirectMappedCache(l1_lines),
        )

    def describe(self) -> str:
        """Short human-readable identifier (for logs and error messages)."""
        return f"P{self.proc_id} (node {self.node_id}.{self.local_index})"
