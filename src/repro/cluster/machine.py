"""The DSM cluster machine and its trace-driven simulation loop.

:class:`Machine` assembles the whole simulated system — nodes, network,
directory, virtual-memory manager, statistics — for one named system
configuration (:class:`repro.core.factory.SystemSpec`), and drives a
workload trace through it.

Timing model (Section 5.1 of DESIGN.md)
---------------------------------------
Each processor owns a clock.  Within a phase the processors' reference
streams are interleaved round-robin; every reference costs its compute
time plus:

* an L1 hit time for processor-cache hits,
* the bus queueing delay plus the protocol-determined service latency for
  misses (local miss, block-cache hit, page-cache hit or remote round
  trip, per Table 3 of the paper),
* any page-operation and mapping-fault cycles the access triggered.

Phases end in barriers that synchronise every processor at the maximum
clock plus a barrier cost; the run's execution time is the final
synchronised clock.  Normalising two runs of the same trace under
different systems against each other reproduces the paper's
"normalized execution time" metric.

The inner loop is deliberately written with plain Python ints and lists
(per the project's HPC-Python guidance: measure, then keep the hot path
allocation-free); the numpy trace arrays are converted to lists once per
phase because scalar indexing of lists is significantly faster than numpy
scalar extraction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.factory import SystemSpec
from repro.interconnect.network import Network
from repro.kernel.faults import FaultLog
from repro.kernel.placement import build_placement
from repro.kernel.vm import VirtualMemoryManager
from repro.mem.address import AddressSpace
from repro.mem.cache import (
    PROBE_MISS,
    PROBE_READ_HIT,
    PROBE_WRITE_HIT_OWNED,
    PROBE_WRITE_HIT_SHARED,
)
from repro.mem.directory import Directory
from repro.cluster.node import Node
from repro.stats.counters import MachineStats
from repro.stats.timing import StallKind, TimingStats


class Machine:
    """A simulated CC-NUMA DSM cluster running one system configuration."""

    def __init__(self, cfg: SimulationConfig, system: SystemSpec) -> None:
        self.cfg = cfg
        self.system = system
        mc = cfg.machine

        self.addr = AddressSpace(page_size=mc.page_size, block_size=mc.block_size)
        placement = (None if cfg.placement == "first-touch"
                     else build_placement(cfg.placement, mc.num_nodes))
        self.vm = VirtualMemoryManager(mc.num_nodes, placement=placement)
        self.directory = Directory(mc.num_nodes)
        self.network = Network(
            num_nodes=mc.num_nodes,
            latency=cfg.costs.network_latency,
            nic_occupancy=cfg.costs.nic_occupancy,
            enabled=cfg.model_contention,
            block_size=mc.block_size,
            page_size=mc.page_size,
        )

        page_cache_frames: Optional[int] = None
        if system.uses_page_cache and not system.infinite_page_cache:
            fraction = system.page_cache_fraction or 1.0
            page_cache_frames = max(1, int(mc.page_cache_frames * fraction))

        block_cache_blocks: Optional[int] = None
        if system.block_cache_scale != 1.0 and not system.infinite_block_cache:
            block_cache_blocks = max(
                1, int(mc.block_cache_blocks * system.block_cache_scale))

        self.nodes: List[Node] = [
            Node.create(
                node_id=i,
                machine_cfg=mc,
                infinite_block_cache=system.infinite_block_cache,
                block_cache_blocks=block_cache_blocks,
                page_cache_frames=page_cache_frames,
                infinite_page_cache=system.infinite_page_cache,
                model_contention=cfg.model_contention,
            )
            for i in range(mc.num_nodes)
        ]

        # flattened views the protocols use
        self.page_tables = [n.page_table for n in self.nodes]
        self.block_caches = [n.block_cache for n in self.nodes]
        self.page_caches = [n.page_cache for n in self.nodes]
        self.l1_by_node = [[p.cache for p in n.processors] for n in self.nodes]
        self.processors = [p for n in self.nodes for p in n.processors]
        self.fault_logs = [FaultLog() for _ in range(mc.num_nodes)]

        self.stats = MachineStats.for_nodes(mc.num_nodes)
        self.timing = TimingStats.for_processors(mc.num_processors)

        # the protocol is constructed last: it captures references to the
        # substrate built above
        self.protocol = system.protocol_factory(self)

    # ------------------------------------------------------------------ properties

    @property
    def num_nodes(self) -> int:
        """Number of SMP nodes."""
        return self.cfg.machine.num_nodes

    @property
    def num_processors(self) -> int:
        """Total processors in the cluster."""
        return self.cfg.machine.num_processors

    def describe(self) -> str:
        """One-line description of the machine and its protocol."""
        mc = self.cfg.machine
        return (f"{self.system.label}: {mc.num_nodes} nodes x "
                f"{mc.procs_per_node} CPUs, {self.protocol.describe()}")

    # ------------------------------------------------------------------ simulation

    def run(self, trace) -> MachineStats:
        """Run ``trace`` to completion and return the machine statistics.

        ``trace`` is a :class:`repro.workloads.trace.Trace` (or anything
        with the same ``num_procs`` / ``phases`` shape).  The trace's
        processor count must not exceed the machine's.
        """
        if trace.num_procs > self.num_processors:
            raise ValueError(
                f"trace uses {trace.num_procs} processors but the machine has "
                f"only {self.num_processors}")

        costs = self.cfg.costs
        protocol = self.protocol
        addr_bpp = self.addr.blocks_per_page
        dir_version = self.directory.version
        node_stats = self.stats.nodes
        procs = self.processors
        num_trace_procs = trace.num_procs

        l1_hit_cost = costs.l1_hit
        bus_occ = costs.bus_occupancy

        # local (fast) copies of per-processor clocks
        clocks = [self.timing.processors[p].clock for p in range(num_trace_procs)]

        for phase in trace.phases:
            blocks_by_proc = [seq.tolist() if hasattr(seq, "tolist") else list(seq)
                              for seq in phase.blocks]
            writes_by_proc = [seq.tolist() if hasattr(seq, "tolist") else list(seq)
                              for seq in phase.writes]
            lengths = [len(seq) for seq in blocks_by_proc]
            if len(lengths) != num_trace_procs:
                raise ValueError("phase stream count does not match trace.num_procs")
            max_len = max(lengths, default=0)
            compute = phase.compute_per_access

            # per-proc stall accumulators for this phase
            acc_compute = [0] * num_trace_procs
            acc_hit = [0] * num_trace_procs
            acc_local = [0] * num_trace_procs
            acc_remote = [0] * num_trace_procs
            acc_upgrade = [0] * num_trace_procs
            acc_pageop = [0] * num_trace_procs
            acc_fault = [0] * num_trace_procs
            acc_contention = [0] * num_trace_procs
            acc_accesses = [0] * num_trace_procs
            acc_l1_hits = [0] * num_trace_procs
            acc_upgrade_count = [0] * num_trace_procs

            for i in range(max_len):
                for p in range(num_trace_procs):
                    if i >= lengths[p]:
                        continue
                    block = blocks_by_proc[p][i]
                    is_write = bool(writes_by_proc[p][i])
                    proc = procs[p]
                    node = proc.node_id
                    cache = proc.cache

                    clock = clocks[p] + compute
                    acc_compute[p] += compute
                    acc_accesses[p] += 1

                    version = dir_version(block)
                    code = cache.probe(block, version, is_write)

                    if code == PROBE_READ_HIT or code == PROBE_WRITE_HIT_OWNED:
                        clock += l1_hit_cost
                        acc_hit[p] += l1_hit_cost
                        acc_l1_hits[p] += 1
                        clocks[p] = clock
                        continue

                    page = block // addr_bpp

                    if code == PROBE_WRITE_HIT_SHARED:
                        # write upgrade: invalidate other sharers
                        bus = self.nodes[node].bus
                        start = bus.acquire(clock, bus_occ)
                        wait = start - clock
                        latency, new_version = protocol.handle_upgrade(
                            node, p, page, block, start)
                        cache.touch_write(block, new_version)
                        acc_contention[p] += wait
                        acc_upgrade[p] += latency
                        acc_upgrade_count[p] += 1
                        clocks[p] = clock + wait + latency
                        continue

                    # L1 miss
                    bus = self.nodes[node].bus
                    start = bus.acquire(clock, bus_occ)
                    wait = start - clock
                    result = protocol.handle_miss(node, p, page, block,
                                                  is_write, start)
                    victim = cache.fill(block, result.version, dirty=is_write)
                    if victim is not None:
                        protocol.note_l1_eviction(node, victim[0], victim[1])

                    acc_contention[p] += wait
                    if result.remote:
                        acc_remote[p] += result.service_cycles
                    else:
                        acc_local[p] += result.service_cycles
                    acc_pageop[p] += result.pageop_cycles
                    acc_fault[p] += result.fault_cycles
                    clocks[p] = (clock + wait + result.service_cycles
                                 + result.pageop_cycles + result.fault_cycles)

            # flush per-phase accumulators into the timing/statistics objects
            for p in range(num_trace_procs):
                pt = self.timing.processors[p]
                pt.advance(StallKind.COMPUTE, acc_compute[p])
                pt.advance(StallKind.L1_HIT, acc_hit[p])
                pt.advance(StallKind.LOCAL_MISS, acc_local[p])
                pt.advance(StallKind.REMOTE_MISS, acc_remote[p])
                pt.advance(StallKind.UPGRADE, acc_upgrade[p])
                pt.advance(StallKind.PAGE_OP, acc_pageop[p])
                pt.advance(StallKind.MAPPING_FAULT, acc_fault[p])
                pt.advance(StallKind.CONTENTION, acc_contention[p])
                ns = node_stats[procs[p].node_id]
                ns.accesses += acc_accesses[p]
                ns.l1_hits += acc_l1_hits[p]

            # barrier at the end of the phase
            post_barrier = self.timing.barrier(costs.barrier_cost)
            clocks = [post_barrier] * num_trace_procs
            self.stats.barrier_count += 1

        # final bookkeeping
        self.stats.execution_time = self.timing.max_clock()
        self.stats.proc_finish_times = [
            self.timing.processors[p].clock for p in range(num_trace_procs)
        ]
        self.stats.network_messages = self.network.total_messages()
        self.stats.network_bytes = self.network.total_bytes()
        self.stats.message_stats = self.network.stats
        self.stats.stall_breakdown = dict(self.timing.aggregate_stalls())
        return self.stats
