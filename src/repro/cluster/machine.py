"""The DSM cluster machine: substrate assembly and run dispatch.

:class:`Machine` assembles the whole simulated system — nodes, network,
directory, virtual-memory manager, statistics — for one named system
configuration (:class:`repro.core.factory.SystemSpec`), and drives a
workload trace through one of the execution engines in
:mod:`repro.engine`:

* ``batched`` (the default) — the two-tier engine: guaranteed L1 hits are
  classified per phase with vectorised numpy passes and resolved in bulk,
  and only the residual references (possible hits, upgrades, misses) are
  interpreted through the protocol machinery;
* ``legacy`` — the original reference interpreter, one Python-level step
  per reference.

Both engines implement the same timing model (see DESIGN.md, "Timing
model") and produce bit-identical statistics and execution times;
normalising two runs of the same trace under different systems against
each other reproduces the paper's "normalized execution time" metric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SimulationConfig
from repro.core.factory import SystemSpec
from repro.engine import run_trace
from repro.interconnect.network import Network
from repro.kernel.faults import FaultLog
from repro.kernel.placement import build_placement
from repro.kernel.vm import VirtualMemoryManager
from repro.mem.address import AddressSpace
from repro.mem.directory import Directory
from repro.cluster.node import Node
from repro.stats.counters import MachineStats
from repro.stats.timing import TimingStats


class Machine:
    """A simulated CC-NUMA DSM cluster running one system configuration."""

    def __init__(self, cfg: SimulationConfig, system: SystemSpec) -> None:
        self.cfg = cfg
        self.system = system
        mc = cfg.machine

        self.addr = AddressSpace(page_size=mc.page_size, block_size=mc.block_size)
        placement = (None if cfg.placement == "first-touch"
                     else build_placement(cfg.placement, mc.num_nodes))
        self.vm = VirtualMemoryManager(mc.num_nodes, placement=placement)
        self.directory = Directory(mc.num_nodes)
        self.network = Network(
            num_nodes=mc.num_nodes,
            latency=cfg.costs.network_latency,
            nic_occupancy=cfg.costs.nic_occupancy,
            enabled=cfg.model_contention,
            block_size=mc.block_size,
            page_size=mc.page_size,
        )

        page_cache_frames: Optional[int] = None
        if system.uses_page_cache and not system.infinite_page_cache:
            fraction = system.page_cache_fraction or 1.0
            page_cache_frames = max(1, int(mc.page_cache_frames * fraction))

        block_cache_blocks: Optional[int] = None
        if system.block_cache_scale != 1.0 and not system.infinite_block_cache:
            block_cache_blocks = max(
                1, int(mc.block_cache_blocks * system.block_cache_scale))

        self.nodes: List[Node] = [
            Node.create(
                node_id=i,
                machine_cfg=mc,
                infinite_block_cache=system.infinite_block_cache,
                block_cache_blocks=block_cache_blocks,
                page_cache_frames=page_cache_frames,
                infinite_page_cache=system.infinite_page_cache,
                model_contention=cfg.model_contention,
            )
            for i in range(mc.num_nodes)
        ]

        # flattened views the protocols use
        self.page_tables = [n.page_table for n in self.nodes]
        self.block_caches = [n.block_cache for n in self.nodes]
        self.page_caches = [n.page_cache for n in self.nodes]
        self.l1_by_node = [[p.cache for p in n.processors] for n in self.nodes]
        self.processors = [p for n in self.nodes for p in n.processors]
        self.fault_logs = [FaultLog() for _ in range(mc.num_nodes)]

        self.stats = MachineStats.for_nodes(mc.num_nodes)
        self.timing = TimingStats.for_processors(mc.num_processors)

        # the protocol is constructed last: it captures references to the
        # substrate built above
        self.protocol = system.protocol_factory(self)

    # ------------------------------------------------------------------ properties

    @property
    def num_nodes(self) -> int:
        """Number of SMP nodes."""
        return self.cfg.machine.num_nodes

    @property
    def num_processors(self) -> int:
        """Total processors in the cluster."""
        return self.cfg.machine.num_processors

    def describe(self) -> str:
        """One-line description of the machine and its protocol."""
        mc = self.cfg.machine
        return (f"{self.system.label}: {mc.num_nodes} nodes x "
                f"{mc.procs_per_node} CPUs, {self.protocol.describe()}")

    # ------------------------------------------------------------------ simulation

    def run(self, trace, engine: Optional[str] = None) -> MachineStats:
        """Run ``trace`` to completion and return the machine statistics.

        ``trace`` is a :class:`repro.workloads.trace.Trace` or anything
        honouring the streaming contract: ``num_procs``, a ``name`` and
        a ``phases`` sequence (``len`` + iteration) yielding
        :class:`~repro.workloads.trace.PhaseTrace` objects.  Every
        engine walks ``phases`` exactly once per run, so a lazily
        served sequence — e.g. a file-backed
        :class:`~repro.workloads.tracefile.StreamingTrace` — runs out
        of core without the machine ever holding the full trace.  The
        trace's processor count must not exceed the machine's.

        ``engine`` selects the execution engine (one of
        :data:`repro.engine.ENGINE_NAMES`); the default is the batched
        engine, overridable globally with the ``REPRO_ENGINE`` environment
        variable.  All engines produce bit-identical statistics.
        """
        if trace.num_procs > self.num_processors:
            raise ValueError(
                f"trace uses {trace.num_procs} processors but the machine has "
                f"only {self.num_processors}")
        return run_trace(self, trace, engine)
