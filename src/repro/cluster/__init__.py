"""The simulated DSM cluster: processors, SMP nodes and the machine driver.

* :mod:`repro.cluster.processor` — per-processor state (cache, TLB, clock).
* :mod:`repro.cluster.node` — an SMP node: four processors, a memory bus
  and the cluster device structures (block cache, page cache, page table).
* :mod:`repro.cluster.machine` — the whole cluster plus the trace-driven
  simulation loop.
"""

from repro.cluster.processor import Processor
from repro.cluster.node import Node
from repro.cluster.machine import Machine

__all__ = ["Processor", "Node", "Machine"]
