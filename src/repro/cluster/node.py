"""An SMP node: processors, memory bus and cluster-device structures.

Each node of the simulated cluster (Figure 1 of the paper) is a 4-way
symmetric multiprocessor.  The :class:`Node` object groups the per-node
substrate the protocols operate on:

* the node's processors (each with a private cache and TLB),
* the split-transaction memory bus every cache miss crosses,
* the cluster device's block cache (CC-NUMA remote cache),
* the S-COMA page cache (present only in R-NUMA systems), and
* the node's page table.

The node performs no simulation itself — the machine's loop and the
protocol objects drive it — but it provides convenient construction and
introspection helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.processor import Processor
from repro.config import MachineConfig
from repro.interconnect.bus import SplitTransactionBus
from repro.mem.block_cache import BlockCache
from repro.mem.page_cache import PageCache
from repro.mem.page_table import PageTable


@dataclass
class Node:
    """One SMP node of the DSM cluster."""

    node_id: int
    processors: List[Processor]
    bus: SplitTransactionBus
    block_cache: BlockCache
    page_table: PageTable
    page_cache: Optional[PageCache] = None

    @classmethod
    def create(cls, node_id: int, machine_cfg: MachineConfig, *,
               infinite_block_cache: bool = False,
               block_cache_blocks: Optional[int] = None,
               page_cache_frames: Optional[int] = None,
               infinite_page_cache: bool = False,
               model_contention: bool = True) -> "Node":
        """Construct a node and its per-processor structures.

        Parameters
        ----------
        infinite_block_cache:
            Build the perfect-CC-NUMA block cache (unbounded).
        block_cache_blocks:
            Override the block-cache capacity (in blocks); ``None`` uses
            the machine configuration's size.  Used by the DRAM
            block-cache ablation, ignored when ``infinite_block_cache``.
        page_cache_frames:
            Number of S-COMA page frames, or ``None`` for a system without
            a page cache (CC-NUMA / MigRep).
        infinite_page_cache:
            Build an unbounded page cache (R-NUMA-Inf); overrides
            ``page_cache_frames``.
        """
        procs = [
            Processor.create(
                proc_id=node_id * machine_cfg.procs_per_node + i,
                node_id=node_id,
                local_index=i,
                l1_lines=machine_cfg.l1_blocks,
            )
            for i in range(machine_cfg.procs_per_node)
        ]
        if infinite_block_cache:
            capacity = None
        elif block_cache_blocks is not None:
            if block_cache_blocks <= 0:
                raise ValueError("block_cache_blocks must be positive")
            capacity = block_cache_blocks
        else:
            capacity = machine_cfg.block_cache_blocks
        block_cache = BlockCache(capacity)
        page_cache: Optional[PageCache] = None
        if infinite_page_cache:
            page_cache = PageCache(None, machine_cfg.blocks_per_page)
        elif page_cache_frames is not None:
            page_cache = PageCache(max(1, page_cache_frames),
                                   machine_cfg.blocks_per_page)
        return cls(
            node_id=node_id,
            processors=procs,
            bus=SplitTransactionBus(node=node_id, enabled=model_contention),
            block_cache=block_cache,
            page_table=PageTable(node_id),
            page_cache=page_cache,
        )

    # -- introspection -------------------------------------------------------------

    @property
    def num_processors(self) -> int:
        """Number of processors on this node."""
        return len(self.processors)

    def l1_caches(self) -> List[object]:
        """The processors' private caches (used by the page-op engines)."""
        return [p.cache for p in self.processors]

    def total_l1_occupancy(self) -> int:
        """Total valid lines across the node's processor caches."""
        return sum(p.cache.occupancy() for p in self.processors)

    def describe(self) -> str:
        """One-line summary of the node's configuration."""
        bc = "inf" if self.block_cache.is_infinite else str(self.block_cache.capacity_blocks)
        if self.page_cache is None:
            pc = "none"
        elif self.page_cache.is_infinite:
            pc = "inf"
        else:
            pc = str(self.page_cache.capacity_pages)
        return (f"node {self.node_id}: {self.num_processors} CPUs, "
                f"block cache {bc} blocks, page cache {pc} frames")
