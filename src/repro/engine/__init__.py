"""Simulation execution engines.

The machine/trace substrate defines *what* is simulated; this subsystem
defines *how* the reference stream is executed:

``legacy``
    The reference interpreter — one Python-level step per reference
    (:mod:`repro.engine.legacy`).  It is the semantic ground truth.
``batched``
    The two-tier engine (:mod:`repro.engine.batched`): a vectorised numpy
    fast path resolves guaranteed L1 hits in bulk, and only the residual
    stream (possible hits, upgrades, misses) is interpreted, through the
    unchanged protocol machinery.  Statistics and execution times are
    bit-identical to the interpreter; the default engine.
``kernel``
    The compiled residual kernel (:mod:`repro.engine.kernel`): the
    batched engine's residual walk transcribed to flat arrays and run by
    a numba- or C-compiled backend, bailing to Python only for page
    operations and mapping faults.  Systems the kernel cannot express
    (adaptive policies, user protocols, infinite caches) transparently
    fall back to ``batched`` for the run, recording the reason in
    ``engine_profile``.  Results are bit-identical to both other
    engines.

Select an engine per run (``machine.run(trace, engine="legacy")``) or
globally through the ``REPRO_ENGINE`` environment variable.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.engine.batched import run_batched
from repro.engine.kernel import run_kernel
from repro.engine.legacy import run_legacy

#: Engines selectable by name.
ENGINE_NAMES = ("batched", "kernel", "legacy")

#: Environment variable overriding the default engine.
ENGINE_ENV_VAR = "REPRO_ENGINE"

_RUNNERS = {
    "batched": run_batched,
    "kernel": run_kernel,
    "legacy": run_legacy,
}


def default_engine() -> str:
    """The engine used when none is requested explicitly."""
    name = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
    return name if name in _RUNNERS else "batched"


def resolve_engine(engine: Optional[str] = None):
    """Map an engine name (or None for the default) to its run function."""
    name = (engine or default_engine()).strip().lower()
    runner = _RUNNERS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown engine {engine!r}; valid engines: {', '.join(ENGINE_NAMES)}")
    return runner


def run_trace(machine, trace, engine: Optional[str] = None):
    """Run ``trace`` on ``machine`` with the selected engine."""
    return resolve_engine(engine)(machine, trace)


__all__ = [
    "ENGINE_NAMES",
    "ENGINE_ENV_VAR",
    "default_engine",
    "resolve_engine",
    "run_trace",
    "run_batched",
    "run_kernel",
    "run_legacy",
]
