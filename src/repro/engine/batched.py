"""Two-tier batched execution engine.

Tier 1 (the **fast path**) never executes guaranteed L1 read hits
individually: :mod:`repro.engine.classify` proves, per phase and with
numpy array passes, which references must hit, and the engine resolves
them in bulk — their cycle cost is closed-form (``compute + l1_hit`` per
reference), their only side effect a hit-counter credit.

Tier 2 (the **slow path**) walks the *residual* references — possible
hits, upgrades and misses — in exactly the interpreter's round-robin
order and feeds them through the unmodified :class:`~repro.core.protocol.
DSMProtocol` machinery (directory, network, page operations).  The
probe/fill/bus micro-steps that the interpreter performs through method
calls are inlined here on the substrate's flat state arrays — the L1 line
lists, the directory's sharer/owner/version columns, the page tables'
mode-code bytearrays and the block caches' frame arrays — and when a
protocol uses the *base* implementations of ``handle_miss`` /
``_local_fill`` / ``note_l1_eviction`` (checked by ``type``, so every
subclass override still goes through its method) their bodies are inlined
as well.  For the plain CC-NUMA service path (``ccnuma``/``perfect`` with
no overrides) the residual lane goes further and inlines the whole
block-cache fetch / remote fetch / NIC contention sequence, so a
miss-dense residual walk performs no Python method dispatch at all; the
semantics are unchanged either way.

Soundness of the classification is argued in :mod:`repro.engine.classify`.
The one runtime hazard is page-operation *shootdowns* (migration,
replication, relocation and collapse flush L1 lines from outside the
reference stream); the engine arms the caches' ``watch`` hooks (and the
mirror-image ``fill_watch`` hooks, which catch out-of-band L1 *fills* by
exotic protocol code) and, when one fires during a protocol call, demotes
every not-yet-consumed fast reference that is ordered after the current
one to the probe class.  Demotion operates on the
:class:`~repro.engine.classify.ResidualSchedule`'s flat per-processor
slot arrays: a previously *promoted* residual reference is re-demoted
with an O(1) mask flip (it never left the walk order), while
statically-fast references join per-processor demoted queues that the
walk merges by interleave position — no global re-sort.  Demotions are
exact: a demoted reference takes the ordinary probe path, and fast
references ordered *before* the shootdown were unaffected by it (a fast
reference performs no state mutation that later references could
observe).

The mirror image of demotion is dynamic **promotion**: every resolved
residual reference to block ``B`` (miss fill, probe hit, upgrade) leaves
the processor's L1 line holding a fresh copy of ``B``, so the pending
references to ``B`` that follow it — the tail of a post-fill run, or a
demoted run being re-validated after a shootdown — are guaranteed hits
up to the first hazard.  The engine promotes them into the closed-form
fast class with O(1) mask flips, bounded exactly by the schedule's
per-set pressure proofs and last-write positions (see
:mod:`repro.engine.classify`, "Dynamic promotion").  Runs of writes to
an owned-dirty line promote too (the interpreter's ``WRITE_HIT_OWNED``
is a plain hit with no directory action).  By default the lane is
**adaptive**: each phase enables it iff the static classifier's residual
density is below :data:`PROMOTION_DENSITY_THRESHOLD` — low density means
long provable runs whose tails the scan harvests, high (miss-dense)
density means the scan is pure overhead.  ``REPRO_PROMOTION`` remains
the hard override (``0`` always off, ``1`` always on); the results are
bit-identical in every mode.

The engine reproduces the reference interpreter bit for bit — every
counter, stall category, clock and message statistic; the equivalence
regression suite (``tests/test_engine_equivalence.py``) asserts this for
every buildable system.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.protocol import (
    DSMProtocol,
    _DEPARTED_EVICTED,
    _DEPARTED_INVALIDATED,
)
from repro.engine._guard import engine_run_guard
from repro.engine.classify import (
    CLS_FAST, CLS_PROBE, NO_INDEX, classify_phase, static_residual_density,
)
from repro.interconnect.message import MessageType
from repro.mem.page_table import LOCAL_HOME_CODE, MODES_BY_CODE
from repro.stats.counters import MachineStats
from repro.stats.timing import StallKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine

#: Environment variable overriding the promotion lane: ``0``/``off``/
#: ``no``/``false`` disables it for every phase, ``1``/``on``/``yes``/
#: ``true`` enables it for every phase, and unset (or ``adaptive``)
#: lets the engine decide per phase from the classifier's residual
#: density.  Promotion is a pure optimisation — results are
#: bit-identical in every mode — so the override exists for
#: benchmarking and for bisecting the engine.
PROMOTION_ENV_VAR = "REPRO_PROMOTION"

#: Adaptive mode enables the promotion lane for a phase iff the static
#: classifier leaves less than this fraction of its references residual.
#: Low density means long statically-proven runs — the structure whose
#: tails the promotion scan harvests; high (miss-dense) density means
#: few promotable tails, so the per-residual scan is pure overhead.
PROMOTION_DENSITY_THRESHOLD = 0.2


def promotion_mode() -> str:
    """The promotion lane mode: ``"on"``, ``"off"`` or ``"adaptive"``."""
    raw = os.environ.get(PROMOTION_ENV_VAR, "").strip().lower()
    if raw in ("0", "off", "no", "false"):
        return "off"
    if raw in ("1", "on", "yes", "true"):
        return "on"
    return "adaptive"


def run_batched(machine: "Machine", trace) -> MachineStats:
    """Run ``trace`` on ``machine`` with the two-tier batched engine."""
    if any(not hasattr(p.cache, "line_state")
           for p in machine.processors[:trace.num_procs]):
        # the classifier's occupancy argument needs direct-mapped caches;
        # exotic processor caches fall back to the reference interpreter
        from repro.engine.legacy import run_legacy
        return run_legacy(machine, trace)
    costs = machine.cfg.costs
    protocol = machine.protocol
    addr_bpp = machine.addr.blocks_per_page
    directory = machine.directory
    dir_sharers = directory._sharers
    dir_owner = directory._owner
    dir_versions = directory._version
    dir_tracked = directory._tracked
    dir_reserve = directory.reserve
    version_of = directory.version
    node_stats = machine.stats.nodes
    procs = machine.processors
    num_procs = trace.num_procs

    l1_hit_cost = costs.l1_hit
    bus_occ = costs.bus_occupancy
    bus_enabled = machine.cfg.model_contention

    # Engine-side dispatch of the base handle_miss body (mapping fast path
    # + local/remote split).  Only when the protocol has not overridden the
    # corresponding base implementation; bound methods keep polymorphism.
    ptype = type(protocol)
    inline_dispatch = ptype.handle_miss is DSMProtocol.handle_miss
    inline_directory = (
        ptype._directory_read is DSMProtocol._directory_read
        and ptype._directory_write is DSMProtocol._directory_write)
    inline_local = (inline_dispatch and inline_directory
                    and ptype._local_fill is DSMProtocol._local_fill)
    inline_evict = ptype.note_l1_eviction is DSMProtocol.note_l1_eviction
    # The stock write-upgrade service (directory write + control-message
    # round trip) is inlined below; its round-trip contention is exactly
    # the four-point NIC sequence of the remote lane.
    inline_upgrade = (inline_directory
                      and ptype.handle_upgrade is DSMProtocol.handle_upgrade)
    # The plain CC-NUMA remote-page service (block-cache lookup -> remote
    # fetch -> directory update -> fill) is inlined wholesale below; every
    # helper on that path must be the stock implementation, otherwise the
    # subclass's methods are used as usual.
    inline_bc_remote = (
        inline_dispatch
        and inline_directory
        and isinstance(protocol, CCNUMAProtocol)
        and ptype._service_remote_page is CCNUMAProtocol._service_remote_page
        and ptype._block_cache_fetch is CCNUMAProtocol._block_cache_fetch
        and ptype._remote_fetch is DSMProtocol._remote_fetch
        and ptype._remote_fill is DSMProtocol._remote_fill)
    handle_miss = protocol.handle_miss
    handle_upgrade = protocol.handle_upgrade
    note_l1_eviction = protocol.note_l1_eviction
    local_fill = protocol._local_fill
    service_remote = protocol._service_remote_page
    departed = protocol._departed
    local_miss_cost = costs.local_miss
    remote_miss_cost = costs.remote_miss
    inval_cost = costs.invalidation_per_sharer

    vm_home = machine.vm._home
    vm_reserve = machine.vm.reserve
    pt_modes = [pt._modes for pt in machine.page_tables]
    bc_caps = [bc.capacity_blocks for bc in machine.block_caches]
    bc_blocks = [bc._blocks for bc in machine.block_caches]
    bc_versions = [bc._versions for bc in machine.block_caches]
    bc_dirty = [bc._dirty for bc in machine.block_caches]
    bc_store = [bc._store for bc in machine.block_caches]
    bc_stats_of = [bc.stats for bc in machine.block_caches]
    page_caches = machine.page_caches
    pc_res_of = [pc._resident if pc is not None else None for pc in page_caches]

    # network internals for the inlined remote-fetch lane
    net = machine.network
    net_stats = net.stats
    net_enabled = net.enabled
    net_latency = net.latency
    nic_occ = net.nic_occupancy
    nics = net._nics
    msg_counts = net_stats._counts
    msg_sizes = net_stats._sizes
    _READ_I = MessageType.READ_REQUEST.index
    _WRITE_I = MessageType.WRITE_REQUEST.index
    _DATA_I = MessageType.DATA_REPLY.index
    _WB_I = MessageType.WRITEBACK.index
    _INV_I = MessageType.INVALIDATION.index
    _ACK_I = MessageType.INVALIDATION_ACK.index
    sz_read_pair = msg_sizes[_READ_I] + msg_sizes[_DATA_I]
    sz_write_pair = msg_sizes[_WRITE_I] + msg_sizes[_DATA_I]
    sz_wb = msg_sizes[_WB_I]
    sz_inv_pair = msg_sizes[_INV_I] + msg_sizes[_ACK_I]

    caches = [procs[p].cache for p in range(num_procs)]
    node_of = [procs[p].node_id for p in range(num_procs)]
    line_blocks = []
    line_versions = []
    line_dirty = []
    lines_of = []
    for c in caches:
        blocks_l, versions_l, dirty_l = c.line_state()
        line_blocks.append(blocks_l)
        line_versions.append(versions_l)
        line_dirty.append(dirty_l)
        lines_of.append(c.num_lines)

    # local (flushed-per-phase) bus state, indexed by node id
    buses = [n.bus for n in machine.nodes]
    num_nodes = len(buses)
    bus_free = [b.next_free for b in buses]
    bus_txn = [0] * num_nodes
    bus_wait = [0] * num_nodes

    # arm the shootdown watch: a page operation invalidating an L1 line
    # records the affected (processor, cache set) in `events`, which
    # demotes the pending fast refs of exactly that set — the classifier's
    # occupancy proof is per set, so other sets' proofs survive the
    # shootdown.  A whole-cache drop (clear) records True.  The fill
    # watch is the mirror hook: an out-of-band L1 *fill* by protocol code
    # (no in-tree protocol performs one, but user protocols may) evicts
    # whatever the classifier assumed resident in that set, so it demotes
    # exactly like a shootdown.
    events: dict = {}

    def _mk_watch(p: int, nl: int):
        def _watch(block: int = -1) -> None:
            flushed = events.get(p)
            if flushed is True:
                return
            if block < 0:
                events[p] = True
            elif flushed is None:
                events[p] = {block % nl}
            else:
                flushed.add(block % nl)
        return _watch

    clocks = [machine.timing.processors[p].clock for p in range(num_procs)]

    # dynamic promotion lane switch + per-lane profile accumulators
    promo_mode = promotion_mode()
    promo_enabled = promo_mode == "on"   # refined per phase when adaptive
    phase_promotions: list = []
    prof_total = 0
    prof_residual = 0
    prof_promoted = 0
    prof_demoted = 0
    run_t0 = perf_counter()

    # The guard pauses the cyclic GC for the duration of the run (the
    # engine allocates large bursts of small schedule tuples that survive
    # exactly one phase — the worst case for generational collection;
    # nothing the engine allocates forms cycles, so the pause only defers
    # collection) and arms the shootdown watch hooks, restoring both on
    # exit even when a phase raises.
    with engine_run_guard(caches,
                          [_mk_watch(p, lines_of[p]) for p in range(num_procs)]):
        page_tables = machine.page_tables
        for phase in trace.phases:
            blocks_np = phase.blocks    # normalized int64 arrays (PhaseTrace)
            writes_np = phase.writes    # normalized bool arrays (PhaseTrace)
            if len(blocks_np) != num_procs:
                raise ValueError("phase stream count does not match trace.num_procs")
            lengths = [len(seq) for seq in blocks_np]
            compute = phase.compute_per_access
            fast_unit = compute + l1_hit_cost

            # Pre-reserve the directory and page-table arrays to cover this
            # phase's largest block/page id: within the loop, every stream-
            # derived index is then in range and needs no growth check.
            # (reserve() is a no-op when already large enough, and growth
            # is in place, so the aliases above stay valid.)
            max_block = -1
            for arr in blocks_np:
                if len(arr):
                    m = int(arr.max())
                    if m > max_block:
                        max_block = m
            if max_block >= 0:
                dir_reserve(max_block + 1)
                max_page = max_block // addr_bpp
                vm_reserve(max_page + 1)
                for pt_obj in page_tables:
                    pt_obj.reserve(max_page + 1)

            if promo_mode == "adaptive":
                # per-phase decision: harvestable run structure shows up
                # as low static residual density (the codes are shared
                # with the classify_phase call below, so deciding is
                # nearly free)
                density = static_residual_density(blocks_np, writes_np,
                                                  caches, phase=phase)
                promo_enabled = density < PROMOTION_DENSITY_THRESHOLD
                phase_promotions.append(
                    {"promotion": promo_enabled,
                     "residual_density": round(density, 4)})
            else:
                phase_promotions.append({"promotion": promo_enabled})

            cls, sched = classify_phase(blocks_np, writes_np, caches,
                                        version_of,
                                        build_promotion=promo_enabled,
                                        phase=phase)
            entries = sched.entries
            keys = sched.keys
            n_sched = len(entries)
            status = sched.status
            s_idx = sched.idx
            s_wrt = sched.wrt
            s_pw = sched.pw
            s_prevc = sched.prev_conflict
            s_next = sched.next_same_block
            slot_of = sched.slot_of
            pw_full = sched.pw_full
            prof_total += sum(lengths)

            ptr = [0] * num_procs            # next own index not yet accounted
            next_slot = [0] * num_procs      # next schedule slot per proc
            fast_total = [0] * num_procs     # fast references consumed
            hits_rt = [0] * num_procs        # runtime read/owned probe hits
            upg_rt = [0] * num_procs         # runtime shared-write probe hits
            miss_rt = [0] * num_procs
            inval_rt = [0] * num_procs
            evict_rt = [0] * num_procs

            acc_local = [0] * num_procs
            acc_remote = [0] * num_procs
            acc_upgrade = [0] * num_procs
            acc_pageop = [0] * num_procs
            acc_fault = [0] * num_procs
            acc_contention = [0] * num_procs

            # demoted statically-fast references: per-proc parallel queues
            # (own index, block, last-write position, promoted?), merged
            # into the walk by interleave key via `next_dem`
            q_idx: list = [[] for _ in range(num_procs)]
            q_blk: list = [[] for _ in range(num_procs)]
            q_pw: list = [[] for _ in range(num_procs)]
            q_skip: list = [[] for _ in range(num_procs)]
            q_cur = [0] * num_procs
            q_has = [False] * num_procs   # unconsumed queue entries exist
            # heap of (interleave key, proc) queue heads, invalidated
            # lazily: an entry is live only while it matches the proc's
            # current head, so stale keys pushed before a merge or an
            # earlier consumption simply pop through
            dem_heap: list = []
            k = 0

            def demote_pending(i: int, p: int) -> None:
                """Demote pending fast refs after a page-op L1 shootdown.

                Called only when a ``watch``/``fill_watch`` hook fired
                during a protocol call (rare), so the closure-call cost is
                off the hot path.  Affected processors' fast references
                ordered after (i, p) become probes again: previously
                *promoted* schedule slots are re-demoted with an O(1)
                status-mask flip (they never left the walk order), while
                statically-fast references join the per-proc demoted
                queues; earlier queue promotions ordered after the
                shootdown are likewise un-done, and the promotion scan
                pointers restart (their proofs assumed the old line
                state).
                """
                nonlocal prof_demoted
                for p2, flushed in events.items():
                    if p2 >= num_procs:
                        continue
                    bound = i + 1 if p2 <= p else i
                    if bound < ptr[p2]:
                        bound = ptr[p2]
                    seg = cls[p2][bound:]
                    mask = seg == CLS_FAST
                    if flushed is not True:
                        # line-precise: only the flushed sets lose their
                        # occupancy proof
                        seg_lines = (blocks_np[p2][bound:] % lines_of[p2])
                        mask &= np.isin(seg_lines,
                                        np.fromiter(flushed, dtype=np.int64))
                    pend = np.flatnonzero(mask)
                    if len(pend):
                        seg[pend] = CLS_PROBE
                        prof_demoted += len(pend)
                        own = pend.astype(np.int64) + bound
                        slots = slot_of[p2][own]
                        in_sched = slots >= 0
                        st = status[p2]
                        for s2 in slots[in_sched].tolist():
                            st[s2] = 0       # re-demotion: O(1) mask flip
                        fresh = own[~in_sched]
                        if len(fresh):
                            idxs = fresh.tolist()
                            blks = blocks_np[p2][fresh].tolist()
                            pws = pw_full[p2][fresh].tolist()
                            c = q_cur[p2]
                            qi = q_idx[p2]
                            if c < len(qi):
                                # merge with the unconsumed queue tail
                                merged = sorted(
                                    list(zip(qi[c:], q_blk[p2][c:],
                                             q_pw[p2][c:], q_skip[p2][c:]))
                                    + list(zip(idxs, blks, pws,
                                               [0] * len(idxs))))
                                q_idx[p2] = [e[0] for e in merged]
                                q_blk[p2] = [e[1] for e in merged]
                                q_pw[p2] = [e[2] for e in merged]
                                q_skip[p2] = [e[3] for e in merged]
                            else:
                                q_idx[p2] = idxs
                                q_blk[p2] = blks
                                q_pw[p2] = pws
                                q_skip[p2] = [0] * len(idxs)
                            q_cur[p2] = 0
                    # the shootdown invalidates promotions ordered after it
                    qs = q_skip[p2]
                    qi = q_idx[p2]
                    for c2 in range(q_cur[p2], len(qi)):
                        if qi[c2] >= bound:
                            qs[c2] = 0
                    if q_cur[p2] < len(qi):
                        q_has[p2] = True
                        heappush(dem_heap,
                                 (qi[q_cur[p2]] * num_procs + p2, p2))
                events.clear()

            def _promote(p: int, slot: int, i: int, g: int, block: int,
                         dirty: bool) -> None:
                """Promote pending same-block refs after a resolved ref.

                The line of processor ``p`` holding ``block`` is fresh at
                interleave position ``g`` (``dirty`` gives its runtime
                dirty bit).  Pending schedule slots on the block's
                ``next_same_block`` chain promote while their pressure
                proof stays behind ``i`` and their last write stays
                behind the write watermark (own promoted owned-writes
                advance it); the demoted queue's contiguous same-block
                head promotes under the same freshness rule, bounded by
                the next schedule entry.  Each promotion is one status
                byte flip.
                """
                nonlocal prof_promoted
                wm = g
                sidx = s_idx[p]
                if slot >= 0:
                    nsb = s_next[p]
                    t = nsb[slot]
                    if t >= 0:
                        st = status[p]
                        spw = s_pw[p]
                        sprevc = s_prevc[p]
                        swrt = s_wrt[p]
                        cls_p = cls[p]
                        while t >= 0:
                            if st[t]:
                                t = nsb[t]
                                continue
                            if sprevc[t] >= i or spw[t] > wm:
                                break    # eviction pressure / foreign write
                            if swrt[t]:
                                if not dirty:
                                    break    # shared write: upgrade path
                                wm = sidx[t] * num_procs + p
                            st[t] = 1
                            cls_p[sidx[t]] = CLS_FAST
                            prof_promoted += 1
                            t = nsb[t]
                c = q_cur[p]
                qi = q_idx[p]
                n_q = len(qi)
                if c < n_q:
                    ns = next_slot[p]
                    i_next = sidx[ns] if ns < len(sidx) else NO_INDEX
                    qb = q_blk[p]
                    qp = q_pw[p]
                    qs = q_skip[p]
                    while c < n_q:
                        if qs[c]:
                            c += 1
                            continue
                        j = qi[c]
                        if j <= i:
                            c += 1
                            continue
                        if j >= i_next or qb[c] != block or qp[c] > wm:
                            break
                        qs[c] = 1
                        prof_promoted += 1
                        c += 1

            while True:
                nk = -1
                if dem_heap:
                    # validate the heap head (lazily invalidated)
                    while True:
                        nk0, pq = dem_heap[0]
                        c = q_cur[pq]
                        qi = q_idx[pq]
                        if c < len(qi) and qi[c] * num_procs + pq == nk0:
                            nk = nk0
                            break
                        heappop(dem_heap)
                        if not dem_heap:
                            break
                if nk >= 0 and (k >= n_sched or nk < keys[k]):
                    # earliest pending reference is a demoted one
                    heappop(dem_heap)
                    qs = q_skip[pq]
                    if qs[c]:
                        # promoted back: bulk-consume the contiguous
                        # promoted run while it stays globally earliest
                        # (no schedule entry or other queue head — and
                        # hence no shootdown — can intervene before it)
                        stop = keys[k] if k < n_sched else NO_INDEX
                        if dem_heap and dem_heap[0][0] < stop:
                            stop = dem_heap[0][0]
                        c += 1
                        n_q2 = len(qi)
                        while (c < n_q2 and qs[c]
                               and qi[c] * num_procs + pq < stop):
                            c += 1
                        q_cur[pq] = c
                        if c < n_q2:
                            heappush(dem_heap,
                                     (qi[c] * num_procs + pq, pq))
                        else:
                            q_has[pq] = False
                        continue
                    q_cur[pq] = c + 1
                    if c + 1 < len(qi):
                        heappush(dem_heap,
                                 (qi[c + 1] * num_procs + pq, pq))
                    else:
                        q_has[pq] = False
                    p = pq
                    i = qi[c]
                    block = q_blk[pq][c]
                    probe = True
                    is_write = False
                    slot = -1
                    chain = False
                elif k < n_sched:
                    i, p, probe, block, is_write, slot, chain = entries[k]
                    k += 1
                    next_slot[p] = slot + 1
                    if status[p][slot]:
                        continue     # promoted: bulk-consumed via ptr
                else:
                    break
                prof_residual += 1

                # consume the guaranteed hits since this proc's last residual
                n_fast = i - ptr[p]
                base = clocks[p]
                if n_fast:
                    base += n_fast * fast_unit
                    fast_total[p] += n_fast
                ptr[p] = i + 1
                clock = base + compute
                node = node_of[p]
                cb = line_blocks[p]
                idx = block % lines_of[p]

                if probe and cb[idx] == block:
                    # inlined DirectMappedCache.probe (block is in range:
                    # the phase preamble reserved past the streams' maxima)
                    version = dir_versions[block]
                    cv = line_versions[p]
                    if cv[idx] >= version:
                        if not is_write:
                            hits_rt[p] += 1
                            clocks[p] = clock + l1_hit_cost
                            if promo_enabled and (
                                    chain or (q_has[p]
                                              and q_blk[p][q_cur[p]]
                                              == block)):
                                _promote(p, slot, i, i * num_procs + p,
                                         block, line_dirty[p][idx])
                            continue
                        cd = line_dirty[p]
                        if cd[idx]:
                            hits_rt[p] += 1
                            clocks[p] = clock + l1_hit_cost
                            if promo_enabled and (
                                    chain or (q_has[p]
                                              and q_blk[p][q_cur[p]]
                                              == block)):
                                _promote(p, slot, i, i * num_procs + p,
                                         block, True)
                            continue
                        # write upgrade: invalidate other sharers
                        upg_rt[p] += 1
                        page = block // addr_bpp
                        if bus_enabled:
                            free = bus_free[node]
                            start = clock if clock >= free else free
                            bus_wait[node] += start - clock
                            bus_free[node] = start + bus_occ
                        else:
                            start = clock
                        bus_txn[node] += 1
                        wait = start - clock
                        if inline_upgrade:
                            # inlined base handle_upgrade: directory write
                            # plus a control round trip when the home is
                            # remote (contention identical to the remote
                            # lane's four NIC serialisation points)
                            node_stats[node].upgrades += 1
                            home = vm_home[page]
                            # inlined _directory_write
                            dir_tracked[block] = 1
                            bit = 1 << node
                            others = dir_sharers[block] & ~bit
                            o = dir_owner[block]
                            if o >= 0 and o != node:
                                directory.writebacks += 1
                            dir_sharers[block] = bit
                            dir_owner[block] = node
                            new_version = dir_versions[block] + 1
                            dir_versions[block] = new_version
                            extra = 0
                            if others:
                                invals = others.bit_count()
                                directory.invalidations_sent += invals
                                extra = invals * inval_cost
                                msg_counts[_INV_I] += invals
                                msg_counts[_ACK_I] += invals
                                net_stats.bytes_total += invals * sz_inv_pair
                                while others:
                                    low = others & -others
                                    others ^= low
                                    departed[low.bit_length() - 1][block] = \
                                        _DEPARTED_INVALIDATED
                            if home < 0 or home == node:
                                latency = local_miss_cost + extra
                            else:
                                msg_counts[_WRITE_I] += 1
                                msg_counts[_DATA_I] += 1
                                net_stats.bytes_total += sz_write_pair
                                req_nic = nics[node]
                                home_nic = nics[home]
                                occ2 = nic_occ + nic_occ
                                if not net_enabled:
                                    req_nic.messages += 2
                                    home_nic.messages += 2
                                    req_nic.busy_cycles += occ2
                                    home_nic.busy_cycles += occ2
                                    contention = 0
                                else:
                                    free = req_nic.next_free
                                    s1 = start if start >= free else free
                                    w1 = s1 - start
                                    req_nic.next_free = s1 + nic_occ
                                    t = s1 + nic_occ + net_latency
                                    free = home_nic.next_free
                                    s2 = t if t >= free else free
                                    w2 = s2 - t
                                    home_nic.next_free = s2 + nic_occ
                                    t2 = s2 + nic_occ
                                    free = home_nic.next_free
                                    s3 = t2 if t2 >= free else free
                                    w3 = s3 - t2
                                    home_nic.next_free = s3 + nic_occ
                                    t3 = s3 + nic_occ + net_latency
                                    free = req_nic.next_free
                                    s4 = t3 if t3 >= free else free
                                    w4 = s4 - t3
                                    req_nic.next_free = s4 + nic_occ
                                    req_nic.messages += 2
                                    home_nic.messages += 2
                                    req_nic.busy_cycles += occ2
                                    home_nic.busy_cycles += occ2
                                    req_nic.wait_cycles += w1 + w4
                                    home_nic.wait_cycles += w2 + w3
                                    contention = w1 + w2 + w3 + w4
                                latency = (remote_miss_cost + contention
                                           + extra)
                        else:
                            latency, new_version = handle_upgrade(
                                node, p, page, block, start)
                        # inlined touch_write (the probed line holds `block`)
                        cd[idx] = True
                        if new_version > cv[idx]:
                            cv[idx] = new_version
                        acc_contention[p] += wait
                        acc_upgrade[p] += latency
                        clocks[p] = clock + wait + latency
                        if events:
                            demote_pending(i, p)
                        if promo_enabled and (
                                chain or (q_has[p]
                                          and q_blk[p][q_cur[p]]
                                          == block)):
                            _promote(p, slot, i, i * num_procs + p, block,
                                     True)
                        continue
                    # stale copy: drop it so the fill below refreshes it
                    cb[idx] = -1
                    line_dirty[p][idx] = False
                    inval_rt[p] += 1

                # miss path (classified miss, absent line, or stale drop)
                miss_rt[p] += 1
                page = block // addr_bpp
                if bus_enabled:
                    free = bus_free[node]
                    start = clock if clock >= free else free
                    bus_wait[node] += start - clock
                    bus_free[node] = start + bus_occ
                else:
                    start = clock
                bus_txn[node] += 1
                wait = start - clock

                # inlined base handle_miss dispatch (mapping fast path)
                if inline_dispatch:
                    home = vm_home[page]
                    mode_c = pt_modes[node][page] if home >= 0 else 0
                    if mode_c == 0:
                        service, pageop, fault, version, remote = handle_miss(
                            node, p, page, block, is_write, start)
                    else:
                        fault = 0
                        if mode_c == LOCAL_HOME_CODE or home == node:
                            # Local fill, inlined (stock protocol) or via
                            # the subclass's method; both continue into the
                            # specialised (no pageop/fault) local tail.
                            if inline_local:
                                # inlined base _local_fill
                                node_stats[node].local_misses += 1
                                if is_write:
                                    # inlined _directory_write
                                    dir_tracked[block] = 1
                                    bit = 1 << node
                                    others = dir_sharers[block] & ~bit
                                    o = dir_owner[block]
                                    if o >= 0 and o != node:
                                        directory.writebacks += 1
                                    dir_sharers[block] = bit
                                    dir_owner[block] = node
                                    version = dir_versions[block] + 1
                                    dir_versions[block] = version
                                    extra = 0
                                    if others:
                                        invals = others.bit_count()
                                        directory.invalidations_sent += invals
                                        extra = invals * inval_cost
                                        msg_counts[_INV_I] += invals
                                        msg_counts[_ACK_I] += invals
                                        net_stats.bytes_total += \
                                            invals * sz_inv_pair
                                        while others:
                                            low = others & -others
                                            others ^= low
                                            departed[low.bit_length() - 1][
                                                block] = _DEPARTED_INVALIDATED
                                    service = local_miss_cost + extra
                                else:
                                    # inlined _directory_read
                                    dir_tracked[block] = 1
                                    dir_sharers[block] |= 1 << node
                                    version = dir_versions[block]
                                    service = local_miss_cost
                            else:
                                service, version = local_fill(
                                    node, block, is_write)
                                if events:
                                    demote_pending(i, p)
                            # inlined fill + eviction notification
                            # NOTE: the eviction block below is a copy of
                            # DSMProtocol.note_l1_eviction — as is its twin
                            # on the general miss path further down; keep
                            # both in sync
                            cv = line_versions[p]
                            cd = line_dirty[p]
                            old = cb[idx]
                            cb[idx] = block
                            if old >= 0 and old != block:
                                victim_dirty = cd[idx]
                                evict_rt[p] += 1
                                cv[idx] = version
                                cd[idx] = is_write
                                if inline_evict:
                                    cap = bc_caps[node]
                                    if cap is None:
                                        resident = old in bc_store[node]
                                    else:
                                        resident = (
                                            bc_blocks[node][old % cap]
                                            == old)
                                    if not resident:
                                        pcp = pc_res_of[node]
                                        vpage = old // addr_bpp
                                        if (pcp is None
                                                or vpage >= len(pcp)
                                                or not pcp[vpage]):
                                            vh = (vm_home[vpage]
                                                  if vpage < len(vm_home)
                                                  else -1)
                                            if vh >= 0 and vh != node:
                                                departed[node][old] = \
                                                    _DEPARTED_EVICTED
                                else:
                                    note_l1_eviction(node, old, victim_dirty)
                            else:
                                cv[idx] = version
                                cd[idx] = is_write
                            acc_contention[p] += wait
                            acc_local[p] += service
                            clocks[p] = clock + wait + service
                            if promo_enabled and (
                                    chain or (q_has[p]
                                              and q_blk[p][q_cur[p]]
                                              == block)):
                                _promote(p, slot, i, i * num_procs + p,
                                         block, is_write)
                            continue
                        elif inline_bc_remote:
                            # ---- fully inlined CC-NUMA remote lane ----
                            # (_block_cache_fetch + _remote_fetch +
                            # Network.fetch_contention on flat arrays; see
                            # their docstrings for the semantics)
                            pageop = 0
                            version = dir_versions[block]
                            cap = bc_caps[node]
                            bcs = bc_stats_of[node]
                            hit = False
                            if cap is None:
                                store = bc_store[node]
                                ent = store.get(block)
                                if ent is not None:
                                    if ent[0] >= version:
                                        hit = True
                                    else:
                                        del store[block]
                                        bcs.invalidations += 1
                            else:
                                bidx = block % cap
                                bb = bc_blocks[node]
                                bv = bc_versions[node]
                                bd = bc_dirty[node]
                                if bb[bidx] == block:
                                    if bv[bidx] >= version:
                                        hit = True
                                    else:
                                        bb[bidx] = -1
                                        bd[bidx] = False
                                        bcs.invalidations += 1
                            if hit:
                                bcs.hits += 1
                                node_stats[node].block_cache_hits += 1
                                remote = False
                                if is_write:
                                    # inlined _directory_write
                                    dir_tracked[block] = 1
                                    bit = 1 << node
                                    others = dir_sharers[block] & ~bit
                                    o = dir_owner[block]
                                    if o >= 0 and o != node:
                                        directory.writebacks += 1
                                    dir_sharers[block] = bit
                                    dir_owner[block] = node
                                    version = dir_versions[block] + 1
                                    dir_versions[block] = version
                                    extra = 0
                                    if others:
                                        invals = others.bit_count()
                                        directory.invalidations_sent += invals
                                        extra = invals * inval_cost
                                        msg_counts[_INV_I] += invals
                                        msg_counts[_ACK_I] += invals
                                        net_stats.bytes_total += \
                                            invals * sz_inv_pair
                                        while others:
                                            low = others & -others
                                            others ^= low
                                            departed[low.bit_length() - 1][
                                                block] = _DEPARTED_INVALIDATED
                                    if cap is None:
                                        stored = ent[0]
                                        store[block] = (
                                            version if version > stored
                                            else stored, True)
                                    else:
                                        if version > bv[bidx]:
                                            bv[bidx] = version
                                        bd[bidx] = True
                                    service = local_miss_cost + extra
                                else:
                                    service = local_miss_cost
                            else:
                                bcs.misses += 1
                                remote = True
                                # miss classification (reason doubles as
                                # the MissClass counter index)
                                ns = node_stats[node]
                                # read+clear the departure byte (block is
                                # covered by the pre-phase dir reserve)
                                dep = departed[node]
                                reason = dep[block]
                                if reason:
                                    dep[block] = 0
                                ns.remote_misses += 1
                                ns.remote_by_cause[reason] += 1
                                # request/reply traffic + NIC contention
                                if is_write:
                                    msg_counts[_WRITE_I] += 1
                                    msg_counts[_DATA_I] += 1
                                    net_stats.bytes_total += sz_write_pair
                                else:
                                    msg_counts[_READ_I] += 1
                                    msg_counts[_DATA_I] += 1
                                    net_stats.bytes_total += sz_read_pair
                                req_nic = nics[node]
                                home_nic = nics[home]
                                occ2 = nic_occ + nic_occ
                                if not net_enabled:
                                    req_nic.messages += 2
                                    home_nic.messages += 2
                                    req_nic.busy_cycles += occ2
                                    home_nic.busy_cycles += occ2
                                    contention = 0
                                else:
                                    free = req_nic.next_free
                                    s1 = start if start >= free else free
                                    w1 = s1 - start
                                    req_nic.next_free = s1 + nic_occ
                                    t = s1 + nic_occ + net_latency
                                    free = home_nic.next_free
                                    s2 = t if t >= free else free
                                    w2 = s2 - t
                                    home_nic.next_free = s2 + nic_occ
                                    t2 = s2 + nic_occ
                                    free = home_nic.next_free
                                    s3 = t2 if t2 >= free else free
                                    w3 = s3 - t2
                                    home_nic.next_free = s3 + nic_occ
                                    t3 = s3 + nic_occ + net_latency
                                    free = req_nic.next_free
                                    s4 = t3 if t3 >= free else free
                                    w4 = s4 - t3
                                    req_nic.next_free = s4 + nic_occ
                                    req_nic.messages += 2
                                    home_nic.messages += 2
                                    req_nic.busy_cycles += occ2
                                    home_nic.busy_cycles += occ2
                                    req_nic.wait_cycles += w1 + w4
                                    home_nic.wait_cycles += w2 + w3
                                    contention = w1 + w2 + w3 + w4
                                # directory side of the fill
                                if is_write:
                                    # inlined _directory_write
                                    dir_tracked[block] = 1
                                    bit = 1 << node
                                    others = dir_sharers[block] & ~bit
                                    o = dir_owner[block]
                                    if o >= 0 and o != node:
                                        directory.writebacks += 1
                                    dir_sharers[block] = bit
                                    dir_owner[block] = node
                                    version = dir_versions[block] + 1
                                    dir_versions[block] = version
                                    extra = 0
                                    if others:
                                        invals = others.bit_count()
                                        directory.invalidations_sent += invals
                                        extra = invals * inval_cost
                                        msg_counts[_INV_I] += invals
                                        msg_counts[_ACK_I] += invals
                                        net_stats.bytes_total += \
                                            invals * sz_inv_pair
                                        dep2 = departed
                                        while others:
                                            low = others & -others
                                            others ^= low
                                            dep2[low.bit_length() - 1][
                                                block] = _DEPARTED_INVALIDATED
                                else:
                                    # inlined _directory_read
                                    dir_tracked[block] = 1
                                    dir_sharers[block] |= 1 << node
                                    version = dir_versions[block]
                                    extra = 0
                                service = remote_miss_cost + contention + extra
                                # inlined BlockCache.fill
                                if cap is None:
                                    store[block] = (version, is_write)
                                else:
                                    old = bb[bidx]
                                    old_dirty = bd[bidx]
                                    bb[bidx] = block
                                    bv[bidx] = version
                                    bd[bidx] = is_write
                                    if old >= 0 and old != block:
                                        bcs.evictions += 1
                                        departed[node][old] = _DEPARTED_EVICTED
                                        if (old < len(dir_sharers)
                                                and dir_tracked[old]):
                                            dir_sharers[old] &= ~(1 << node)
                                            if dir_owner[old] == node:
                                                dir_owner[old] = -1
                                                directory.writebacks += 1
                                        if old_dirty:
                                            vpage = old // addr_bpp
                                            vh = (vm_home[vpage]
                                                  if vpage < len(vm_home)
                                                  else -1)
                                            if vh >= 0 and vh != node:
                                                msg_counts[_WB_I] += 1
                                                net_stats.bytes_total += sz_wb
                        else:
                            service, pageop, version, remote = service_remote(
                                node, p, page, block, is_write, start,
                                home, MODES_BY_CODE[mode_c])
                else:
                    service, pageop, fault, version, remote = handle_miss(
                        node, p, page, block, is_write, start)

                if events:
                    # a page operation flushed L1 lines: demote the affected
                    # procs' pending fast refs ordered after (i, p)
                    demote_pending(i, p)

                # inlined DirectMappedCache.fill + eviction notification
                cv = line_versions[p]
                cd = line_dirty[p]
                old = cb[idx]
                if old >= 0 and old != block:
                    victim_dirty = cd[idx]
                    evict_rt[p] += 1
                    cb[idx] = block
                    cv[idx] = version
                    cd[idx] = is_write
                    if inline_evict:
                        # inlined base note_l1_eviction (deliberate copy —
                        # a helper call costs ~10% of the miss path; its
                        # twin lives on the local-fill path above; keep
                        # both in sync with DSMProtocol.note_l1_eviction)
                        cap = bc_caps[node]
                        if cap is None:
                            resident = old in bc_store[node]
                        else:
                            resident = bc_blocks[node][old % cap] == old
                        if not resident:
                            pcp = pc_res_of[node]
                            vpage = old // addr_bpp
                            if (pcp is None or vpage >= len(pcp)
                                    or not pcp[vpage]):
                                vh = (vm_home[vpage]
                                      if vpage < len(vm_home) else -1)
                                if vh >= 0 and vh != node:
                                    departed[node][old] = _DEPARTED_EVICTED
                    else:
                        note_l1_eviction(node, old, victim_dirty)
                else:
                    cb[idx] = block
                    cv[idx] = version
                    cd[idx] = is_write

                acc_contention[p] += wait
                if remote:
                    acc_remote[p] += service
                else:
                    acc_local[p] += service
                acc_pageop[p] += pageop
                acc_fault[p] += fault
                clocks[p] = clock + wait + service + pageop + fault
                if promo_enabled and (chain
                                      or (q_has[p]
                                          and q_blk[p][q_cur[p]] == block)):
                    _promote(p, slot, i, i * num_procs + p, block, is_write)

            # consume the trailing guaranteed hits of every processor
            for p in range(num_procs):
                tail = lengths[p] - ptr[p]
                if tail:
                    clocks[p] += tail * fast_unit
                    fast_total[p] += tail
                ptr[p] = lengths[p]

            # flush per-phase accumulators into the timing/statistics objects
            for p in range(num_procs):
                n_hits = fast_total[p] + hits_rt[p]
                pt = machine.timing.processors[p]
                pt.advance(StallKind.COMPUTE, compute * lengths[p])
                pt.advance(StallKind.L1_HIT, l1_hit_cost * n_hits)
                pt.advance(StallKind.LOCAL_MISS, acc_local[p])
                pt.advance(StallKind.REMOTE_MISS, acc_remote[p])
                pt.advance(StallKind.UPGRADE, acc_upgrade[p])
                pt.advance(StallKind.PAGE_OP, acc_pageop[p])
                pt.advance(StallKind.MAPPING_FAULT, acc_fault[p])
                pt.advance(StallKind.CONTENTION, acc_contention[p])
                ns = node_stats[node_of[p]]
                ns.accesses += lengths[p]
                ns.l1_hits += n_hits
                caches[p].credit_batch(hits=n_hits + upg_rt[p],
                                       misses=miss_rt[p],
                                       evictions=evict_rt[p],
                                       invalidations=inval_rt[p])

            # flush the local bus state (busy cycles are txns * occupancy,
            # so they need no per-transaction accumulation in the loop)
            for n in range(num_nodes):
                b = buses[n]
                b.next_free = bus_free[n]
                b.transactions += bus_txn[n]
                b.busy_cycles += bus_txn[n] * bus_occ
                b.wait_cycles += bus_wait[n]
                bus_txn[n] = 0
                bus_wait[n] = 0

            # barrier at the end of the phase
            post_barrier = machine.timing.barrier(costs.barrier_cost)
            clocks = [post_barrier] * num_procs
            machine.stats.barrier_count += 1

    # final bookkeeping
    machine.stats.execution_time = machine.timing.max_clock()
    machine.stats.proc_finish_times = [
        machine.timing.processors[p].clock for p in range(num_procs)
    ]
    machine.stats.network_messages = machine.network.total_messages()
    machine.stats.network_bytes = machine.network.total_bytes()
    machine.stats.message_stats = machine.network.stats
    machine.stats.stall_breakdown = dict(machine.timing.aggregate_stalls())
    machine.stats.engine_profile = {
        "engine": "batched",
        "promotion_mode": promo_mode,
        "promotion_enabled": any(d["promotion"] for d in phase_promotions),
        "phase_promotions": phase_promotions,
        "references": prof_total,
        "fast": prof_total - prof_residual,
        "promoted": prof_promoted,
        "demoted": prof_demoted,
        "residual": prof_residual,
        "phases": len(trace.phases),
        "wall_s": round(perf_counter() - run_t0, 6),
    }
    return machine.stats
