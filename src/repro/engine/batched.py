"""Two-tier batched execution engine.

Tier 1 (the **fast path**) never executes guaranteed L1 read hits
individually: :mod:`repro.engine.classify` proves, per phase and with
numpy array passes, which references must hit, and the engine resolves
them in bulk — their cycle cost is closed-form (``compute + l1_hit`` per
reference), their only side effect a hit-counter credit.

Tier 2 (the **slow path**) walks the *residual* references — possible
hits, upgrades and misses — in exactly the interpreter's round-robin
order and feeds them through the unmodified :class:`~repro.core.protocol.
DSMProtocol` machinery (directory, network, page operations).  The
probe/fill/bus micro-steps that the interpreter performs through method
calls are inlined here on pre-bound line arrays (see
:meth:`DirectMappedCache.line_state`), and when a protocol uses the
*base* implementations of ``handle_miss`` / ``_local_fill`` /
``note_l1_eviction`` (checked by ``type``, so every subclass override
still goes through its method) their bodies are inlined as well; the
semantics are unchanged either way.

Soundness of the classification is argued in :mod:`repro.engine.classify`.
The one runtime hazard is page-operation *shootdowns* (migration,
replication, relocation and collapse flush L1 lines from outside the
reference stream); the engine arms the caches' ``watch`` hooks and, when
one fires during a protocol call, demotes every not-yet-consumed fast
reference that is ordered after the current one to the probe class.
Demoted references join the walk through a sorted ``extras`` merge — the
pre-computed schedule is never rebuilt.  Demotions are exact: a demoted
reference takes the ordinary probe path, and fast references ordered
*before* the shootdown were unaffected by it (a fast reference performs
no state mutation that later references could observe).

The engine reproduces the reference interpreter bit for bit — every
counter, stall category, clock and message statistic; the equivalence
regression suite (``tests/test_engine_equivalence.py``) asserts this for
every buildable system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.protocol import DSMProtocol, _DEPARTED_EVICTED
from repro.engine.classify import CLS_FAST, CLS_PROBE, classify_phase
from repro.mem.directory import DirectoryEntry
from repro.mem.page_table import PageMode
from repro.stats.counters import MachineStats
from repro.stats.timing import StallKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine

_UNMAPPED = PageMode.UNMAPPED
_LOCAL_HOME = PageMode.LOCAL_HOME


def run_batched(machine: "Machine", trace) -> MachineStats:
    """Run ``trace`` on ``machine`` with the two-tier batched engine."""
    if any(not hasattr(p.cache, "line_state")
           for p in machine.processors[:trace.num_procs]):
        # the classifier's occupancy argument needs direct-mapped caches;
        # exotic processor caches fall back to the reference interpreter
        from repro.engine.legacy import run_legacy
        return run_legacy(machine, trace)
    costs = machine.cfg.costs
    protocol = machine.protocol
    addr_bpp = machine.addr.blocks_per_page
    dir_entries = machine.directory._entries
    version_of = machine.directory.version
    node_stats = machine.stats.nodes
    procs = machine.processors
    num_procs = trace.num_procs

    l1_hit_cost = costs.l1_hit
    bus_occ = costs.bus_occupancy
    bus_enabled = machine.cfg.model_contention

    # Engine-side dispatch of the base handle_miss body (mapping fast path
    # + local/remote split).  Only when the protocol has not overridden the
    # corresponding base implementation; bound methods keep polymorphism.
    ptype = type(protocol)
    inline_dispatch = ptype.handle_miss is DSMProtocol.handle_miss
    inline_local = (inline_dispatch
                    and ptype._local_fill is DSMProtocol._local_fill)
    inline_evict = ptype.note_l1_eviction is DSMProtocol.note_l1_eviction
    # plain CC-NUMA's _service_remote_page is a trivial wrapper around
    # _block_cache_fetch; call the helper directly when it is unoverridden
    inline_bc_remote = (
        inline_dispatch
        and isinstance(protocol, CCNUMAProtocol)
        and ptype._service_remote_page is CCNUMAProtocol._service_remote_page)
    bc_fetch = protocol._block_cache_fetch if inline_bc_remote else None
    handle_miss = protocol.handle_miss
    handle_upgrade = protocol.handle_upgrade
    note_l1_eviction = protocol.note_l1_eviction
    local_fill = protocol._local_fill
    service_remote = protocol._service_remote_page
    dir_write = protocol._directory_write
    departed = protocol._departed
    local_miss_cost = costs.local_miss

    vm_pages = machine.vm._pages
    pt_entries = [pt._entries for pt in machine.page_tables]
    bc_frames = [bc._frames for bc in machine.block_caches]
    bc_caps = [bc.capacity_blocks for bc in machine.block_caches]
    page_caches = machine.page_caches

    caches = [procs[p].cache for p in range(num_procs)]
    node_of = [procs[p].node_id for p in range(num_procs)]
    line_blocks = []
    line_versions = []
    line_dirty = []
    lines_of = []
    for c in caches:
        blocks_l, versions_l, dirty_l = c.line_state()
        line_blocks.append(blocks_l)
        line_versions.append(versions_l)
        line_dirty.append(dirty_l)
        lines_of.append(c.num_lines)

    # local (flushed-per-phase) bus state, indexed by node id
    buses = [n.bus for n in machine.nodes]
    num_nodes = len(buses)
    bus_free = [b.next_free for b in buses]
    bus_txn = [0] * num_nodes
    bus_busy = [0] * num_nodes
    bus_wait = [0] * num_nodes

    # arm the shootdown watch: page operations invalidating L1 lines add
    # the owning processor to `events`, which demotes its pending fast refs
    events: set = set()

    def _mk_watch(p: int):
        def _watch() -> None:
            events.add(p)
        return _watch

    saved_watch = [c.watch for c in caches]
    for p, c in enumerate(caches):
        c.watch = _mk_watch(p)

    clocks = [machine.timing.processors[p].clock for p in range(num_procs)]

    try:
        for phase in trace.phases:
            blocks_np = [np.asarray(seq) for seq in phase.blocks]
            writes_np = [np.asarray(seq) for seq in phase.writes]
            if len(blocks_np) != num_procs:
                raise ValueError("phase stream count does not match trace.num_procs")
            lengths = [len(seq) for seq in blocks_np]
            compute = phase.compute_per_access
            fast_unit = compute + l1_hit_cost

            cls, sched = classify_phase(blocks_np, writes_np, caches,
                                        version_of)

            ptr = [0] * num_procs            # next own index not yet accounted
            fast_total = [0] * num_procs     # fast references consumed
            hits_rt = [0] * num_procs        # runtime read/owned probe hits
            upg_rt = [0] * num_procs         # runtime shared-write probe hits
            miss_rt = [0] * num_procs
            inval_rt = [0] * num_procs
            evict_rt = [0] * num_procs

            acc_local = [0] * num_procs
            acc_remote = [0] * num_procs
            acc_upgrade = [0] * num_procs
            acc_pageop = [0] * num_procs
            acc_fault = [0] * num_procs
            acc_contention = [0] * num_procs

            n_sched = len(sched)
            k = 0
            extras: list = []   # demoted references, sorted
            ke = 0
            while k < n_sched or ke < len(extras):
                if ke < len(extras) and (k >= n_sched
                                         or extras[ke] < sched[k]):
                    i, p, probe, block, is_write = extras[ke]
                    ke += 1
                else:
                    i, p, probe, block, is_write = sched[k]
                    k += 1

                # consume the guaranteed hits since this proc's last residual
                n_fast = i - ptr[p]
                base = clocks[p]
                if n_fast:
                    base += n_fast * fast_unit
                    fast_total[p] += n_fast
                ptr[p] = i + 1
                clock = base + compute
                node = node_of[p]
                cb = line_blocks[p]
                idx = block % lines_of[p]

                if probe and cb[idx] == block:
                    # inlined DirectMappedCache.probe
                    e = dir_entries.get(block)
                    version = e.version if e is not None else 0
                    cv = line_versions[p]
                    if cv[idx] >= version:
                        if not is_write:
                            hits_rt[p] += 1
                            clocks[p] = clock + l1_hit_cost
                            continue
                        cd = line_dirty[p]
                        if cd[idx]:
                            hits_rt[p] += 1
                            clocks[p] = clock + l1_hit_cost
                            continue
                        # write upgrade: invalidate other sharers
                        upg_rt[p] += 1
                        page = block // addr_bpp
                        if bus_enabled:
                            free = bus_free[node]
                            start = clock if clock >= free else free
                            bus_wait[node] += start - clock
                            bus_free[node] = start + bus_occ
                        else:
                            start = clock
                        bus_txn[node] += 1
                        bus_busy[node] += bus_occ
                        wait = start - clock
                        latency, new_version = handle_upgrade(
                            node, p, page, block, start)
                        # inlined touch_write (the probed line holds `block`)
                        cd[idx] = True
                        if new_version > cv[idx]:
                            cv[idx] = new_version
                        acc_contention[p] += wait
                        acc_upgrade[p] += latency
                        clocks[p] = clock + wait + latency
                        continue
                    # stale copy: drop it so the fill below refreshes it
                    cb[idx] = -1
                    line_dirty[p][idx] = False
                    inval_rt[p] += 1

                # miss path (classified miss, absent line, or stale drop)
                miss_rt[p] += 1
                page = block // addr_bpp
                if bus_enabled:
                    free = bus_free[node]
                    start = clock if clock >= free else free
                    bus_wait[node] += start - clock
                    bus_free[node] = start + bus_occ
                else:
                    start = clock
                bus_txn[node] += 1
                bus_busy[node] += bus_occ
                wait = start - clock

                # inlined base handle_miss dispatch (mapping fast path)
                if inline_dispatch:
                    rec = vm_pages.get(page)
                    pte = pt_entries[node].get(page) if rec is not None else None
                    if pte is None or pte.mode is _UNMAPPED:
                        service, pageop, fault, version, remote = handle_miss(
                            node, p, page, block, is_write, start)
                    else:
                        fault = 0
                        mode = pte.mode
                        if mode is _LOCAL_HOME or rec.home == node:
                            if inline_local:
                                # inlined base _local_fill, with the
                                # specialised (no pageop/fault) accounting
                                # tail of the local path
                                node_stats[node].local_misses += 1
                                if is_write:
                                    extra, version = dir_write(node, block)
                                    service = local_miss_cost + extra
                                else:
                                    e = dir_entries.get(block)
                                    if e is None:
                                        e = DirectoryEntry()
                                        dir_entries[block] = e
                                    e.sharers |= 1 << node
                                    version = e.version
                                    service = local_miss_cost
                                # inlined fill + eviction notification
                                # NOTE: the eviction block below is a
                                # copy of DSMProtocol.note_l1_eviction —
                                # as is its twin on the general miss path
                                # further down; keep all three in sync
                                cv = line_versions[p]
                                cd = line_dirty[p]
                                old = cb[idx]
                                cb[idx] = block
                                if old >= 0 and old != block:
                                    victim_dirty = cd[idx]
                                    evict_rt[p] += 1
                                    cv[idx] = version
                                    cd[idx] = is_write
                                    if inline_evict:
                                        cap = bc_caps[node]
                                        frames = bc_frames[node]
                                        if cap is None:
                                            resident = old in frames
                                        else:
                                            entry = frames.get(old % cap)
                                            resident = (entry is not None
                                                        and entry[0] == old)
                                        if not resident:
                                            pc = page_caches[node]
                                            vpage = old // addr_bpp
                                            if pc is None or not pc.contains(vpage):
                                                vrec = vm_pages.get(vpage)
                                                if (vrec is not None
                                                        and vrec.home != node):
                                                    departed[node][old] = \
                                                        _DEPARTED_EVICTED
                                    else:
                                        note_l1_eviction(node, old, victim_dirty)
                                else:
                                    cv[idx] = version
                                    cd[idx] = is_write
                                acc_contention[p] += wait
                                acc_local[p] += service
                                clocks[p] = clock + wait + service
                                continue
                            pageop = 0
                            remote = False
                            service, version = local_fill(
                                node, block, is_write)
                        elif inline_bc_remote:
                            pageop = 0
                            service, version, remote = bc_fetch(
                                node, page, block, is_write, start, rec.home)
                        else:
                            service, pageop, version, remote = service_remote(
                                node, p, page, block, is_write, start,
                                rec.home, mode)
                else:
                    service, pageop, fault, version, remote = handle_miss(
                        node, p, page, block, is_write, start)

                if events:
                    # a page operation flushed L1 lines: demote the affected
                    # procs' pending fast refs ordered after (i, p)
                    new_extras = []
                    for p2 in events:
                        if p2 >= num_procs:
                            continue
                        bound = i + 1 if p2 <= p else i
                        if bound < ptr[p2]:
                            bound = ptr[p2]
                        seg = cls[p2][bound:]
                        pend = np.flatnonzero(seg == CLS_FAST)
                        if len(pend):
                            seg[pend] = CLS_PROBE
                            blk2 = np.asarray(blocks_np[p2])
                            wrt2 = np.asarray(writes_np[p2])
                            new_extras.extend(
                                (int(j) + bound, p2, True,
                                 int(blk2[j + bound]), bool(wrt2[j + bound]))
                                for j in pend)
                    events.clear()
                    if new_extras:
                        extras = sorted(extras[ke:] + new_extras)
                        ke = 0

                # inlined DirectMappedCache.fill + eviction notification
                cv = line_versions[p]
                cd = line_dirty[p]
                old = cb[idx]
                if old >= 0 and old != block:
                    victim_dirty = cd[idx]
                    evict_rt[p] += 1
                    cb[idx] = block
                    cv[idx] = version
                    cd[idx] = is_write
                    if inline_evict:
                        # inlined base note_l1_eviction (deliberate copy —
                        # a helper call costs ~10% of the miss path; its
                        # twin lives on the local-fill path above; keep
                        # both in sync with DSMProtocol.note_l1_eviction)
                        cap = bc_caps[node]
                        frames = bc_frames[node]
                        if cap is None:
                            resident = old in frames
                        else:
                            entry = frames.get(old % cap)
                            resident = entry is not None and entry[0] == old
                        if not resident:
                            pc = page_caches[node]
                            vpage = old // addr_bpp
                            if pc is None or not pc.contains(vpage):
                                vrec = vm_pages.get(vpage)
                                if vrec is not None and vrec.home != node:
                                    departed[node][old] = _DEPARTED_EVICTED
                    else:
                        note_l1_eviction(node, old, victim_dirty)
                else:
                    cb[idx] = block
                    cv[idx] = version
                    cd[idx] = is_write

                acc_contention[p] += wait
                if remote:
                    acc_remote[p] += service
                else:
                    acc_local[p] += service
                acc_pageop[p] += pageop
                acc_fault[p] += fault
                clocks[p] = clock + wait + service + pageop + fault

            # consume the trailing guaranteed hits of every processor
            for p in range(num_procs):
                tail = lengths[p] - ptr[p]
                if tail:
                    clocks[p] += tail * fast_unit
                    fast_total[p] += tail
                ptr[p] = lengths[p]

            # flush per-phase accumulators into the timing/statistics objects
            for p in range(num_procs):
                n_hits = fast_total[p] + hits_rt[p]
                pt = machine.timing.processors[p]
                pt.advance(StallKind.COMPUTE, compute * lengths[p])
                pt.advance(StallKind.L1_HIT, l1_hit_cost * n_hits)
                pt.advance(StallKind.LOCAL_MISS, acc_local[p])
                pt.advance(StallKind.REMOTE_MISS, acc_remote[p])
                pt.advance(StallKind.UPGRADE, acc_upgrade[p])
                pt.advance(StallKind.PAGE_OP, acc_pageop[p])
                pt.advance(StallKind.MAPPING_FAULT, acc_fault[p])
                pt.advance(StallKind.CONTENTION, acc_contention[p])
                ns = node_stats[node_of[p]]
                ns.accesses += lengths[p]
                ns.l1_hits += n_hits
                caches[p].credit_batch(hits=n_hits + upg_rt[p],
                                       misses=miss_rt[p],
                                       evictions=evict_rt[p],
                                       invalidations=inval_rt[p])

            # flush the local bus state
            for n in range(num_nodes):
                b = buses[n]
                b.next_free = bus_free[n]
                b.transactions += bus_txn[n]
                b.busy_cycles += bus_busy[n]
                b.wait_cycles += bus_wait[n]
                bus_txn[n] = 0
                bus_busy[n] = 0
                bus_wait[n] = 0

            # barrier at the end of the phase
            post_barrier = machine.timing.barrier(costs.barrier_cost)
            clocks = [post_barrier] * num_procs
            machine.stats.barrier_count += 1
    finally:
        for p, c in enumerate(caches):
            c.watch = saved_watch[p]

    # final bookkeeping
    machine.stats.execution_time = machine.timing.max_clock()
    machine.stats.proc_finish_times = [
        machine.timing.processors[p].clock for p in range(num_procs)
    ]
    machine.stats.network_messages = machine.network.total_messages()
    machine.stats.network_bytes = machine.network.total_bytes()
    machine.stats.message_stats = machine.network.stats
    machine.stats.stall_breakdown = dict(machine.timing.aggregate_stalls())
    return machine.stats
