"""The reference interpreter: one Python-level step per trace reference.

This is the original ``Machine.run`` loop, moved verbatim into the engine
subsystem.  It is the *semantic definition* of the simulator: the batched
engine (:mod:`repro.engine.batched`) must reproduce its statistics and
execution times bit for bit, and the equivalence regression suite asserts
exactly that for every system the factory can build.

Timing model (DESIGN.md, "Timing model")
----------------------------------------
Each processor owns a clock.  Within a phase the processors' reference
streams are interleaved round-robin; every reference costs its compute
time plus:

* an L1 hit time for processor-cache hits,
* the bus queueing delay plus the protocol-determined service latency for
  misses (local miss, block-cache hit, page-cache hit or remote round
  trip, per Table 3 of the paper),
* any page-operation and mapping-fault cycles the access triggered.

Phases end in barriers that synchronise every processor at the maximum
clock plus a barrier cost; the run's execution time is the final
synchronised clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mem.cache import (
    PROBE_READ_HIT,
    PROBE_WRITE_HIT_OWNED,
    PROBE_WRITE_HIT_SHARED,
)
from repro.stats.counters import MachineStats
from repro.stats.timing import StallKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine


def run_legacy(machine: "Machine", trace) -> MachineStats:
    """Run ``trace`` on ``machine`` with the reference interpreter."""
    costs = machine.cfg.costs
    protocol = machine.protocol
    addr_bpp = machine.addr.blocks_per_page
    dir_version = machine.directory.version
    node_stats = machine.stats.nodes
    procs = machine.processors
    num_trace_procs = trace.num_procs

    l1_hit_cost = costs.l1_hit
    bus_occ = costs.bus_occupancy

    # local (fast) copies of per-processor clocks
    clocks = [machine.timing.processors[p].clock for p in range(num_trace_procs)]

    for phase in trace.phases:
        blocks_by_proc = [seq.tolist() if hasattr(seq, "tolist") else list(seq)
                          for seq in phase.blocks]
        writes_by_proc = [seq.tolist() if hasattr(seq, "tolist") else list(seq)
                          for seq in phase.writes]
        lengths = [len(seq) for seq in blocks_by_proc]
        if len(lengths) != num_trace_procs:
            raise ValueError("phase stream count does not match trace.num_procs")
        max_len = max(lengths, default=0)
        compute = phase.compute_per_access

        # per-proc stall accumulators for this phase
        acc_compute = [0] * num_trace_procs
        acc_hit = [0] * num_trace_procs
        acc_local = [0] * num_trace_procs
        acc_remote = [0] * num_trace_procs
        acc_upgrade = [0] * num_trace_procs
        acc_pageop = [0] * num_trace_procs
        acc_fault = [0] * num_trace_procs
        acc_contention = [0] * num_trace_procs
        acc_accesses = [0] * num_trace_procs
        acc_l1_hits = [0] * num_trace_procs
        acc_upgrade_count = [0] * num_trace_procs

        for i in range(max_len):
            for p in range(num_trace_procs):
                if i >= lengths[p]:
                    continue
                block = blocks_by_proc[p][i]
                is_write = bool(writes_by_proc[p][i])
                proc = procs[p]
                node = proc.node_id
                cache = proc.cache

                clock = clocks[p] + compute
                acc_compute[p] += compute
                acc_accesses[p] += 1

                version = dir_version(block)
                code = cache.probe(block, version, is_write)

                if code == PROBE_READ_HIT or code == PROBE_WRITE_HIT_OWNED:
                    clock += l1_hit_cost
                    acc_hit[p] += l1_hit_cost
                    acc_l1_hits[p] += 1
                    clocks[p] = clock
                    continue

                page = block // addr_bpp

                if code == PROBE_WRITE_HIT_SHARED:
                    # write upgrade: invalidate other sharers
                    bus = machine.nodes[node].bus
                    start = bus.acquire(clock, bus_occ)
                    wait = start - clock
                    latency, new_version = protocol.handle_upgrade(
                        node, p, page, block, start)
                    cache.touch_write(block, new_version)
                    acc_contention[p] += wait
                    acc_upgrade[p] += latency
                    acc_upgrade_count[p] += 1
                    clocks[p] = clock + wait + latency
                    continue

                # L1 miss
                bus = machine.nodes[node].bus
                start = bus.acquire(clock, bus_occ)
                wait = start - clock
                service, pageop, fault, version, remote = protocol.handle_miss(
                    node, p, page, block, is_write, start)
                victim = cache.fill(block, version, dirty=is_write)
                if victim is not None:
                    protocol.note_l1_eviction(node, victim[0], victim[1])

                acc_contention[p] += wait
                if remote:
                    acc_remote[p] += service
                else:
                    acc_local[p] += service
                acc_pageop[p] += pageop
                acc_fault[p] += fault
                clocks[p] = clock + wait + service + pageop + fault

        # flush per-phase accumulators into the timing/statistics objects
        for p in range(num_trace_procs):
            pt = machine.timing.processors[p]
            pt.advance(StallKind.COMPUTE, acc_compute[p])
            pt.advance(StallKind.L1_HIT, acc_hit[p])
            pt.advance(StallKind.LOCAL_MISS, acc_local[p])
            pt.advance(StallKind.REMOTE_MISS, acc_remote[p])
            pt.advance(StallKind.UPGRADE, acc_upgrade[p])
            pt.advance(StallKind.PAGE_OP, acc_pageop[p])
            pt.advance(StallKind.MAPPING_FAULT, acc_fault[p])
            pt.advance(StallKind.CONTENTION, acc_contention[p])
            ns = node_stats[procs[p].node_id]
            ns.accesses += acc_accesses[p]
            ns.l1_hits += acc_l1_hits[p]

        # barrier at the end of the phase
        post_barrier = machine.timing.barrier(costs.barrier_cost)
        clocks = [post_barrier] * num_trace_procs
        machine.stats.barrier_count += 1

    # final bookkeeping
    machine.stats.execution_time = machine.timing.max_clock()
    machine.stats.proc_finish_times = [
        machine.timing.processors[p].clock for p in range(num_trace_procs)
    ]
    machine.stats.network_messages = machine.network.total_messages()
    machine.stats.network_bytes = machine.network.total_bytes()
    machine.stats.message_stats = machine.network.stats
    machine.stats.stall_breakdown = dict(machine.timing.aggregate_stalls())
    return machine.stats
