"""Shared run-scoped guard for the batched and kernel engines.

Both engines pause the garbage collector for the duration of a run (their
walks allocate large bursts of small tuples that survive exactly one
phase — the worst case for generational collection) and arm the L1
caches' ``watch``/``fill_watch`` hooks so out-of-band line drops and
fills during protocol calls demote the engine's pre-classified fast
references.  Neither effect may outlive the run: a leaked GC pause slows
everything after the run, and leaked hooks corrupt the next engine (or
user code) touching the same caches.

:func:`engine_run_guard` owns that save/arm/restore dance in one place so
an exception anywhere in an engine's phase loop cannot leak either
effect.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence


@contextmanager
def engine_run_guard(caches: Sequence,
                     hooks: Sequence[Optional[Callable[[int], None]]],
                     ) -> Iterator[None]:
    """Pause the GC and arm per-cache shootdown hooks for one engine run.

    ``hooks`` provides, per cache, the callable to install as both
    ``watch`` and ``fill_watch`` (``None`` leaves that cache's hooks
    untouched).  On exit — normal or exceptional — the original hooks are
    restored and the GC is re-enabled iff it was enabled on entry.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    saved = [(c.watch, c.fill_watch) for c in caches]
    for c, hook in zip(caches, hooks):
        if hook is not None:
            c.watch = hook
            c.fill_watch = hook
    try:
        yield
    finally:
        if gc_was_enabled:
            gc.enable()
        for c, (watch, fill_watch) in zip(caches, saved):
            c.watch = watch
            c.fill_watch = fill_watch
