"""Shared run-scoped guard for the batched and kernel engines.

Both engines pause the garbage collector for the duration of a run (their
walks allocate large bursts of small tuples that survive exactly one
phase — the worst case for generational collection) and arm the L1
caches' ``watch``/``fill_watch`` hooks so out-of-band line drops and
fills during protocol calls demote the engine's pre-classified fast
references.  Neither effect may outlive the run: a leaked GC pause slows
everything after the run, and leaked hooks corrupt the next engine (or
user code) touching the same caches.

:func:`engine_run_guard` owns that save/arm/restore dance in one place so
an exception anywhere in an engine's phase loop cannot leak either
effect.

:func:`backend_crash_guard` wraps the kernel engine's calls into its
compiled backends (numba dispatch, the C extension, the interp
reference): an exception escaping compiled code — a marshalling bug, a
numba typing failure at dispatch time, a broken C build — is re-raised
as :class:`KernelBackendError`, which :func:`repro.engine.kernel.run_kernel`
catches to re-run the trace on the batched engine from a pristine
machine (the crashed walk may have half-mutated the array stores), with
the crash surfaced as the run's ``fallback_reason``.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence


class KernelBackendError(RuntimeError):
    """A compiled kernel backend crashed mid-run.

    Carries the backend name and the original exception (as
    ``__cause__``); the message is the user-facing fallback reason.
    """

    def __init__(self, backend: str, original: BaseException) -> None:
        super().__init__(
            f"kernel backend {backend!r} crashed: "
            f"{type(original).__name__}: {original}")
        self.backend = backend
        self.original = original


@contextmanager
def backend_crash_guard(backend: str) -> Iterator[None]:
    """Translate exceptions escaping a compiled backend call.

    Anything raised inside the block (except an already-translated
    :class:`KernelBackendError`) is chained into a
    :class:`KernelBackendError` so the kernel driver can distinguish
    "the backend broke" (recoverable by batched fallback) from "the
    simulation is invalid" (a driver/protocol exception raised outside
    the guarded backend call, which propagates normally).
    """
    try:
        yield
    except KernelBackendError:
        raise
    except Exception as exc:
        raise KernelBackendError(backend, exc) from exc


@contextmanager
def engine_run_guard(caches: Sequence,
                     hooks: Sequence[Optional[Callable[[int], None]]],
                     ) -> Iterator[None]:
    """Pause the GC and arm per-cache shootdown hooks for one engine run.

    ``hooks`` provides, per cache, the callable to install as both
    ``watch`` and ``fill_watch`` (``None`` leaves that cache's hooks
    untouched).  On exit — normal or exceptional — the original hooks are
    restored and the GC is re-enabled iff it was enabled on entry.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    saved = [(c.watch, c.fill_watch) for c in caches]
    for c, hook in zip(caches, hooks):
        if hook is not None:
            c.watch = hook
            c.fill_watch = hook
    try:
        yield
    finally:
        if gc_was_enabled:
            gc.enable()
        for c, (watch, fill_watch) in zip(caches, saved):
            c.watch = watch
            c.fill_watch = fill_watch
