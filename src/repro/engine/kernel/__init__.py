"""The compiled residual kernel — ``engine=kernel``.

The kernel executes the batched engine's residual schedule against flat
index-addressed array stores instead of Python objects: per phase it
classifies with ``build_promotion=False`` (promotion is a pure
optimisation — results are bit-identical either way), marshals the
simulator's stores into zero-copy numpy views
(:mod:`repro.engine.kernel.state`) and hands the walk to a compiled
backend — numba (:mod:`repro.engine.kernel.walk`) or hand-rolled C
(``cwalk.c`` via :mod:`repro.engine.kernel.cbuild`) — with the same
walk, uncompiled, as the dependency-free ``interp`` reference backend.

The backend runs the probe/upgrade/local-fill/block-cache lanes — plus
the page-cache probe lane for S-COMA-family systems, the home-side
MigRep counter bumps with the static-threshold decision tests, and the
requester-side R-NUMA refetch counters with the static relocation test —
entirely in compiled code, and *bails* back to this driver for the
events that need real protocol machinery: mapping faults, writes to
replicated pages, fired migration/replication/relocation decisions,
S-COMA first-touch allocations (``pagecache``), and adaptive-policy
evaluation points (``decide``).  The driver services the bail with
ordinary protocol calls, folds the delta mirrors, processes any
L1-shootdown demotions, and re-enters the walk where it left off.
Bails are rare (hundreds per million references on the paper's
workloads; decision evaluations are orders of magnitude rarer than
references), so the walk's speed dominates.

Only systems whose whole residual walk the backend can express run on
the kernel: the exact stock protocol family (``ccnuma``, ``migrep``,
``rnuma``, ``scoma``, ``rnuma-migrep``, ``ccnuma-dram`` and their
capacity variants) with finite homogeneous block caches and stock base
machinery.  Adaptive decision policies ride the compiled walk via the
``decide`` bail.  Everything else — user-registered subclasses, exotic
caches, infinite block caches — transparently falls back to the batched
engine for the whole run, recording *every* failing condition in
``engine_profile["fallback_reason"]``.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.ccnuma import CCNUMAProtocol
from repro.core.dram_cache import DRAMBlockCacheProtocol
from repro.core.migrep import MigRepProtocol
from repro.core.protocol import DSMProtocol
from repro.core.rnuma import RNUMAProtocol
from repro.core.rnuma_migrep import RNUMAMigRepProtocol
from repro.core.scoma import SCOMAProtocol
from repro.engine._guard import (
    KernelBackendError,
    backend_crash_guard,
    engine_run_guard,
)
from repro.engine.classify import CLS_FAST, CLS_PROBE, classify_phase
from repro.engine.kernel.state import (
    CON_COMPUTE, CON_FAST_UNIT, KernelState, MUT_RESIDUAL,
    OUT_BLOCK, OUT_CLOCK, OUT_EVAL, OUT_FAULT, OUT_HOME, OUT_I, OUT_MODE,
    OUT_P,
    OUT_PAGE, OUT_SERVICE, OUT_START, OUT_VERSION, OUT_WAIT, OUT_WRITE,
    PP_ACC_CONT, PP_ACC_FAULT, PP_ACC_LOCAL, PP_ACC_PAGEOP, PP_ACC_REMOTE,
    PP_ACC_UPGRADE, PP_CLOCK, PP_EVICT, PP_FAST, PP_HITS, PP_INVAL,
    PP_MISS, PP_NODE, PP_PTR, PP_QCUR, PP_QLEN, PP_UPG,
    RC_BAIL_COLLAPSE, RC_BAIL_DECIDE, RC_BAIL_FAULT, RC_BAIL_MIGRATE,
    RC_BAIL_PAGECACHE, RC_BAIL_RELOCATE, RC_BAIL_REPLICATE,
    RC_DONE, schedule_arrays,
)
from repro.engine.kernel.walk import get_njit_walk, kernel_walk
from repro.mem.page_table import MODES_BY_CODE
from repro.stats.counters import MachineStats
from repro.stats.timing import StallKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine

#: Environment variable forcing a kernel backend: ``numba``, ``c``,
#: ``interp`` (the uncompiled reference walk), or ``none`` (disable the
#: kernel — every run falls back to the batched engine).  Unset/empty
#: picks the fastest available compiled backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

_BAIL_NAMES = {RC_BAIL_FAULT: "fault", RC_BAIL_COLLAPSE: "collapse",
               RC_BAIL_REPLICATE: "replicate", RC_BAIL_MIGRATE: "migrate",
               RC_BAIL_RELOCATE: "relocate", RC_BAIL_DECIDE: "decide",
               RC_BAIL_PAGECACHE: "pagecache"}

#: stable key set of the ``bail_kinds`` dict in ``engine_profile``
BAIL_KIND_NAMES = ("fault", "collapse", "replicate", "migrate",
                   "relocate", "decide", "pagecache")

#: exact protocol types whose residual walk the backends transcribe
_KERNEL_PROTOCOLS = (CCNUMAProtocol, MigRepProtocol, RNUMAProtocol,
                     SCOMAProtocol, RNUMAMigRepProtocol,
                     DRAMBlockCacheProtocol)


def kernel_eligibility(machine: "Machine", trace) -> Optional[str]:
    """Why ``machine`` cannot run on the kernel, or ``None`` if it can.

    The kernel's compiled lanes are transcriptions of the *stock*
    protocol family, so any override — a subclass, exotic cache
    geometry, an infinite block cache — disqualifies the whole run
    (per-reference fallback would cost more than it saves).  *Every*
    failing condition is collected and ``"; "``-joined into the
    user-facing fallback reason, so fixing one does not merely surface
    the next.
    """
    protocol = machine.protocol
    ptype = type(protocol)
    reasons = []
    procs = machine.processors[:trace.num_procs]
    if any(not hasattr(p.cache, "line_state") for p in procs):
        reasons.append("exotic L1 cache (no line_state)")
    elif len({p.cache.num_lines for p in procs}) > 1:
        reasons.append("heterogeneous L1 geometry")
    if len(machine.nodes) > 62:
        reasons.append("more than 62 nodes (sharer masks exceed int64)")
    caps = {bc.capacity_blocks for bc in machine.block_caches}
    if None in caps:
        reasons.append("infinite block cache")
    elif len(caps) > 1:
        reasons.append("heterogeneous block-cache capacity")
    if not (ptype.handle_miss is DSMProtocol.handle_miss
            and ptype._directory_read is DSMProtocol._directory_read
            and ptype._directory_write is DSMProtocol._directory_write
            and ptype.handle_upgrade is DSMProtocol.handle_upgrade
            and ptype.note_l1_eviction is DSMProtocol.note_l1_eviction
            and ptype._remote_fetch is DSMProtocol._remote_fetch
            and ptype._remote_fill is DSMProtocol._remote_fill):
        reasons.append(f"protocol {ptype.__name__} overrides base machinery")
    if ptype not in _KERNEL_PROTOCOLS:
        reasons.append(f"unsupported protocol {ptype.__name__}")
    elif isinstance(protocol, RNUMAProtocol):
        # the page-cache probe lane needs a cache to probe on every node
        if any(pc is None for pc in machine.page_caches):
            reasons.append("page-cache protocol with a cache-less node")
    elif any(pc is not None for pc in machine.page_caches):
        reasons.append(
            f"page cache present on non-page-cache protocol "
            f"{ptype.__name__}")
    return "; ".join(reasons) if reasons else None


def _resolve_backend(forced: str):
    """Resolve ``(bind, name)`` for the requested/fastest backend.

    ``bind(args) -> runner`` takes the canonical ``kernel_walk``
    argument tuple once per phase and returns a zero-argument
    ``runner() -> rc`` that (re-)enters the walk — binding once lets the
    compiled backends cache their per-phase argument marshalling.
    Returns ``(None, reason)`` when nothing is available.
    """
    if forced in ("", "auto"):
        njit = get_njit_walk()
        if njit is not None:  # pragma: no cover - needs numba installed
            return _numba_caller(njit), "numba"
        from repro.engine.kernel.cbuild import load_cwalk
        c = load_cwalk()
        if c is not None:
            return c, "c"
        return None, "no compiled backend available (numba missing, C build failed)"
    if forced == "numba":
        njit = get_njit_walk()
        if njit is None:
            return None, "numba not installed"
        return _numba_caller(njit), "numba"  # pragma: no cover - needs numba
    if forced == "c":
        from repro.engine.kernel.cbuild import load_cwalk
        c = load_cwalk()
        if c is None:
            return None, "C backend build failed (no working compiler?)"
        return c, "c"
    if forced == "interp":
        return (lambda args: (lambda: kernel_walk(*args))), "interp"
    return None, f"unknown {BACKEND_ENV_VAR}={forced!r}"


def _numba_caller(njit_walk):  # pragma: no cover - needs numba installed
    from numba.typed import List as TypedList

    def bind(args):
        # All list arguments except the demoted queues hold the same
        # array objects for the whole phase — convert them once; the
        # queue lists get fresh arrays after demotions, so re-wrap those
        # per entry (they are tiny: one array per processor).
        head = [TypedList(a) if isinstance(a, list) else a
                for a in args[:-2]]
        q_idx, q_blk = args[-2], args[-1]

        def runner() -> int:
            return int(njit_walk(*head, TypedList(q_idx), TypedList(q_blk)))

        return runner

    return bind


def run_kernel(machine: "Machine", trace) -> MachineStats:
    """Run ``trace`` on ``machine`` with the compiled residual kernel.

    Ineligible systems and missing backends fall back to the batched
    engine for the whole run; the resulting ``engine_profile`` carries
    ``requested_engine="kernel"`` and the ``fallback_reason``.
    """
    reason = kernel_eligibility(machine, trace)
    bind = None
    backend_name = ""
    forced = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if forced in ("none", "off", "0"):
        reason = reason or f"kernel disabled via {BACKEND_ENV_VAR}"
    elif reason is None:
        bind, backend_name = _resolve_backend(forced)
        if bind is None:
            reason = backend_name
    if reason is None:
        try:
            return _run(machine, trace, bind, backend_name)
        except KernelBackendError as exc:
            # the crashed walk may have half-mutated the array stores, so
            # the batched re-run needs a pristine machine; the caller's
            # machine adopts its results to stay consistent
            from repro.cluster.machine import Machine
            fresh = Machine(machine.cfg, machine.system)
            stats = fresh.run(trace, engine="batched")
            machine.stats = fresh.stats
            machine.timing = fresh.timing
            reason = str(exc)
            profile = stats.engine_profile
            if isinstance(profile, dict):
                profile["requested_engine"] = "kernel"
                profile["fallback_reason"] = reason
            return stats
    from repro.engine.batched import run_batched
    stats = run_batched(machine, trace)
    profile = stats.engine_profile
    if isinstance(profile, dict):
        profile["requested_engine"] = "kernel"
        profile["fallback_reason"] = reason
    return stats


def _run(machine: "Machine", trace, bind, backend_name: str) -> MachineStats:
    costs = machine.cfg.costs
    protocol = machine.protocol
    num_procs = trace.num_procs
    procs = machine.processors
    caches = [procs[p].cache for p in range(num_procs)]
    node_of = [procs[p].node_id for p in range(num_procs)]
    lines_of = [c.num_lines for c in caches]
    version_of = machine.directory.version
    handle_miss = protocol.handle_miss
    service_remote = protocol._service_remote_page
    note_l1_eviction = protocol.note_l1_eviction
    maybe_relocate = getattr(protocol, "_maybe_relocate", None)
    perform_relocation = getattr(protocol, "_perform_relocation", None)
    evaluate_migrep = (getattr(protocol, "_evaluate_migrep", None)
                       or getattr(protocol, "_evaluate_policy", None))
    l1_hit_cost = costs.l1_hit
    node_stats = machine.stats.nodes
    timing_procs = machine.timing.processors

    P = num_procs
    st = KernelState(machine, num_procs, caches, node_of)
    pp = st.pp
    out = st.out

    # page-operation shootdown watch — identical to the batched engine's
    events: dict = {}

    def _mk_watch(p: int, nl: int):
        def _watch(block: int = -1) -> None:
            flushed = events.get(p)
            if flushed is True:
                return
            if block < 0:
                events[p] = True
            elif flushed is None:
                events[p] = {block % nl}
            else:
                flushed.add(block % nl)
        return _watch

    prof_total = 0
    prof_demoted = 0
    bails = 0
    bail_kinds = {name: 0 for name in BAIL_KIND_NAMES}
    run_t0 = perf_counter()

    with engine_run_guard(caches,
                          [_mk_watch(p, lines_of[p]) for p in range(P)]):
        for phase in trace.phases:
            blocks_np = phase.blocks
            writes_np = phase.writes
            if len(blocks_np) != num_procs:
                raise ValueError(
                    "phase stream count does not match trace.num_procs")
            lengths = [len(seq) for seq in blocks_np]
            compute = phase.compute_per_access
            fast_unit = compute + l1_hit_cost

            max_block = -1
            for arr in blocks_np:
                if len(arr):
                    m = int(arr.max())
                    if m > max_block:
                        max_block = m
            st.reserve_for_phase(max_block)

            cls, sched = classify_phase(blocks_np, writes_np, caches,
                                        version_of, build_promotion=False,
                                        phase=phase)
            n_sched = len(sched.entries)
            slot_of = sched.slot_of
            (ent_i, ent_p, ent_probe, ent_blk, ent_wrt, ent_slot,
             keys) = schedule_arrays(phase, sched, tuple(lines_of))
            prof_total += sum(lengths)

            st.marshal_phase(sched, n_sched)
            st.con[CON_COMPUTE] = compute
            st.con[CON_FAST_UNIT] = fast_unit
            pp[:] = 0
            for p in range(P):
                pp[PP_NODE * P + p] = node_of[p]
                pp[PP_CLOCK * P + p] = timing_procs[p].clock
            st.load_absolutes()

            args = (st.con, st.fcon, st.mut, pp, st.nn, st.msg_delta, out,
                    st.dir_sharers, st.dir_owner, st.dir_versions,
                    st.dir_tracked,
                    st.vm_home, st.vm_replicated, st.vm_replica_mask,
                    st.ctr_read, st.ctr_write, st.ctr_since,
                    st.ctr_live_r, st.ctr_live_w,
                    st.hy_scores, st.hy_seen,
                    st.departed, st.pt_modes, st.pt_tracked, st.pt_faults,
                    st.bc_blocks, st.bc_versions, st.bc_dirty,
                    st.cb, st.cv, st.cd, st.status,
                    ent_i, ent_p, ent_probe, ent_blk, ent_wrt, ent_slot,
                    keys,
                    st.rf_counts, st.pg_totals, st.pc_res, st.pc_version,
                    st.pc_dirty, st.pc_stamp, st.pc_clock, st.pc_nvalid,
                    st.pc_ndirty, st.pc_fills,
                    st.place_log, st.q_idx, st.q_blk)
            with backend_crash_guard(backend_name):
                runner = bind(args)

            def demote_pending(i: int, p: int) -> None:
                """Demote pending fast refs after a page-op L1 shootdown.

                The kernel port of the batched engine's demotion: the
                affected processors' fast references ordered after
                ``(i, p)`` become probes again — in-schedule (first-touch
                promoted) slots via a status flip, statically-fast
                references by joining the per-proc demoted queues the
                walk merges by interleave key.  The queue arrays are
                rebuilt, so the walk's re-entry sees the new heads.
                """
                nonlocal prof_demoted
                for p2, flushed in events.items():
                    if p2 >= num_procs:
                        continue
                    bound = i + 1 if p2 <= p else i
                    ptr2 = int(pp[PP_PTR * P + p2])
                    if bound < ptr2:
                        bound = ptr2
                    seg = cls[p2][bound:]
                    mask = seg == CLS_FAST
                    if flushed is not True:
                        # line-membership via a lookup table (cheaper
                        # than np.isin: no sort, O(seg + lines))
                        tbl = np.zeros(lines_of[p2], dtype=bool)
                        tbl[list(flushed)] = True
                        mask &= tbl[blocks_np[p2][bound:] % lines_of[p2]]
                    pend = np.flatnonzero(mask)
                    if not len(pend):
                        continue
                    seg[pend] = CLS_PROBE
                    prof_demoted += len(pend)
                    own = pend.astype(np.int64) + bound
                    slots = slot_of[p2][own]
                    in_sched = slots >= 0
                    promoted_slots = slots[in_sched]
                    if len(promoted_slots):
                        st.status[p2][promoted_slots] = 0
                    fresh = own[~in_sched]
                    if len(fresh):
                        blks = blocks_np[p2][fresh].astype(np.int64,
                                                           copy=False)
                        cur = int(pp[PP_QCUR * P + p2])
                        tail_i = st.q_idx[p2][cur:]
                        if len(tail_i):
                            cat_i = np.concatenate([tail_i, fresh])
                            cat_b = np.concatenate(
                                [st.q_blk[p2][cur:], blks])
                            order = np.argsort(cat_i)
                            st.q_idx[p2] = np.ascontiguousarray(
                                cat_i[order])
                            st.q_blk[p2] = np.ascontiguousarray(
                                cat_b[order])
                        else:
                            st.q_idx[p2] = np.ascontiguousarray(fresh)
                            st.q_blk[p2] = np.ascontiguousarray(blks)
                        pp[PP_QCUR * P + p2] = 0
                        pp[PP_QLEN * P + p2] = len(st.q_idx[p2])
                events.clear()

            while True:
                with backend_crash_guard(backend_name):
                    rc = runner()
                if rc == RC_DONE:
                    break
                bails += 1
                bail_kinds[_BAIL_NAMES[rc]] += 1
                # the bail handlers read/advance the live NICs and may
                # consult the vm's record dict; every other mirror is
                # either a shared view (already exact) or a
                # pure-increment delta (folded at phase end)
                st.materialize_placements()
                st.sync_nics_out()
                p = int(out[OUT_P])
                i = int(out[OUT_I])
                block = int(out[OUT_BLOCK])
                page = int(out[OUT_PAGE])
                is_write = bool(out[OUT_WRITE])
                start = int(out[OUT_START])
                wait = int(out[OUT_WAIT])
                clock = int(out[OUT_CLOCK])
                node = node_of[p]
                if rc == RC_BAIL_FAULT:
                    service, pageop, fault, version, remote = handle_miss(
                        node, p, page, block, is_write, start)
                elif rc == RC_BAIL_COLLAPSE or rc == RC_BAIL_PAGECACHE:
                    mode = MODES_BY_CODE[int(out[OUT_MODE])]
                    service, pageop, version, remote = service_remote(
                        node, p, page, block, is_write, start,
                        int(out[OUT_HOME]), mode)
                    fault = int(out[OUT_FAULT])
                elif rc == RC_BAIL_DECIDE:
                    # the walk completed the fill; run the adaptive
                    # decision evaluations it flagged, in batched order
                    service = int(out[OUT_SERVICE])
                    version = int(out[OUT_VERSION])
                    remote = True
                    fault = int(out[OUT_FAULT])
                    flags = int(out[OUT_EVAL])
                    pageop = 0
                    if flags & 1:
                        pageop += maybe_relocate(node, page, start)
                    if flags & 2:
                        pageop += evaluate_migrep(
                            page, node, int(out[OUT_HOME]), start)
                else:
                    # the walk completed the fill; run the page operation
                    service = int(out[OUT_SERVICE])
                    version = int(out[OUT_VERSION])
                    remote = True
                    fault = int(out[OUT_FAULT])
                    if rc == RC_BAIL_REPLICATE:
                        pageop = protocol._perform_replication(
                            page, node, start)
                    elif rc == RC_BAIL_MIGRATE:
                        pageop = protocol._perform_migration(
                            page, node, start)
                    else:
                        pageop = perform_relocation(node, page, start)
                if events:
                    demote_pending(i, p)
                # generic tail: L1 fill + eviction notification
                cb_p = st.cb[p]
                cv_p = st.cv[p]
                cd_p = st.cd[p]
                idx = block % lines_of[p]
                old = int(cb_p[idx])
                if old >= 0 and old != block:
                    victim_dirty = bool(cd_p[idx])
                    pp[PP_EVICT * P + p] += 1
                    cb_p[idx] = block
                    cv_p[idx] = version
                    cd_p[idx] = is_write
                    note_l1_eviction(node, old, victim_dirty)
                else:
                    cb_p[idx] = block
                    cv_p[idx] = version
                    cd_p[idx] = is_write
                pp[PP_ACC_CONT * P + p] += wait
                if remote:
                    pp[PP_ACC_REMOTE * P + p] += service
                else:
                    pp[PP_ACC_LOCAL * P + p] += service
                pp[PP_ACC_PAGEOP * P + p] += pageop
                pp[PP_ACC_FAULT * P + p] += fault
                pp[PP_CLOCK * P + p] = clock + wait + service + pageop + fault
                # protocol calls may have advanced the NICs
                st.load_nics()

            st.flush()
            # trailing guaranteed hits + per-phase statistics flush
            for p in range(P):
                tail = lengths[p] - int(pp[PP_PTR * P + p])
                if tail:
                    pp[PP_CLOCK * P + p] += tail * fast_unit
                    pp[PP_FAST * P + p] += tail
                n_hits = int(pp[PP_FAST * P + p]) + int(pp[PP_HITS * P + p])
                pt = timing_procs[p]
                pt.advance(StallKind.COMPUTE, compute * lengths[p])
                pt.advance(StallKind.L1_HIT, l1_hit_cost * n_hits)
                pt.advance(StallKind.LOCAL_MISS, int(pp[PP_ACC_LOCAL * P + p]))
                pt.advance(StallKind.REMOTE_MISS,
                           int(pp[PP_ACC_REMOTE * P + p]))
                pt.advance(StallKind.UPGRADE, int(pp[PP_ACC_UPGRADE * P + p]))
                pt.advance(StallKind.PAGE_OP, int(pp[PP_ACC_PAGEOP * P + p]))
                pt.advance(StallKind.MAPPING_FAULT,
                           int(pp[PP_ACC_FAULT * P + p]))
                pt.advance(StallKind.CONTENTION, int(pp[PP_ACC_CONT * P + p]))
                ns = node_stats[node_of[p]]
                ns.accesses += lengths[p]
                ns.l1_hits += n_hits
                caches[p].credit_batch(
                    hits=n_hits + int(pp[PP_UPG * P + p]),
                    misses=int(pp[PP_MISS * P + p]),
                    evictions=int(pp[PP_EVICT * P + p]),
                    invalidations=int(pp[PP_INVAL * P + p]))
            st.release()

            machine.timing.barrier(costs.barrier_cost)
            machine.stats.barrier_count += 1

    prof_residual = int(st.mut[MUT_RESIDUAL])
    machine.stats.execution_time = machine.timing.max_clock()
    machine.stats.proc_finish_times = [
        timing_procs[p].clock for p in range(num_procs)
    ]
    machine.stats.network_messages = machine.network.total_messages()
    machine.stats.network_bytes = machine.network.total_bytes()
    machine.stats.message_stats = machine.network.stats
    machine.stats.stall_breakdown = dict(machine.timing.aggregate_stalls())
    machine.stats.engine_profile = {
        "engine": "kernel",
        "backend": backend_name,
        "promotion_mode": "off",
        "promotion_enabled": False,
        "references": prof_total,
        "fast": prof_total - prof_residual,
        "promoted": 0,
        "demoted": prof_demoted,
        "residual": prof_residual,
        "phases": len(trace.phases),
        "bails": bails,
        "bail_kinds": bail_kinds,
        "wall_s": round(perf_counter() - run_t0, 6),
    }
    return machine.stats
