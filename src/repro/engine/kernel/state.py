"""State marshalling between the simulator's stores and the kernel walk.

The compiled residual kernel executes one phase's
:class:`~repro.engine.classify.ResidualSchedule` against flat integer
arrays.  This module builds those arrays — **views, not copies** — over
the simulator's live buffer-backed stores (the directory columns, the
page map, the page tables' mode bytes, the block-cache frames, the L1
line stores and the MigRep counter columns), together with the small
engine-owned arrays the walk scribbles its bookkeeping into (per-proc
accumulators, per-node bus/NIC/statistics mirrors, the bail "out"
record).

Marshalling contract
--------------------
* **Shared stores are zero-copy.**  Every store view is an
  ``np.frombuffer`` over the owning object's ``array``/``bytearray``
  buffer, so a write on either side is immediately visible to the other.
  While the views exist the buffers are *export-locked*: any in-place
  growth would raise ``BufferError`` instead of silently leaving the
  kernel with dangling pointers.  :meth:`KernelState.reserve_for_phase`
  therefore pre-reserves every store past the phase's maxima (whole
  pages, so page operations executed during bails cannot grow anything
  either) *before* the views are taken, and :meth:`release` drops them
  before the next phase's reserve.
* **Python-object state is mirrored as deltas.**  Counters that live in
  plain Python attributes (``NodeStats`` fields, cache statistics, the
  directory's scalar counters, message counts) accumulate in int64 delta
  arrays that :meth:`flush` folds into the owning objects at the end of
  every phase.  Bail-time protocol code only ever *increments* these
  counters, and addition commutes — so the deltas can stay parked
  across bails without any observable difference.
* **Serialising resources are mirrored as absolutes.**  NIC and bus
  ``next_free`` times are copied in at phase start
  (:meth:`load_absolutes`) and written back by ``flush``.  NICs are the
  one mirror bail-time protocol code *reads and advances* (network
  contention), so :meth:`sync_nics_out` writes them through before each
  bail and :meth:`load_nics` re-reads them after; buses are untouched by
  protocol code and stay in the mirror for the whole phase.

Layout constants (``CON_*``, ``PP_*``, ``NN_*``, ``MUT_*``, ``OUT_*``)
are shared with :mod:`repro.engine.kernel.walk`; ``cwalk.c`` mirrors them
as ``#define`` s — keep all three in sync.
"""

from __future__ import annotations

import numpy as np

from repro.engine.classify import NO_INDEX
from repro.interconnect.message import MessageType
from repro.kernel.faults import FaultKind
from repro.mem.page_table import MODE_CODES, PageMode

_MAPPING_FAULT = FaultKind.MAPPING_FAULT

# ---------------------------------------------------------------------------
# layout constants (mirrored as #defines in cwalk.c — keep in sync)
# ---------------------------------------------------------------------------

#: CON — immutable run/phase constants (int64).
(CON_NUM_PROCS, CON_NUM_NODES, CON_BPP, CON_COMPUTE, CON_L1_HIT,
 CON_FAST_UNIT, CON_BUS_OCC, CON_BUS_ENABLED, CON_LOCAL_MISS,
 CON_REMOTE_MISS, CON_INVAL_COST, CON_NET_ENABLED, CON_NET_LATENCY,
 CON_NIC_OCC, CON_SZ_READ_PAIR, CON_SZ_WRITE_PAIR, CON_SZ_WB,
 CON_SZ_INV_PAIR, CON_MSG_READ, CON_MSG_WRITE, CON_MSG_DATA, CON_MSG_WB,
 CON_MSG_INV, CON_MSG_ACK, CON_HAS_MIGREP, CON_MR_THRESHOLD, CON_MR_MIG,
 CON_MR_REP, CON_MR_RESET, CON_DIR_CAP, CON_VM_LEN, CON_N_SCHED,
 CON_BC_CAP, CON_NUM_LINES, CON_MODE_REPLICA, CON_MODE_LOCAL_HOME,
 CON_DEP_EVICTED, CON_DEP_INVALIDATED, CON_SOFT_TRAP, CON_MSG_MAP_REQ,
 CON_MSG_MAP_REPLY, CON_SZ_MAP_PAIR, CON_MODE_CCNUMA_REMOTE,
 CON_FIRST_TOUCH, CON_HAS_RNUMA, CON_RN_STATIC, CON_RN_THRESHOLD,
 CON_RN_DELAY, CON_HAS_PAGECACHE, CON_SCOMA_ALLOC, CON_HYBRID,
 CON_MR_STATIC, CON_BC_PENALTY, CON_MR_HYST) = range(54)
CON_SIZE = 56

#: FCON — float64 run constants (the int64 ``con`` array cannot carry
#: the hysteresis policy's fractional threshold and decay factor).
(FCON_HY_THRESHOLD, FCON_HY_DECAY) = range(2)
FCON_SIZE = 2

#: PP — per-processor bookkeeping rows of the flat ``pp`` array
#: (``pp[row * num_procs + p]``).
(PP_PTR, PP_FAST, PP_HITS, PP_UPG, PP_MISS, PP_INVAL, PP_EVICT,
 PP_ACC_LOCAL, PP_ACC_REMOTE, PP_ACC_UPGRADE, PP_ACC_PAGEOP, PP_ACC_FAULT,
 PP_ACC_CONT, PP_CLOCK, PP_NODE, PP_QCUR, PP_QLEN) = range(17)
PP_ROWS = 17

#: NN — per-node mirror rows of the flat ``nn`` array
#: (``nn[row * num_nodes + n]``).  ``*_FREE`` rows are absolute times;
#: every other row is a delta folded into its owner by ``flush``.
(NN_BUS_FREE, NN_BUS_TXN, NN_BUS_WAIT, NN_NIC_FREE, NN_NIC_MSGS,
 NN_NIC_BUSY, NN_NIC_WAIT, NN_NS_LOCAL, NN_NS_REMOTE, NN_NS_UPGRADES,
 NN_NS_BCHITS, NN_NS_CAUSE0, NN_NS_CAUSE1, NN_NS_CAUSE2, NN_BCS_HITS,
 NN_BCS_MISSES, NN_BCS_INVAL, NN_BCS_EVICT, NN_MAPFAULT, NN_NS_PCHITS,
 NN_PCS_HITS, NN_PCS_MISSES, NN_PCS_FILLS, NN_PCS_INVAL,
 NN_RF_TOTAL) = range(25)
NN_ROWS = 25

#: MUT — mutable walk scalars surviving across bails within a phase.
(MUT_K, MUT_BYTES, MUT_DIR_INV, MUT_DIR_WB, MUT_CTR_RESETS,
 MUT_RESIDUAL, MUT_NPLACED) = range(7)
MUT_SIZE = 8

#: OUT — the bail record the walk fills before returning.
(OUT_KIND, OUT_P, OUT_I, OUT_BLOCK, OUT_PAGE, OUT_WRITE, OUT_START,
 OUT_WAIT, OUT_CLOCK, OUT_HOME, OUT_MODE, OUT_SERVICE,
 OUT_VERSION, OUT_FAULT, OUT_EVAL) = range(15)
OUT_SIZE = 16

#: Walk return codes.
RC_DONE = 0            #: phase complete
RC_BAIL_FAULT = 1      #: mapping fault — execute via ``handle_miss``
RC_BAIL_COLLAPSE = 2   #: write to a replicated page — via ``_service_remote_page``
RC_BAIL_REPLICATE = 3  #: static MigRep decision: install a replica
RC_BAIL_MIGRATE = 4    #: static MigRep decision: migrate the page
RC_BAIL_RELOCATE = 5   #: static R-NUMA decision: relocate into the page cache
RC_BAIL_DECIDE = 6     #: adaptive policy evaluation point (``OUT_EVAL`` mask)
RC_BAIL_PAGECACHE = 7  #: S-COMA first-touch allocation — via ``_service_remote_page``


def _i64(buf) -> np.ndarray:
    """Writable int64 view of a buffer-backed store (zero-copy)."""
    return np.frombuffer(buf, dtype=np.int64)


def _u8(buf) -> np.ndarray:
    """Writable uint8 view of a ``bytearray``-backed store (zero-copy)."""
    return np.frombuffer(buf, dtype=np.uint8)


def _f64(buf) -> np.ndarray:
    """Writable float64 view of a buffer-backed store (zero-copy)."""
    return np.frombuffer(buf, dtype=np.float64)


def schedule_arrays(phase, sched, geom_key):
    """Flat int64/uint8 columns of ``sched.entries`` (cached on the phase).

    The entry tuples depend only on the streams and the cache geometry,
    so the conversion is done once per (phase, geometry) and reused by
    every later kernel run of the trace in the process.
    """
    cache = getattr(phase, "__dict__", {}).get("_kernel_sched")
    if cache is not None:
        hit = cache.get(geom_key)
        if hit is not None:
            return hit
    n = len(sched.entries)
    if n:
        cols = np.array([e[:6] for e in sched.entries], dtype=np.int64)
        arrs = (np.ascontiguousarray(cols[:, 0]),                  # i
                np.ascontiguousarray(cols[:, 1]),                  # p
                np.ascontiguousarray(cols[:, 2]).astype(np.uint8),  # probe
                np.ascontiguousarray(cols[:, 3]),                  # block
                np.ascontiguousarray(cols[:, 4]).astype(np.uint8),  # write
                np.ascontiguousarray(cols[:, 5]),                  # slot
                np.asarray(sched.keys, dtype=np.int64))
    else:
        e64 = np.empty(0, dtype=np.int64)
        e8 = np.empty(0, dtype=np.uint8)
        arrs = (e64, e64, e8, e64, e8, e64, e64)
    if cache is None:
        try:
            cache = phase.__dict__.setdefault("_kernel_sched", {})
        except (AttributeError, TypeError):  # pragma: no cover
            cache = None
    if cache is not None:
        cache[geom_key] = arrs
    return arrs


class KernelState:
    """One phase's marshalled state: store views, mirrors and schedule.

    Built per phase (store buffers may have grown between phases, moving
    the underlying memory); :meth:`release` must be called before the
    next phase's pre-reserve so the export locks are dropped.
    """

    def __init__(self, machine, num_procs, caches, node_of):
        self.machine = machine
        self.num_procs = num_procs
        self.num_nodes = len(machine.nodes)
        self.caches = caches
        cfg = machine.cfg
        costs = cfg.costs
        net = machine.network
        sizes = net.stats._sizes
        protocol = machine.protocol

        con = np.zeros(CON_SIZE, dtype=np.int64)
        con[CON_NUM_PROCS] = num_procs
        con[CON_NUM_NODES] = self.num_nodes
        con[CON_BPP] = machine.addr.blocks_per_page
        con[CON_L1_HIT] = costs.l1_hit
        con[CON_BUS_OCC] = costs.bus_occupancy
        con[CON_BUS_ENABLED] = int(cfg.model_contention)
        con[CON_LOCAL_MISS] = costs.local_miss
        con[CON_REMOTE_MISS] = costs.remote_miss
        con[CON_INVAL_COST] = costs.invalidation_per_sharer
        con[CON_NET_ENABLED] = int(net.enabled)
        con[CON_NET_LATENCY] = net.latency
        con[CON_NIC_OCC] = net.nic_occupancy
        ri = MessageType.READ_REQUEST.index
        wi = MessageType.WRITE_REQUEST.index
        di = MessageType.DATA_REPLY.index
        bi = MessageType.WRITEBACK.index
        ii = MessageType.INVALIDATION.index
        ai = MessageType.INVALIDATION_ACK.index
        con[CON_SZ_READ_PAIR] = sizes[ri] + sizes[di]
        con[CON_SZ_WRITE_PAIR] = sizes[wi] + sizes[di]
        con[CON_SZ_WB] = sizes[bi]
        con[CON_SZ_INV_PAIR] = sizes[ii] + sizes[ai]
        con[CON_MSG_READ] = ri
        con[CON_MSG_WRITE] = wi
        con[CON_MSG_DATA] = di
        con[CON_MSG_WB] = bi
        con[CON_MSG_INV] = ii
        con[CON_MSG_ACK] = ai
        con[CON_BC_CAP] = machine.block_caches[0].capacity_blocks
        con[CON_NUM_LINES] = caches[0].num_lines
        con[CON_MODE_REPLICA] = MODE_CODES[PageMode.REPLICA]
        con[CON_MODE_LOCAL_HOME] = MODE_CODES[PageMode.LOCAL_HOME]
        con[CON_MODE_CCNUMA_REMOTE] = MODE_CODES[PageMode.CCNUMA_REMOTE]
        from repro.core.protocol import (
            _DEPARTED_EVICTED, _DEPARTED_INVALIDATED)
        con[CON_DEP_EVICTED] = _DEPARTED_EVICTED
        con[CON_DEP_INVALIDATED] = _DEPARTED_INVALIDATED
        con[CON_SOFT_TRAP] = costs.soft_trap
        mri = MessageType.PAGE_MAP_REQUEST.index
        mpi = MessageType.PAGE_MAP_REPLY.index
        con[CON_MSG_MAP_REQ] = mri
        con[CON_MSG_MAP_REPLY] = mpi
        con[CON_SZ_MAP_PAIR] = sizes[mri] + sizes[mpi]
        # first-touch placement can run inside the walk; any configured
        # placement policy is Python code, so those faults bail instead
        con[CON_FIRST_TOUCH] = int(machine.vm._placement is None)
        # exact-type protocol dispatch (kernel_eligibility admitted the
        # type, so this enumeration is exhaustive); the hybrid keeps its
        # MigRep half under different attribute names than plain MigRep
        from repro.core.decisions import HysteresisMigRepPolicy, MigRepPolicy
        from repro.core.dram_cache import DRAMBlockCacheProtocol
        from repro.core.migrep import MigRepProtocol
        from repro.core.rnuma import RNUMAProtocol
        from repro.core.rnuma_migrep import RNUMAMigRepProtocol
        from repro.core.scoma import SCOMAProtocol
        ptype = type(protocol)
        counters = None
        mr_policy = None
        if ptype is MigRepProtocol:
            counters = protocol.counters
            mr_policy = protocol.policy
        elif ptype is RNUMAMigRepProtocol:
            counters = protocol.migrep_counters
            mr_policy = protocol.migrep_policy
            con[CON_HYBRID] = 1
        self.fcon = np.zeros(FCON_SIZE, dtype=np.float64)
        self.hy_policy = None
        if counters is not None:
            con[CON_HAS_MIGREP] = 1
            con[CON_MR_RESET] = counters.reset_interval
            if type(mr_policy) is MigRepPolicy:
                con[CON_MR_STATIC] = 1
                con[CON_MR_THRESHOLD] = mr_policy.threshold
                con[CON_MR_MIG] = int(mr_policy.enable_migration)
                con[CON_MR_REP] = int(mr_policy.enable_replication)
            elif type(mr_policy) is HysteresisMigRepPolicy:
                # the hysteresis evaluation is pure arithmetic over the
                # marshalled counter rows plus the policy's dense score
                # table, so it runs inline; only fired decisions bail
                con[CON_MR_HYST] = 1
                con[CON_MR_MIG] = int(mr_policy.enable_migration)
                con[CON_MR_REP] = int(mr_policy.enable_replication)
                self.fcon[FCON_HY_THRESHOLD] = mr_policy.threshold
                self.fcon[FCON_HY_DECAY] = mr_policy.decay
                self.hy_policy = mr_policy
        self.rnuma = protocol if isinstance(protocol, RNUMAProtocol) else None
        if self.rnuma is not None:
            # eligibility requires a page cache on every node here
            con[CON_HAS_PAGECACHE] = 1
            if ptype is SCOMAProtocol:
                con[CON_SCOMA_ALLOC] = 1
            else:
                con[CON_HAS_RNUMA] = 1
                con[CON_RN_STATIC] = int(protocol._rn_static)
                con[CON_RN_THRESHOLD] = protocol._rn_threshold
                con[CON_RN_DELAY] = protocol._rn_delay
        elif ptype is DRAMBlockCacheProtocol:
            con[CON_BC_PENALTY] = protocol.hit_penalty
        self.con = con
        self.counters = counters

        self.mut = np.zeros(MUT_SIZE, dtype=np.int64)
        self.pp = np.zeros(PP_ROWS * num_procs, dtype=np.int64)
        self.pp[PP_NODE * num_procs:(PP_NODE + 1) * num_procs] = node_of
        self.nn = np.zeros(NN_ROWS * self.num_nodes, dtype=np.int64)
        self.msg_delta = np.zeros(len(net.stats._counts), dtype=np.int64)
        self.out = np.zeros(OUT_SIZE, dtype=np.int64)

        # empty demoted queues (replaced by the driver after demotions)
        empty = np.empty(0, dtype=np.int64)
        self.q_idx = [empty] * num_procs
        self.q_blk = [empty] * num_procs

        # first-touch placements performed inside the walk, encoded as
        # ``page << 6 | node`` (eligibility caps nodes at 62); their
        # PageRecords are materialized lazily by materialize_placements
        self.place_log = empty

        # store views — taken lazily per phase (see marshal_phase)
        self._views_live = False

    # -- per-phase store views ----------------------------------------------

    def reserve_for_phase(self, max_block: int) -> None:
        """Pre-reserve every growable store past this phase's maxima.

        Reservation covers *whole pages* (``(max_page + 1) * bpp``
        blocks): page operations executed during bails touch every block
        of the faulting page, and nothing a phase can do reaches beyond
        its pages — so no in-place growth can happen while the views
        below hold the buffers' export locks.
        """
        if max_block < 0:
            return
        machine = self.machine
        bpp = int(self.con[CON_BPP])
        max_page = max_block // bpp
        machine.directory.reserve((max_page + 1) * bpp)
        machine.vm.reserve(max_page + 1)
        for pt in machine.page_tables:
            pt.reserve(max_page + 1)
        if self.counters is not None:
            self.counters.reserve(max_page + 1)
        if self.hy_policy is not None:
            self.hy_policy.reserve(max_page + 1, num_nodes=self.num_nodes)
        if self.rnuma is not None:
            self.rnuma._reserve_totals(max_page + 1)
            for rc in self.rnuma.refetch_counters:
                rc.reserve(max_page + 1)
            for pc in machine.page_caches:
                if pc is not None:
                    pc.reserve(max_page + 1)
        if len(self.place_log) < max_page + 1:
            self.place_log = np.empty(max_page + 1, dtype=np.int64)

    def marshal_phase(self, sched, n_sched: int) -> None:
        """Take the zero-copy store views for one phase's walk."""
        machine = self.machine
        directory = machine.directory
        vm = machine.vm
        self.dir_sharers = _i64(directory._sharers)   # bitmask fits int64:
        self.dir_owner = _i64(directory._owner)       # eligibility caps nodes
        self.dir_versions = _i64(directory._version)
        self.dir_tracked = _u8(directory._tracked)
        self.departed = [_u8(d) for d in directory._departed]
        self.vm_home = _i64(vm._home)
        self.vm_replicated = _u8(vm._replicated)
        self.vm_replica_mask = _i64(vm._replica_mask)
        self.pt_modes = [_u8(pt._modes) for pt in machine.page_tables]
        self.pt_tracked = [_u8(pt._tracked) for pt in machine.page_tables]
        self.pt_faults = [_i64(pt._faults) for pt in machine.page_tables]
        self.bc_blocks = [_i64(bc._blocks) for bc in machine.block_caches]
        self.bc_versions = [_i64(bc._versions) for bc in machine.block_caches]
        self.bc_dirty = [_u8(bc._dirty) for bc in machine.block_caches]
        self.cb = []
        self.cv = []
        self.cd = []
        for c in self.caches:
            blocks_l, versions_l, dirty_l = c.line_state()
            self.cb.append(_i64(blocks_l))
            self.cv.append(_i64(versions_l))
            self.cd.append(_u8(dirty_l))
        self.status = [_u8(s) for s in sched.status]
        if self.counters is not None:
            c = self.counters
            self.ctr_read = _i64(c._read)
            self.ctr_write = _i64(c._write)
            self.ctr_since = _i64(c._since)
            self.ctr_live_r = _u8(c._live_r)
            self.ctr_live_w = _u8(c._live_w)
        else:
            e64 = np.empty(0, dtype=np.int64)
            e8 = np.empty(0, dtype=np.uint8)
            self.ctr_read = self.ctr_write = self.ctr_since = e64
            self.ctr_live_r = self.ctr_live_w = e8
        if self.hy_policy is not None:
            self.hy_scores = _f64(self.hy_policy._scores)
            self.hy_seen = _i64(self.hy_policy._home_seen)
        else:
            # valid (never dereferenced) placeholders gated on CON_MR_HYST
            self.hy_scores = np.empty(0, dtype=np.float64)
            self.hy_seen = np.empty(0, dtype=np.int64)
        if self.rnuma is not None:
            proto = self.rnuma
            pcs = machine.page_caches
            self.rf_counts = [_i64(rc._counts)
                              for rc in proto.refetch_counters]
            self.pg_totals = _i64(proto._page_miss_totals)
            self.pc_res = [_u8(pc._resident) for pc in pcs]
            self.pc_version = [_i64(pc._version) for pc in pcs]
            self.pc_dirty = [_u8(pc._dirty) for pc in pcs]
            self.pc_stamp = [_i64(pc._stamp) for pc in pcs]
            self.pc_clock = [_i64(pc._clock) for pc in pcs]
            self.pc_nvalid = [_i64(pc._nvalid) for pc in pcs]
            self.pc_ndirty = [_i64(pc._ndirty) for pc in pcs]
            self.pc_fills = [_i64(pc._fills) for pc in pcs]
        else:
            # valid (never dereferenced) placeholders: the walk's page
            # cache and R-NUMA accesses are gated on the CON flags
            e64 = np.empty(0, dtype=np.int64)
            e8 = np.empty(0, dtype=np.uint8)
            N = self.num_nodes
            self.rf_counts = [e64] * N
            self.pg_totals = e64
            self.pc_res = [e8] * N
            self.pc_version = [e64] * N
            self.pc_dirty = [e8] * N
            self.pc_stamp = [e64] * N
            self.pc_clock = [e64] * N
            self.pc_nvalid = [e64] * N
            self.pc_ndirty = [e64] * N
            self.pc_fills = [e64] * N
        self.con[CON_DIR_CAP] = len(self.dir_sharers)
        self.con[CON_VM_LEN] = len(self.vm_home)
        self.con[CON_N_SCHED] = n_sched
        self.mut[MUT_K] = 0
        empty = self.q_idx[0][:0]
        for p in range(self.num_procs):
            self.q_idx[p] = empty
            self.q_blk[p] = empty
        self._views_live = True

    def release(self) -> None:
        """Drop the store views (and their buffer export locks)."""
        self.dir_sharers = self.dir_owner = self.dir_versions = None
        self.dir_tracked = self.departed = None
        self.vm_home = self.vm_replicated = self.vm_replica_mask = None
        self.pt_modes = self.pt_tracked = self.pt_faults = None
        self.bc_blocks = self.bc_versions = None
        self.bc_dirty = self.cb = self.cv = self.cd = self.status = None
        self.ctr_read = self.ctr_write = self.ctr_since = None
        self.ctr_live_r = self.ctr_live_w = None
        self.hy_scores = self.hy_seen = None
        self.rf_counts = self.pg_totals = None
        self.pc_res = self.pc_version = self.pc_dirty = None
        self.pc_stamp = self.pc_clock = self.pc_nvalid = None
        self.pc_ndirty = self.pc_fills = None
        self._views_live = False

    # -- mirror synchronisation ---------------------------------------------

    def load_absolutes(self) -> None:
        """Copy the serialising resources' state into the mirrors."""
        machine = self.machine
        nn = self.nn
        N = self.num_nodes
        for n in range(N):
            nn[NN_BUS_FREE * N + n] = machine.nodes[n].bus.next_free
            nn[NN_NIC_FREE * N + n] = machine.network._nics[n].next_free

    def sync_nics_out(self) -> None:
        """Write the NIC ``next_free`` mirror through to the NIC objects.

        Called before each bail: the protocol code servicing the bail
        computes network contention from (and advances) the live NICs.
        The bus mirror needs no write-through — protocol code never
        touches buses — and the delta mirrors stay parked (bail-time
        code only increments the owning counters, which commutes).
        """
        nics = self.machine.network._nics
        nn = self.nn
        N = self.num_nodes
        for n in range(N):
            nics[n].next_free = int(nn[NN_NIC_FREE * N + n])

    def load_nics(self) -> None:
        """Re-read the NIC ``next_free`` times after a bail."""
        nics = self.machine.network._nics
        nn = self.nn
        N = self.num_nodes
        for n in range(N):
            nn[NN_NIC_FREE * N + n] = nics[n].next_free

    def materialize_placements(self) -> None:
        """Create the PageRecords for first touches the walk performed.

        The walk places first-touch pages itself (``vm._home`` plus the
        node's page table, both views) and logs ``page << 6 | node``;
        the record-dict side of the placement happens here.  Must run
        before any Python protocol code can consult ``vm`` — i.e. at
        every bail and at the end of every phase.
        """
        npl = int(self.mut[MUT_NPLACED])
        if not npl:
            return
        from repro.kernel.vm import PageRecord
        vm = self.machine.vm
        pages = vm._pages
        log = self.place_log
        for j in range(npl):
            v = int(log[j])
            page = v >> 6
            node = v & 63
            pages[page] = PageRecord(page=page, home=node,
                                     first_toucher=node)
        vm.first_touches += npl
        self.mut[MUT_NPLACED] = 0

    def flush(self) -> None:
        """Fold the delta mirrors into their owners; write back absolutes.

        Runs at the end of every phase.  Delta rows are zeroed as they
        are folded; absolute rows are written through.
        """
        self.materialize_placements()
        machine = self.machine
        nn = self.nn
        N = self.num_nodes
        bus_occ = int(self.con[CON_BUS_OCC])
        soft_trap = int(self.con[CON_SOFT_TRAP])
        protocol = machine.protocol
        for n in range(N):
            bus = machine.nodes[n].bus
            txn = int(nn[NN_BUS_TXN * N + n])
            bus.next_free = int(nn[NN_BUS_FREE * N + n])
            bus.transactions += txn
            bus.busy_cycles += txn * bus_occ
            bus.wait_cycles += int(nn[NN_BUS_WAIT * N + n])
            nn[NN_BUS_TXN * N + n] = 0
            nn[NN_BUS_WAIT * N + n] = 0
            nic = machine.network._nics[n]
            nic.next_free = int(nn[NN_NIC_FREE * N + n])
            nic.messages += int(nn[NN_NIC_MSGS * N + n])
            nic.busy_cycles += int(nn[NN_NIC_BUSY * N + n])
            nic.wait_cycles += int(nn[NN_NIC_WAIT * N + n])
            nn[NN_NIC_MSGS * N + n] = 0
            nn[NN_NIC_BUSY * N + n] = 0
            nn[NN_NIC_WAIT * N + n] = 0
            ns = machine.stats.nodes[n]
            ns.local_misses += int(nn[NN_NS_LOCAL * N + n])
            ns.remote_misses += int(nn[NN_NS_REMOTE * N + n])
            ns.upgrades += int(nn[NN_NS_UPGRADES * N + n])
            ns.block_cache_hits += int(nn[NN_NS_BCHITS * N + n])
            ns.remote_by_cause[0] += int(nn[NN_NS_CAUSE0 * N + n])
            ns.remote_by_cause[1] += int(nn[NN_NS_CAUSE1 * N + n])
            ns.remote_by_cause[2] += int(nn[NN_NS_CAUSE2 * N + n])
            bcs = machine.block_caches[n].stats
            bcs.hits += int(nn[NN_BCS_HITS * N + n])
            bcs.misses += int(nn[NN_BCS_MISSES * N + n])
            bcs.invalidations += int(nn[NN_BCS_INVAL * N + n])
            bcs.evictions += int(nn[NN_BCS_EVICT * N + n])
            mf = int(nn[NN_MAPFAULT * N + n])
            if mf:
                # one mapping fault = NodeStats count + page-table soft
                # fault + a FaultLog record of soft_trap cycles
                ns.mapping_faults += mf
                machine.page_tables[n].soft_faults += mf
                log = protocol.fault_logs[n]
                log.counts[_MAPPING_FAULT] = (
                    log.counts.get(_MAPPING_FAULT, 0) + mf)
                log.cycles[_MAPPING_FAULT] = (
                    log.cycles.get(_MAPPING_FAULT, 0) + mf * soft_trap)
            if self.rnuma is not None:
                ns.page_cache_hits += int(nn[NN_NS_PCHITS * N + n])
                pc = machine.page_caches[n]
                if pc is not None:
                    pcs = pc.stats
                    pcs.block_hits += int(nn[NN_PCS_HITS * N + n])
                    pcs.block_misses += int(nn[NN_PCS_MISSES * N + n])
                    pcs.block_fills += int(nn[NN_PCS_FILLS * N + n])
                    pcs.block_invalidations += int(nn[NN_PCS_INVAL * N + n])
                rc = self.rnuma.refetch_counters[n]
                rc.total_recorded += int(nn[NN_RF_TOTAL * N + n])
            for row in (NN_NS_LOCAL, NN_NS_REMOTE, NN_NS_UPGRADES,
                        NN_NS_BCHITS, NN_NS_CAUSE0, NN_NS_CAUSE1,
                        NN_NS_CAUSE2, NN_BCS_HITS, NN_BCS_MISSES,
                        NN_BCS_INVAL, NN_BCS_EVICT, NN_MAPFAULT,
                        NN_NS_PCHITS, NN_PCS_HITS, NN_PCS_MISSES,
                        NN_PCS_FILLS, NN_PCS_INVAL, NN_RF_TOTAL):
                nn[row * N + n] = 0
        net_stats = machine.network.stats
        counts = net_stats._counts
        msg_delta = self.msg_delta
        for idx in range(len(counts)):
            if msg_delta[idx]:
                counts[idx] += int(msg_delta[idx])
                msg_delta[idx] = 0
        mut = self.mut
        net_stats.bytes_total += int(mut[MUT_BYTES])
        mut[MUT_BYTES] = 0
        machine.directory.invalidations_sent += int(mut[MUT_DIR_INV])
        machine.directory.writebacks += int(mut[MUT_DIR_WB])
        mut[MUT_DIR_INV] = 0
        mut[MUT_DIR_WB] = 0
        if self.counters is not None:
            self.counters.resets += int(mut[MUT_CTR_RESETS])
            mut[MUT_CTR_RESETS] = 0

    # -- demoted queues ------------------------------------------------------

    def set_queues(self, q_idx_lists, q_blk_lists, q_cur) -> None:
        """Install rebuilt demoted queues (after a bail's demotions)."""
        P = self.num_procs
        pp = self.pp
        for p in range(P):
            qi = q_idx_lists[p]
            start = q_cur[p]
            self.q_idx[p] = np.asarray(qi[start:], dtype=np.int64)
            self.q_blk[p] = np.asarray(q_blk_lists[p][start:],
                                       dtype=np.int64)
            pp[PP_QCUR * P + p] = 0
            pp[PP_QLEN * P + p] = len(self.q_idx[p])


__all__ = [name for name in dir() if name.startswith(("CON_", "FCON_", "PP_",
                                                      "NN_", "MUT_", "OUT_",
                                                      "RC_"))]
__all__ += ["KernelState", "schedule_arrays", "NO_INDEX"]
