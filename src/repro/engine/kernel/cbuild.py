"""On-demand build and binding of the kernel's C backend.

``cwalk.c`` needs no Python headers — it is a single translation unit of
plain C99 operating on raw array pointers — so any C compiler can build
it: ``cc -O2 -shared -fPIC`` and nothing else.  The shared object is
cached next to the package (or under ``$REPRO_KERNEL_CACHE`` / the
system temp dir when the package directory is read-only) keyed by a hash
of the source, so each source revision compiles at most once per
machine.

Everything degrades gracefully: no compiler, a failed compile or a
failed ``dlopen`` all yield ``None`` from :func:`load_cwalk` and the
engine falls back to another backend.  Set ``REPRO_KERNEL_CC`` (or the
conventional ``CC``) to pick a specific compiler.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Optional

import numpy as np

_SOURCE = Path(__file__).with_name("cwalk.c")
_N_ARGS = 52

_loaded = False
_caller: Optional[Callable] = None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if override:
        path = Path(override)
        path.mkdir(parents=True, exist_ok=True)
        return path
    path = _SOURCE.parent / "_build"
    try:
        path.mkdir(exist_ok=True)
        probe = path / ".writable"
        probe.touch()
        probe.unlink()
        return path
    except OSError:
        pass  # read-only install: fall through to the temp dir
    path = Path(tempfile.gettempdir()) / f"repro-kernel-{os.getuid()}"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _compiler() -> Optional[str]:
    # an explicit override is authoritative: if it does not resolve, the
    # build is off — never silently substitute a different compiler
    override = os.environ.get("REPRO_KERNEL_CC")
    if override is not None:
        return override if shutil.which(override) else None
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build() -> Optional[ctypes.CDLL]:
    try:
        source = _SOURCE.read_bytes()
    except OSError:
        return None
    digest = hashlib.sha256(source).hexdigest()[:16]
    try:
        cache = _cache_dir()
    except OSError:
        return None
    so_path = cache / f"cwalk-{digest}.so"
    if not so_path.exists():
        cc = _compiler()
        if cc is None:
            return None
        tmp = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
        cmd = [cc, "-O2", "-shared", "-fPIC", "-o", str(tmp), str(_SOURCE)]
        try:
            proc = subprocess.run(cmd, capture_output=True, timeout=120)
            if proc.returncode != 0:
                return None
            os.replace(tmp, so_path)   # atomic: concurrent builds race safely
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
    try:
        return ctypes.CDLL(str(so_path))
    except OSError:
        return None


def load_cwalk() -> Optional[Callable]:
    """The C walk as ``bind(args) -> runner``, or ``None`` if unbuildable.

    ``args`` is the canonical argument tuple of
    :func:`repro.engine.kernel.walk.kernel_walk`.  ``bind`` flattens the
    list-of-array arguments into pointer tables once per phase;
    ``runner() -> rc`` re-enters the walk.  Only the demoted-queue
    arrays (the last two arguments) can be replaced between re-entries,
    so the runner refreshes exactly those table slots whose array object
    changed — everything else keeps its phase-start pointer.
    """
    global _loaded, _caller
    if _loaded:
        return _caller
    _loaded = True
    lib = _build()
    if lib is None:
        return None
    try:
        fn = lib.repro_kernel_walk
    except AttributeError:
        return None
    fn.argtypes = [ctypes.c_void_p] * _N_ARGS
    fn.restype = ctypes.c_int64

    def bind(args) -> Callable[[], int]:
        if len(args) != _N_ARGS:  # pragma: no cover - internal contract
            raise ValueError("kernel walk argument count mismatch")
        c_args = []
        tables = []   # kept alive by the closure for the phase
        for a in args:
            if isinstance(a, list):
                tab = np.fromiter((x.ctypes.data for x in a),
                                  dtype=np.uint64, count=len(a))
                tables.append(tab)
                c_args.append(tab.ctypes.data)
            else:
                c_args.append(a.ctypes.data)
        q_idx, q_blk = args[-2], args[-1]
        qi_tab, qb_tab = tables[-2], tables[-1]
        seen = list(q_idx)   # holding the refs makes `is` checks sound

        def runner() -> int:
            for j, arr in enumerate(q_idx):
                if seen[j] is not arr:
                    seen[j] = arr
                    qi_tab[j] = arr.ctypes.data
                    qb_tab[j] = q_blk[j].ctypes.data
            return fn(*c_args)

        # the raw pointers in c_args are only valid while the tables and
        # argument arrays are alive — pin them to the runner's lifetime
        runner.keepalive = (args, tables)
        return runner

    _caller = bind
    return _caller
