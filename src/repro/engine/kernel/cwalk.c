/* C backend of the compiled residual kernel.
 *
 * Line-for-line transcription of kernel_walk() in walk.py — edit both
 * together.  Layout constants mirror repro/engine/kernel/state.py.
 *
 * Built on demand by cbuild.py (plain `gcc -O2 -shared -fPIC`, no
 * Python headers needed) and called through ctypes; every argument is a
 * raw array base pointer obtained from the numpy views, so the walk
 * mutates the simulator's stores in place exactly like the Python
 * backends.
 */

#include <stdint.h>

/* CON indices */
#define CON_NUM_PROCS 0
#define CON_NUM_NODES 1
#define CON_BPP 2
#define CON_COMPUTE 3
#define CON_L1_HIT 4
#define CON_FAST_UNIT 5
#define CON_BUS_OCC 6
#define CON_BUS_ENABLED 7
#define CON_LOCAL_MISS 8
#define CON_REMOTE_MISS 9
#define CON_INVAL_COST 10
#define CON_NET_ENABLED 11
#define CON_NET_LATENCY 12
#define CON_NIC_OCC 13
#define CON_SZ_READ_PAIR 14
#define CON_SZ_WRITE_PAIR 15
#define CON_SZ_WB 16
#define CON_SZ_INV_PAIR 17
#define CON_MSG_READ 18
#define CON_MSG_WRITE 19
#define CON_MSG_DATA 20
#define CON_MSG_WB 21
#define CON_MSG_INV 22
#define CON_MSG_ACK 23
#define CON_HAS_MIGREP 24
#define CON_MR_THRESHOLD 25
#define CON_MR_MIG 26
#define CON_MR_REP 27
#define CON_MR_RESET 28
#define CON_DIR_CAP 29
#define CON_VM_LEN 30
#define CON_N_SCHED 31
#define CON_BC_CAP 32
#define CON_NUM_LINES 33
#define CON_MODE_REPLICA 34
#define CON_MODE_LOCAL_HOME 35
#define CON_DEP_EVICTED 36
#define CON_DEP_INVALIDATED 37
#define CON_SOFT_TRAP 38
#define CON_MSG_MAP_REQ 39
#define CON_MSG_MAP_REPLY 40
#define CON_SZ_MAP_PAIR 41
#define CON_MODE_CCNUMA_REMOTE 42
#define CON_FIRST_TOUCH 43
#define CON_HAS_RNUMA 44
#define CON_RN_STATIC 45
#define CON_RN_THRESHOLD 46
#define CON_RN_DELAY 47
#define CON_HAS_PAGECACHE 48
#define CON_SCOMA_ALLOC 49
#define CON_HYBRID 50
#define CON_MR_STATIC 51
#define CON_BC_PENALTY 52
#define CON_MR_HYST 53

/* FCON — float64 run constants (see state.py) */
#define FCON_HY_THRESHOLD 0
#define FCON_HY_DECAY 1

/* PP rows */
#define PP_PTR 0
#define PP_FAST 1
#define PP_HITS 2
#define PP_UPG 3
#define PP_MISS 4
#define PP_INVAL 5
#define PP_EVICT 6
#define PP_ACC_LOCAL 7
#define PP_ACC_REMOTE 8
#define PP_ACC_UPGRADE 9
#define PP_ACC_PAGEOP 10
#define PP_ACC_FAULT 11
#define PP_ACC_CONT 12
#define PP_CLOCK 13
#define PP_NODE 14
#define PP_QCUR 15
#define PP_QLEN 16

/* NN rows */
#define NN_BUS_FREE 0
#define NN_BUS_TXN 1
#define NN_BUS_WAIT 2
#define NN_NIC_FREE 3
#define NN_NIC_MSGS 4
#define NN_NIC_BUSY 5
#define NN_NIC_WAIT 6
#define NN_NS_LOCAL 7
#define NN_NS_REMOTE 8
#define NN_NS_UPGRADES 9
#define NN_NS_BCHITS 10
#define NN_NS_CAUSE0 11
#define NN_BCS_HITS 14
#define NN_BCS_MISSES 15
#define NN_BCS_INVAL 16
#define NN_BCS_EVICT 17
#define NN_MAPFAULT 18
#define NN_NS_PCHITS 19
#define NN_PCS_HITS 20
#define NN_PCS_MISSES 21
#define NN_PCS_FILLS 22
#define NN_PCS_INVAL 23
#define NN_RF_TOTAL 24

/* MUT cells */
#define MUT_K 0
#define MUT_BYTES 1
#define MUT_DIR_INV 2
#define MUT_DIR_WB 3
#define MUT_CTR_RESETS 4
#define MUT_RESIDUAL 5
#define MUT_NPLACED 6

/* OUT record */
#define OUT_KIND 0
#define OUT_P 1
#define OUT_I 2
#define OUT_BLOCK 3
#define OUT_PAGE 4
#define OUT_WRITE 5
#define OUT_START 6
#define OUT_WAIT 7
#define OUT_CLOCK 8
#define OUT_HOME 9
#define OUT_MODE 10
#define OUT_SERVICE 11
#define OUT_VERSION 12
#define OUT_FAULT 13
#define OUT_EVAL 14

/* return codes */
#define RC_DONE 0
#define RC_BAIL_FAULT 1
#define RC_BAIL_COLLAPSE 2
#define RC_BAIL_REPLICATE 3
#define RC_BAIL_MIGRATE 4
#define RC_BAIL_RELOCATE 5
#define RC_BAIL_DECIDE 6
#define RC_BAIL_PAGECACHE 7

#define BAIL(code) do { \
    mut[MUT_K] = k; \
    out[OUT_KIND] = (code); \
    out[OUT_P] = p; \
    out[OUT_I] = i; \
    out[OUT_BLOCK] = block; \
    out[OUT_PAGE] = page; \
    out[OUT_WRITE] = is_write; \
    out[OUT_START] = start; \
    out[OUT_WAIT] = wait; \
    out[OUT_CLOCK] = clock; \
    out[OUT_HOME] = home; \
    out[OUT_MODE] = mode_c; \
    out[OUT_FAULT] = fault; \
    return (code); \
} while (0)

/* inlined _directory_write: sets version/extra, marks departures,
 * accumulates invalidation traffic */
#define DIR_WRITE() do { \
    dir_tracked[block] = 1; \
    int64_t bit = (int64_t)1 << node; \
    int64_t others = dir_sharers[block] & ~bit; \
    int64_t o = dir_owner[block]; \
    if (o >= 0 && o != node) mut[MUT_DIR_WB] += 1; \
    dir_sharers[block] = bit; \
    dir_owner[block] = node; \
    version = dir_versions[block] + 1; \
    dir_versions[block] = version; \
    extra = 0; \
    if (others) { \
        int64_t invals = 0, tmp = others; \
        while (tmp) { tmp &= tmp - 1; invals += 1; } \
        mut[MUT_DIR_INV] += invals; \
        extra = invals * inval_cost; \
        msg_delta[inv_i] += invals; \
        msg_delta[ack_i] += invals; \
        mut[MUT_BYTES] += invals * sz_inv_pair; \
        int64_t nidx = 0; \
        while (others) { \
            if (others & 1) departed[nidx][block] = (uint8_t)dep_invalidated; \
            others >>= 1; \
            nidx += 1; \
        } \
    } \
} while (0)

/* four-point NIC serialisation of a request/reply round trip */
#define NIC_ROUND_TRIP() do { \
    int64_t occ2 = nic_occ + nic_occ; \
    if (!net_enabled) { \
        nn[NN_NIC_MSGS * N + node] += 2; \
        nn[NN_NIC_MSGS * N + home] += 2; \
        nn[NN_NIC_BUSY * N + node] += occ2; \
        nn[NN_NIC_BUSY * N + home] += occ2; \
        contention = 0; \
    } else { \
        int64_t free_, s1, w1, t, s2, w2, t2, s3, w3, t3, s4, w4; \
        free_ = nn[NN_NIC_FREE * N + node]; \
        s1 = start >= free_ ? start : free_; \
        w1 = s1 - start; \
        nn[NN_NIC_FREE * N + node] = s1 + nic_occ; \
        t = s1 + nic_occ + net_latency; \
        free_ = nn[NN_NIC_FREE * N + home]; \
        s2 = t >= free_ ? t : free_; \
        w2 = s2 - t; \
        nn[NN_NIC_FREE * N + home] = s2 + nic_occ; \
        t2 = s2 + nic_occ; \
        free_ = nn[NN_NIC_FREE * N + home]; \
        s3 = t2 >= free_ ? t2 : free_; \
        w3 = s3 - t2; \
        nn[NN_NIC_FREE * N + home] = s3 + nic_occ; \
        t3 = s3 + nic_occ + net_latency; \
        free_ = nn[NN_NIC_FREE * N + node]; \
        s4 = t3 >= free_ ? t3 : free_; \
        w4 = s4 - t3; \
        nn[NN_NIC_FREE * N + node] = s4 + nic_occ; \
        nn[NN_NIC_MSGS * N + node] += 2; \
        nn[NN_NIC_MSGS * N + home] += 2; \
        nn[NN_NIC_BUSY * N + node] += occ2; \
        nn[NN_NIC_BUSY * N + home] += occ2; \
        nn[NN_NIC_WAIT * N + node] += w1 + w4; \
        nn[NN_NIC_WAIT * N + home] += w2 + w3; \
        contention = w1 + w2 + w3 + w4; \
    } \
} while (0)

/* home-side MigRep counter bump (record_miss + reset-interval check) */
#define CTR_BUMP() do { \
    int64_t cbase = page * N; \
    if (is_write) { \
        ctr_live_w[page] = 1; \
        ctr_write[cbase + node] += 1; \
    } else { \
        ctr_live_r[page] = 1; \
        ctr_read[cbase + node] += 1; \
    } \
    int64_t total = ctr_since[page] + 1; \
    if (total >= mr_reset) { \
        for (int64_t nx = 0; nx < N; nx++) { \
            ctr_read[cbase + nx] = 0; \
            ctr_write[cbase + nx] = 0; \
        } \
        ctr_since[page] = 0; \
        ctr_live_r[page] = 0; \
        ctr_live_w[page] = 0; \
        mut[MUT_CTR_RESETS] += 1; \
    } else { \
        ctr_since[page] = total; \
    } \
} while (0)

/* inlined base note_l1_eviction for an evicted L1 victim `old`
 * (page-cache-resident victims are still locally backed: no departure) */
#define L1_EVICT_NOTE() do { \
    if (bc_blocks[node][old % bc_cap] != old) { \
        int64_t vpage = old / bpp; \
        if (!has_pagecache || !pc_res[node][vpage]) { \
            int64_t vh = vm_home[vpage]; \
            if (vh >= 0 && vh != node) \
                departed[node][old] = (uint8_t)dep_evicted; \
        } \
    } \
} while (0)

int64_t repro_kernel_walk(
    int64_t* con, double* fcon, int64_t* mut, int64_t* pp, int64_t* nn,
    int64_t* msg_delta, int64_t* out,
    int64_t* dir_sharers, int64_t* dir_owner, int64_t* dir_versions,
    uint8_t* dir_tracked,
    int64_t* vm_home, uint8_t* vm_replicated, int64_t* vm_replica_mask,
    int64_t* ctr_read, int64_t* ctr_write, int64_t* ctr_since,
    uint8_t* ctr_live_r, uint8_t* ctr_live_w,
    double* hy_scores, int64_t* hy_seen,
    uint8_t** departed, uint8_t** pt_modes,
    uint8_t** pt_tracked, int64_t** pt_faults,
    int64_t** bc_blocks, int64_t** bc_versions, uint8_t** bc_dirty,
    int64_t** cb, int64_t** cv, uint8_t** cd, uint8_t** status,
    int64_t* ent_i, int64_t* ent_p, uint8_t* ent_probe, int64_t* ent_blk,
    uint8_t* ent_wrt, int64_t* ent_slot, int64_t* keys,
    int64_t** rf_counts, int64_t* pg_totals,
    uint8_t** pc_res, int64_t** pc_version, uint8_t** pc_dirty,
    int64_t** pc_stamp, int64_t** pc_clock, int64_t** pc_nvalid,
    int64_t** pc_ndirty, int64_t** pc_fills,
    int64_t* place_log, int64_t** q_idx, int64_t** q_blk)
{
    const int64_t P = con[CON_NUM_PROCS];
    const int64_t N = con[CON_NUM_NODES];
    const int64_t bpp = con[CON_BPP];
    const int64_t compute = con[CON_COMPUTE];
    const int64_t l1_hit_cost = con[CON_L1_HIT];
    const int64_t fast_unit = con[CON_FAST_UNIT];
    const int64_t bus_occ = con[CON_BUS_OCC];
    const int64_t bus_enabled = con[CON_BUS_ENABLED];
    const int64_t local_miss_cost = con[CON_LOCAL_MISS];
    const int64_t remote_miss_cost = con[CON_REMOTE_MISS];
    const int64_t inval_cost = con[CON_INVAL_COST];
    const int64_t net_enabled = con[CON_NET_ENABLED];
    const int64_t net_latency = con[CON_NET_LATENCY];
    const int64_t nic_occ = con[CON_NIC_OCC];
    const int64_t sz_read_pair = con[CON_SZ_READ_PAIR];
    const int64_t sz_write_pair = con[CON_SZ_WRITE_PAIR];
    const int64_t sz_wb = con[CON_SZ_WB];
    const int64_t sz_inv_pair = con[CON_SZ_INV_PAIR];
    const int64_t read_i = con[CON_MSG_READ];
    const int64_t write_i = con[CON_MSG_WRITE];
    const int64_t data_i = con[CON_MSG_DATA];
    const int64_t wb_i = con[CON_MSG_WB];
    const int64_t inv_i = con[CON_MSG_INV];
    const int64_t ack_i = con[CON_MSG_ACK];
    const int64_t has_migrep = con[CON_HAS_MIGREP];
    const int64_t mr_threshold = con[CON_MR_THRESHOLD];
    const int64_t mr_migration = con[CON_MR_MIG];
    const int64_t mr_replication = con[CON_MR_REP];
    const int64_t mr_reset = con[CON_MR_RESET];
    const int64_t n_sched = con[CON_N_SCHED];
    const int64_t bc_cap = con[CON_BC_CAP];
    const int64_t num_lines = con[CON_NUM_LINES];
    const int64_t replica_code = con[CON_MODE_REPLICA];
    const int64_t local_home_code = con[CON_MODE_LOCAL_HOME];
    const int64_t ccnuma_remote_code = con[CON_MODE_CCNUMA_REMOTE];
    const int64_t dep_evicted = con[CON_DEP_EVICTED];
    const int64_t dep_invalidated = con[CON_DEP_INVALIDATED];
    const int64_t soft_trap = con[CON_SOFT_TRAP];
    const int64_t map_req_i = con[CON_MSG_MAP_REQ];
    const int64_t map_reply_i = con[CON_MSG_MAP_REPLY];
    const int64_t sz_map_pair = con[CON_SZ_MAP_PAIR];
    const int64_t first_touch_ok = con[CON_FIRST_TOUCH];
    const int64_t has_rnuma = con[CON_HAS_RNUMA];
    const int64_t rn_static = con[CON_RN_STATIC];
    const int64_t rn_threshold = con[CON_RN_THRESHOLD];
    const int64_t rn_delay = con[CON_RN_DELAY];
    const int64_t has_pagecache = con[CON_HAS_PAGECACHE];
    const int64_t scoma_alloc = con[CON_SCOMA_ALLOC];
    const int64_t hybrid = con[CON_HYBRID];
    const int64_t mr_static = con[CON_MR_STATIC];
    const int64_t bc_penalty = con[CON_BC_PENALTY];
    const int64_t mr_hyst = con[CON_MR_HYST];
    const double hy_threshold = fcon[FCON_HY_THRESHOLD];
    const double hy_decay = fcon[FCON_HY_DECAY];

    int64_t k = mut[MUT_K];

    /* earliest demoted-queue head; recomputed only on queue consumption */
    int64_t nk = -1, pq = -1;
    for (int64_t p2 = 0; p2 < P; p2++) {
        int64_t c2 = pp[PP_QCUR * P + p2];
        if (c2 < pp[PP_QLEN * P + p2]) {
            int64_t key2 = q_idx[p2][c2] * P + p2;
            if (nk < 0 || key2 < nk) { nk = key2; pq = p2; }
        }
    }

    for (;;) {
        int64_t i, p, probe, block, is_write, slot;
        if (nk >= 0 && (k >= n_sched || nk < keys[k])) {
            p = pq;
            int64_t c = pp[PP_QCUR * P + p];
            i = q_idx[p][c];
            block = q_blk[p][c];
            pp[PP_QCUR * P + p] = c + 1;
            probe = 1;
            is_write = 0;
            slot = -1;
            nk = -1; pq = -1;
            for (int64_t p2 = 0; p2 < P; p2++) {
                int64_t c2 = pp[PP_QCUR * P + p2];
                if (c2 < pp[PP_QLEN * P + p2]) {
                    int64_t key2 = q_idx[p2][c2] * P + p2;
                    if (nk < 0 || key2 < nk) { nk = key2; pq = p2; }
                }
            }
        } else if (k < n_sched) {
            i = ent_i[k];
            p = ent_p[k];
            probe = ent_probe[k];
            block = ent_blk[k];
            is_write = ent_wrt[k];
            slot = ent_slot[k];
            k += 1;
            if (status[p][slot])
                continue;    /* first-touch promoted: consumed via ptr */
        } else {
            break;
        }
        mut[MUT_RESIDUAL] += 1;

        /* consume the guaranteed hits since this proc's last residual */
        int64_t n_fast = i - pp[PP_PTR * P + p];
        int64_t base = pp[PP_CLOCK * P + p];
        if (n_fast > 0) {
            base += n_fast * fast_unit;
            pp[PP_FAST * P + p] += n_fast;
        }
        pp[PP_PTR * P + p] = i + 1;
        int64_t clock = base + compute;
        int64_t node = pp[PP_NODE * P + p];
        int64_t* cb_p = cb[p];
        int64_t* cv_p = cv[p];
        uint8_t* cd_p = cd[p];
        int64_t idx = block % num_lines;
        int64_t version, service, extra, contention;

        if (probe && cb_p[idx] == block) {
            version = dir_versions[block];
            if (cv_p[idx] >= version) {
                if (!is_write) {
                    pp[PP_HITS * P + p] += 1;
                    pp[PP_CLOCK * P + p] = clock + l1_hit_cost;
                    continue;
                }
                if (cd_p[idx]) {
                    pp[PP_HITS * P + p] += 1;
                    pp[PP_CLOCK * P + p] = clock + l1_hit_cost;
                    continue;
                }
                /* write upgrade: invalidate other sharers */
                pp[PP_UPG * P + p] += 1;
                int64_t page = block / bpp;
                int64_t start, wait;
                if (bus_enabled) {
                    int64_t free_ = nn[NN_BUS_FREE * N + node];
                    start = clock >= free_ ? clock : free_;
                    nn[NN_BUS_WAIT * N + node] += start - clock;
                    nn[NN_BUS_FREE * N + node] = start + bus_occ;
                } else {
                    start = clock;
                }
                nn[NN_BUS_TXN * N + node] += 1;
                wait = start - clock;
                /* inlined base handle_upgrade */
                nn[NN_NS_UPGRADES * N + node] += 1;
                int64_t home = vm_home[page];
                DIR_WRITE();
                int64_t new_version = version;
                int64_t latency;
                if (home < 0 || home == node) {
                    latency = local_miss_cost + extra;
                } else {
                    msg_delta[write_i] += 1;
                    msg_delta[data_i] += 1;
                    mut[MUT_BYTES] += sz_write_pair;
                    NIC_ROUND_TRIP();
                    latency = remote_miss_cost + contention + extra;
                }
                /* inlined touch_write (the probed line holds `block`) */
                cd_p[idx] = 1;
                if (new_version > cv_p[idx])
                    cv_p[idx] = new_version;
                pp[PP_ACC_CONT * P + p] += wait;
                pp[PP_ACC_UPGRADE * P + p] += latency;
                pp[PP_CLOCK * P + p] = clock + wait + latency;
                continue;
            }
            /* stale copy: drop it so the fill below refreshes it */
            cb_p[idx] = -1;
            cd_p[idx] = 0;
            pp[PP_INVAL * P + p] += 1;
        }

        /* miss path (classified miss, absent line, or stale drop) */
        pp[PP_MISS * P + p] += 1;
        int64_t page = block / bpp;
        int64_t start, wait;
        if (bus_enabled) {
            int64_t free_ = nn[NN_BUS_FREE * N + node];
            start = clock >= free_ ? clock : free_;
            nn[NN_BUS_WAIT * N + node] += start - clock;
            nn[NN_BUS_FREE * N + node] = start + bus_occ;
        } else {
            start = clock;
        }
        nn[NN_BUS_TXN * N + node] += 1;
        wait = start - clock;

        int64_t home = vm_home[page];
        int64_t mode_c = home >= 0 ? (int64_t)pt_modes[node][page] : 0;
        int64_t fault = 0;
        if (mode_c == 0) {
            /* mapping fault (inlined ensure_mapped).  First touches under
             * a configured placement policy bail — only Python knows the
             * policy; first-touch placement itself and remap faults on
             * already-placed pages run right here. */
            if (home < 0 && !first_touch_ok)
                BAIL(RC_BAIL_FAULT);
            if (home < 0) {
                /* first touch: home the page at the requester; the
                 * PageRecord side is deferred to the placement log */
                home = node;
                vm_home[page] = node;
                place_log[mut[MUT_NPLACED]] = (page << 6) | node;
                mut[MUT_NPLACED] += 1;
            }
            fault = soft_trap;
            nn[NN_MAPFAULT * N + node] += 1;
            pt_faults[node][page] += 1;
            pt_tracked[node][page] = 1;
            if (home == node) {
                mode_c = local_home_code;
            } else {
                /* map request/reply, both one-way messages sent at t=0 */
                mode_c = ccnuma_remote_code;
                msg_delta[map_req_i] += 1;
                msg_delta[map_reply_i] += 1;
                mut[MUT_BYTES] += sz_map_pair;
                int64_t occ2 = nic_occ + nic_occ;
                if (!net_enabled) {
                    nn[NN_NIC_MSGS * N + node] += 2;
                    nn[NN_NIC_MSGS * N + home] += 2;
                    nn[NN_NIC_BUSY * N + node] += occ2;
                    nn[NN_NIC_BUSY * N + home] += occ2;
                } else {
                    int64_t free_, s1, t, s2, s3, t3, s4;
                    free_ = nn[NN_NIC_FREE * N + node];
                    s1 = 0 >= free_ ? 0 : free_;
                    nn[NN_NIC_WAIT * N + node] += s1;
                    nn[NN_NIC_FREE * N + node] = s1 + nic_occ;
                    t = s1 + nic_occ + net_latency;
                    free_ = nn[NN_NIC_FREE * N + home];
                    s2 = t >= free_ ? t : free_;
                    nn[NN_NIC_WAIT * N + home] += s2 - t;
                    nn[NN_NIC_FREE * N + home] = s2 + nic_occ;
                    free_ = nn[NN_NIC_FREE * N + home];
                    s3 = 0 >= free_ ? 0 : free_;
                    nn[NN_NIC_WAIT * N + home] += s3;
                    nn[NN_NIC_FREE * N + home] = s3 + nic_occ;
                    t3 = s3 + nic_occ + net_latency;
                    free_ = nn[NN_NIC_FREE * N + node];
                    s4 = t3 >= free_ ? t3 : free_;
                    nn[NN_NIC_WAIT * N + node] += s4 - t3;
                    nn[NN_NIC_FREE * N + node] = s4 + nic_occ;
                    nn[NN_NIC_MSGS * N + node] += 2;
                    nn[NN_NIC_MSGS * N + home] += 2;
                    nn[NN_NIC_BUSY * N + node] += occ2;
                    nn[NN_NIC_BUSY * N + home] += occ2;
                }
            }
            pt_modes[node][page] = (uint8_t)mode_c;
        }

        if (mode_c == local_home_code || home == node) {
            /* local fill (base body + MigRep home-side counter bump) */
            nn[NN_NS_LOCAL * N + node] += 1;
            if (is_write) {
                DIR_WRITE();
                service = local_miss_cost + extra;
            } else {
                dir_tracked[block] = 1;
                dir_sharers[block] |= (int64_t)1 << node;
                version = dir_versions[block];
                service = local_miss_cost;
            }
            if (has_migrep && home == node)
                CTR_BUMP();
            /* inlined fill + eviction notification (local tail) */
            int64_t old = cb_p[idx];
            cb_p[idx] = block;
            cv_p[idx] = version;
            if (old >= 0 && old != block) {
                pp[PP_EVICT * P + p] += 1;
                cd_p[idx] = (uint8_t)is_write;
                L1_EVICT_NOTE();
            } else {
                cd_p[idx] = (uint8_t)is_write;
            }
            pp[PP_ACC_CONT * P + p] += wait;
            pp[PP_ACC_LOCAL * P + p] += service;
            pp[PP_ACC_FAULT * P + p] += fault;
            pp[PP_CLOCK * P + p] = clock + wait + service + fault;
            continue;
        }

        /* ---- remote lane ---- */
        if (has_migrep) {
            if (is_write && vm_replicated[page])
                BAIL(RC_BAIL_COLLAPSE);   /* collapse via the protocol */
            if (!is_write && mode_c == replica_code) {
                /* read served by a local replica */
                nn[NN_NS_LOCAL * N + node] += 1;
                dir_tracked[block] = 1;
                dir_sharers[block] |= (int64_t)1 << node;
                version = dir_versions[block];
                service = local_miss_cost;
                int64_t old = cb_p[idx];
                if (old >= 0 && old != block) {
                    pp[PP_EVICT * P + p] += 1;
                    cb_p[idx] = block;
                    cv_p[idx] = version;
                    cd_p[idx] = (uint8_t)is_write;
                    L1_EVICT_NOTE();
                } else {
                    cb_p[idx] = block;
                    cv_p[idx] = version;
                    cd_p[idx] = (uint8_t)is_write;
                }
                pp[PP_ACC_CONT * P + p] += wait;
                pp[PP_ACC_LOCAL * P + p] += service;
                pp[PP_ACC_FAULT * P + p] += fault;
                pp[PP_CLOCK * P + p] = clock + wait + service + fault;
                continue;
            }
        }

        /* ---- page-cache probe lane ---- */
        if (has_pagecache) {
            if (pc_res[node][page]) {
                /* transcription of RNUMAProtocol._scoma_fetch on the
                 * flat page-cache arrays (block tags live at the global
                 * block index); residency only ever changes in Python */
                pc_clock[node][0] += 1;
                pc_stamp[node][page] = pc_clock[node][0];
                version = dir_versions[block];
                int64_t* pcv_n = pc_version[node];
                uint8_t* pcd_n = pc_dirty[node];
                int64_t stored = pcv_n[block];
                int64_t pc_hit = 0;
                if (stored >= 0) {
                    if (stored >= version) {
                        pc_hit = 1;
                    } else {
                        /* stale block: invalidate and refetch below */
                        pcv_n[block] = -1;
                        pc_nvalid[node][page] -= 1;
                        if (pcd_n[block]) {
                            pcd_n[block] = 0;
                            pc_ndirty[node][page] -= 1;
                        }
                        nn[NN_PCS_INVAL * N + node] += 1;
                    }
                }
                int64_t remote;
                if (pc_hit) {
                    nn[NN_PCS_HITS * N + node] += 1;
                    nn[NN_NS_PCHITS * N + node] += 1;
                    remote = 0;
                    if (is_write) {
                        DIR_WRITE();
                        /* inlined PageCache.write_block (tag is valid) */
                        if (version > stored)
                            pcv_n[block] = version;
                        if (!pcd_n[block]) {
                            pcd_n[block] = 1;
                            pc_ndirty[node][page] += 1;
                        }
                        service = local_miss_cost + extra;
                    } else {
                        service = local_miss_cost;
                    }
                } else {
                    nn[NN_PCS_MISSES * N + node] += 1;
                    remote = 1;
                    /* inlined _remote_fill: classification, traffic,
                     * NIC contention and the directory fill */
                    int64_t reason = departed[node][block];
                    if (reason)
                        departed[node][block] = 0;
                    nn[NN_NS_REMOTE * N + node] += 1;
                    nn[(NN_NS_CAUSE0 + reason) * N + node] += 1;
                    if (is_write) {
                        msg_delta[write_i] += 1;
                        msg_delta[data_i] += 1;
                        mut[MUT_BYTES] += sz_write_pair;
                    } else {
                        msg_delta[read_i] += 1;
                        msg_delta[data_i] += 1;
                        mut[MUT_BYTES] += sz_read_pair;
                    }
                    NIC_ROUND_TRIP();
                    if (is_write) {
                        DIR_WRITE();
                    } else {
                        dir_tracked[block] = 1;
                        dir_sharers[block] |= (int64_t)1 << node;
                        version = dir_versions[block];
                        extra = 0;
                    }
                    service = remote_miss_cost + contention + extra;
                    /* inlined PageCache.fill_block */
                    if (pcv_n[block] < 0)
                        pc_nvalid[node][page] += 1;
                    pcv_n[block] = version;
                    if (is_write && !pcd_n[block]) {
                        pcd_n[block] = 1;
                        pc_ndirty[node][page] += 1;
                    }
                    pc_fills[node][page] += 1;
                    nn[NN_PCS_FILLS * N + node] += 1;
                    /* requester-side R-NUMA miss total; the hybrid also
                     * bumps the home-side MigRep counters (its policy
                     * evaluation returns NONE for resident pages) */
                    pg_totals[page] += 1;
                    if (has_migrep)
                        CTR_BUMP();
                }
                /* generic tail (page-cache lane copy) */
                int64_t old = cb_p[idx];
                if (old >= 0 && old != block) {
                    pp[PP_EVICT * P + p] += 1;
                    cb_p[idx] = block;
                    cv_p[idx] = version;
                    cd_p[idx] = (uint8_t)is_write;
                    L1_EVICT_NOTE();
                } else {
                    cb_p[idx] = block;
                    cv_p[idx] = version;
                    cd_p[idx] = (uint8_t)is_write;
                }
                pp[PP_ACC_CONT * P + p] += wait;
                if (remote)
                    pp[PP_ACC_REMOTE * P + p] += service;
                else
                    pp[PP_ACC_LOCAL * P + p] += service;
                pp[PP_ACC_FAULT * P + p] += fault;
                pp[PP_CLOCK * P + p] = clock + wait + service + fault;
                continue;
            }
            if (scoma_alloc) {
                /* S-COMA allocates a local frame on the first remote
                 * miss; allocation and service both live in Python —
                 * bail before any accounting so the driver can run
                 * _service_remote_page */
                BAIL(RC_BAIL_PAGECACHE);
            }
        }

        /* inlined CC-NUMA block-cache / remote-fetch lane */
        version = dir_versions[block];
        int64_t bidx = block % bc_cap;
        int64_t* bb = bc_blocks[node];
        int64_t* bv = bc_versions[node];
        uint8_t* bd = bc_dirty[node];
        int64_t hit = 0;
        if (bb[bidx] == block) {
            if (bv[bidx] >= version) {
                hit = 1;
            } else {
                bb[bidx] = -1;
                bd[bidx] = 0;
                nn[NN_BCS_INVAL * N + node] += 1;
            }
        }
        int64_t remote;
        if (hit) {
            nn[NN_BCS_HITS * N + node] += 1;
            nn[NN_NS_BCHITS * N + node] += 1;
            remote = 0;
            if (is_write) {
                DIR_WRITE();
                if (version > bv[bidx])
                    bv[bidx] = version;
                bd[bidx] = 1;
                service = local_miss_cost + extra + bc_penalty;
            } else {
                service = local_miss_cost + bc_penalty;
            }
        } else {
            nn[NN_BCS_MISSES * N + node] += 1;
            remote = 1;
            /* miss classification (reason doubles as counter index) */
            int64_t reason = departed[node][block];
            if (reason)
                departed[node][block] = 0;
            nn[NN_NS_REMOTE * N + node] += 1;
            nn[(NN_NS_CAUSE0 + reason) * N + node] += 1;
            /* request/reply traffic + NIC contention */
            if (is_write) {
                msg_delta[write_i] += 1;
                msg_delta[data_i] += 1;
                mut[MUT_BYTES] += sz_write_pair;
            } else {
                msg_delta[read_i] += 1;
                msg_delta[data_i] += 1;
                mut[MUT_BYTES] += sz_read_pair;
            }
            NIC_ROUND_TRIP();
            /* directory side of the fill */
            if (is_write) {
                DIR_WRITE();
            } else {
                dir_tracked[block] = 1;
                dir_sharers[block] |= (int64_t)1 << node;
                version = dir_versions[block];
                extra = 0;
            }
            service = remote_miss_cost + contention + extra + bc_penalty;
            /* inlined BlockCache.fill */
            int64_t old = bb[bidx];
            int64_t old_dirty = bd[bidx];
            bb[bidx] = block;
            bv[bidx] = version;
            bd[bidx] = (uint8_t)is_write;
            if (old >= 0 && old != block) {
                nn[NN_BCS_EVICT * N + node] += 1;
                departed[node][old] = (uint8_t)dep_evicted;
                if (dir_tracked[old]) {
                    dir_sharers[old] &= ~((int64_t)1 << node);
                    if (dir_owner[old] == node) {
                        dir_owner[old] = -1;
                        mut[MUT_DIR_WB] += 1;
                    }
                }
                if (old_dirty) {
                    int64_t vpage = old / bpp;
                    int64_t vh = vm_home[vpage];
                    if (vh >= 0 && vh != node) {
                        msg_delta[wb_i] += 1;
                        mut[MUT_BYTES] += sz_wb;
                    }
                }
            }
            int64_t reloc = 0, eval_mask = 0;
            if (has_rnuma) {
                /* requester-side R-NUMA accounting: the per-page miss
                 * total always, the refetch counter only when this fetch
                 * re-acquired a block lost to capacity replacement */
                pg_totals[page] += 1;
                if (reason == dep_evicted) {
                    int64_t* rfn = rf_counts[node];
                    int64_t rfc = rfn[page] + 1;
                    rfn[page] = rfc;
                    nn[NN_RF_TOTAL * N + node] += 1;
                    if (rn_static) {
                        if ((rn_delay == 0 || pg_totals[page] >= rn_delay)
                                && rfc > rn_threshold)
                            reloc = 1;
                    } else {
                        eval_mask = 1;
                    }
                }
            }
            if (has_migrep) {
                /* home-side counter bump + policy decision */
                CTR_BUMP();
                if (!reloc) {
                    if (mr_static && !eval_mask) {
                        if (((vm_replica_mask[page] >> node) & 1) == 0) {
                            int64_t cbase = page * N;
                            int64_t decided = 0;
                            if (mr_replication) {
                                int64_t remote_writes = -ctr_write[cbase + home];
                                for (int64_t nx = 0; nx < N; nx++)
                                    remote_writes += ctr_write[cbase + nx];
                                if (remote_writes == 0
                                        && ctr_read[cbase + node] > mr_threshold)
                                    decided = RC_BAIL_REPLICATE;
                            }
                            if (!decided && mr_migration) {
                                int64_t req_m = ctr_read[cbase + node]
                                                + ctr_write[cbase + node];
                                int64_t home_m = ctr_read[cbase + home]
                                                 + ctr_write[cbase + home];
                                if (req_m - home_m > mr_threshold)
                                    decided = RC_BAIL_MIGRATE;
                            }
                            if (decided) {
                                /* fill is complete; only the page op
                                 * itself needs the MigrationEngine */
                                out[OUT_SERVICE] = service;
                                out[OUT_VERSION] = version;
                                BAIL(decided);
                            }
                        }
                    } else if (mr_hyst && !eval_mask) {
                        /* inlined HysteresisMigRepPolicy.evaluate on the
                         * shared dense score rows (requester != home on
                         * this path; zero rows read identically to rows
                         * the Python side has never touched) */
                        if (((vm_replica_mask[page] >> node) & 1) == 0) {
                            int64_t cbase = page * N;
                            for (int64_t nx = 0; nx < N; nx++)
                                hy_scores[cbase + nx] *= hy_decay;
                            hy_scores[cbase + node] += 1.0;
                            int64_t home_total = ctr_read[cbase + home]
                                                 + ctr_write[cbase + home];
                            int64_t hdelta = home_total - hy_seen[page];
                            if (hdelta != 0) {
                                if (hdelta < 0)
                                    hy_scores[cbase + home] += (double)home_total;
                                else
                                    hy_scores[cbase + home] += (double)hdelta;
                                hy_seen[page] = home_total;
                            }
                            int64_t decided = 0;
                            if (mr_replication) {
                                int64_t remote_writes = -ctr_write[cbase + home];
                                for (int64_t nx = 0; nx < N; nx++)
                                    remote_writes += ctr_write[cbase + nx];
                                if (remote_writes == 0
                                        && hy_scores[cbase + node] > hy_threshold)
                                    decided = RC_BAIL_REPLICATE;
                            }
                            if (!decided && mr_migration) {
                                if (hy_scores[cbase + node]
                                        - hy_scores[cbase + home] > hy_threshold)
                                    decided = RC_BAIL_MIGRATE;
                            }
                            if (decided) {
                                /* the policy forgets the page before the
                                 * fired decision runs; the page op itself
                                 * needs the MigrationEngine */
                                for (int64_t nx = 0; nx < N; nx++)
                                    hy_scores[cbase + nx] = 0.0;
                                hy_seen[page] = 0;
                                out[OUT_SERVICE] = service;
                                out[OUT_VERSION] = version;
                                BAIL(decided);
                            }
                        }
                    } else if (hybrid
                               || ((vm_replica_mask[page] >> node) & 1) == 0) {
                        /* adaptive MigRep policy — or a static one in
                         * the hybrid with an adaptive R-NUMA evaluation
                         * pending (a relocation would change its
                         * answer): defer to the Python evaluation */
                        eval_mask |= 2;
                    }
                }
            }
            if (reloc) {
                /* fired static R-NUMA decision: the fill is complete,
                 * the relocation itself runs in the RelocationEngine */
                out[OUT_SERVICE] = service;
                out[OUT_VERSION] = version;
                BAIL(RC_BAIL_RELOCATE);
            }
            if (eval_mask) {
                /* adaptive evaluation point: the fill is accounted;
                 * Python evaluates the decisions named by the mask
                 * (1 = R-NUMA, 2 = MigRep) */
                out[OUT_SERVICE] = service;
                out[OUT_VERSION] = version;
                out[OUT_EVAL] = eval_mask;
                BAIL(RC_BAIL_DECIDE);
            }
        }

        /* generic tail: L1 fill + eviction notification */
        int64_t old = cb_p[idx];
        if (old >= 0 && old != block) {
            pp[PP_EVICT * P + p] += 1;
            cb_p[idx] = block;
            cv_p[idx] = version;
            cd_p[idx] = (uint8_t)is_write;
            L1_EVICT_NOTE();
        } else {
            cb_p[idx] = block;
            cv_p[idx] = version;
            cd_p[idx] = (uint8_t)is_write;
        }
        pp[PP_ACC_CONT * P + p] += wait;
        if (remote)
            pp[PP_ACC_REMOTE * P + p] += service;
        else
            pp[PP_ACC_LOCAL * P + p] += service;
        pp[PP_ACC_FAULT * P + p] += fault;
        pp[PP_CLOCK * P + p] = clock + wait + service + fault;
    }

    mut[MUT_K] = k;
    return RC_DONE;
}
