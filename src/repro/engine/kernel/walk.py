"""The kernel's residual walk — one source, three executions.

This module holds the compiled kernel's inner loop: the residual walk of
:mod:`repro.engine.batched` with the dynamic-promotion lane removed
(the kernel always runs promotion-off schedules; results are
bit-identical either way) and every Python object access replaced by
flat-array access on the views built by
:mod:`repro.engine.kernel.state`.

The same function body runs three ways:

* ``interp`` — :func:`kernel_walk` called as plain Python.  Slow, but
  dependency-free; the equivalence suite uses it to pin the walk's
  semantics on any machine.
* ``numba`` — ``numba.njit`` applied to the same function at first use
  (see :func:`get_njit_walk`); the list-of-array arguments are passed as
  ``numba.typed.List`` s of the zero-copy views.
* ``c`` — ``cwalk.c`` is a line-for-line transcription of this function
  (keep them in sync!), compiled on demand by
  :mod:`repro.engine.kernel.cbuild`.

The walk returns ``RC_DONE`` when the phase's schedule and demoted
queues are drained, or bails with an ``RC_BAIL_*`` code — filling the
``out`` record — whenever an access needs protocol machinery that only
exists in Python: a mapping fault, a write to a replicated page, a
fired migration/replication/relocation decision, an S-COMA first-touch
allocation, or an adaptive-policy evaluation point.  All bookkeeping
lives in the
caller-owned arrays, so the caller can service the bail with ordinary
protocol calls and re-enter; the walk resumes exactly where it left
off.
"""

from __future__ import annotations

from repro.engine.kernel.state import (
    CON_BC_CAP, CON_BC_PENALTY, CON_BPP, CON_BUS_ENABLED, CON_BUS_OCC,
    CON_COMPUTE,
    CON_DEP_EVICTED, CON_DEP_INVALIDATED, CON_FAST_UNIT, CON_FIRST_TOUCH,
    CON_HAS_MIGREP, CON_HAS_PAGECACHE, CON_HAS_RNUMA, CON_HYBRID,
    CON_INVAL_COST, CON_L1_HIT, CON_LOCAL_MISS,
    CON_MODE_CCNUMA_REMOTE, CON_MODE_LOCAL_HOME,
    CON_MODE_REPLICA, CON_MR_HYST, CON_MR_MIG, CON_MR_REP, CON_MR_RESET,
    CON_MR_STATIC, CON_MR_THRESHOLD, CON_MSG_ACK, CON_MSG_DATA,
    CON_MSG_INV,
    CON_MSG_MAP_REPLY, CON_MSG_MAP_REQ, CON_MSG_READ,
    CON_MSG_WB, CON_MSG_WRITE, CON_N_SCHED, CON_NET_ENABLED,
    CON_NET_LATENCY, CON_NIC_OCC, CON_NUM_LINES, CON_NUM_NODES,
    CON_NUM_PROCS, CON_REMOTE_MISS, CON_RN_DELAY, CON_RN_STATIC,
    CON_RN_THRESHOLD, CON_SCOMA_ALLOC, CON_SOFT_TRAP, CON_SZ_INV_PAIR,
    CON_SZ_MAP_PAIR, CON_SZ_READ_PAIR, CON_SZ_WB, CON_SZ_WRITE_PAIR,
    FCON_HY_DECAY, FCON_HY_THRESHOLD,
    MUT_BYTES, MUT_CTR_RESETS, MUT_DIR_INV, MUT_DIR_WB, MUT_K,
    MUT_NPLACED, MUT_RESIDUAL,
    NN_BCS_EVICT, NN_BCS_HITS, NN_BCS_INVAL, NN_BCS_MISSES, NN_BUS_FREE,
    NN_BUS_TXN, NN_BUS_WAIT, NN_MAPFAULT, NN_NIC_BUSY, NN_NIC_FREE,
    NN_NIC_MSGS, NN_NIC_WAIT, NN_NS_BCHITS, NN_NS_CAUSE0, NN_NS_LOCAL,
    NN_NS_PCHITS, NN_NS_REMOTE, NN_NS_UPGRADES,
    NN_PCS_FILLS, NN_PCS_HITS, NN_PCS_INVAL, NN_PCS_MISSES, NN_RF_TOTAL,
    OUT_BLOCK, OUT_CLOCK, OUT_EVAL, OUT_FAULT, OUT_HOME, OUT_I, OUT_KIND,
    OUT_MODE,
    OUT_P, OUT_PAGE, OUT_SERVICE, OUT_START, OUT_VERSION, OUT_WAIT,
    OUT_WRITE,
    PP_ACC_CONT, PP_ACC_FAULT, PP_ACC_LOCAL, PP_ACC_REMOTE,
    PP_ACC_UPGRADE, PP_CLOCK,
    PP_EVICT, PP_FAST, PP_HITS, PP_INVAL, PP_MISS, PP_NODE, PP_PTR,
    PP_QCUR, PP_QLEN, PP_UPG,
    RC_BAIL_COLLAPSE, RC_BAIL_DECIDE, RC_BAIL_FAULT, RC_BAIL_MIGRATE,
    RC_BAIL_PAGECACHE, RC_BAIL_RELOCATE, RC_BAIL_REPLICATE,
    RC_DONE,
)


def kernel_walk(con, fcon, mut, pp, nn, msg_delta, out,
                dir_sharers, dir_owner, dir_versions, dir_tracked,
                vm_home, vm_replicated, vm_replica_mask,
                ctr_read, ctr_write, ctr_since, ctr_live_r, ctr_live_w,
                hy_scores, hy_seen,
                departed, pt_modes, pt_tracked, pt_faults,
                bc_blocks, bc_versions, bc_dirty,
                cb, cv, cd, status,
                ent_i, ent_p, ent_probe, ent_blk, ent_wrt, ent_slot, keys,
                rf_counts, pg_totals, pc_res, pc_version, pc_dirty,
                pc_stamp, pc_clock, pc_nvalid, pc_ndirty, pc_fills,
                place_log, q_idx, q_blk):
    """Walk the residual schedule until the phase drains or a bail fires.

    ``cwalk.c`` transcribes this function — edit both together.
    """
    P = con[CON_NUM_PROCS]
    N = con[CON_NUM_NODES]
    bpp = con[CON_BPP]
    compute = con[CON_COMPUTE]
    l1_hit_cost = con[CON_L1_HIT]
    fast_unit = con[CON_FAST_UNIT]
    bus_occ = con[CON_BUS_OCC]
    bus_enabled = con[CON_BUS_ENABLED]
    local_miss_cost = con[CON_LOCAL_MISS]
    remote_miss_cost = con[CON_REMOTE_MISS]
    inval_cost = con[CON_INVAL_COST]
    net_enabled = con[CON_NET_ENABLED]
    net_latency = con[CON_NET_LATENCY]
    nic_occ = con[CON_NIC_OCC]
    sz_read_pair = con[CON_SZ_READ_PAIR]
    sz_write_pair = con[CON_SZ_WRITE_PAIR]
    sz_wb = con[CON_SZ_WB]
    sz_inv_pair = con[CON_SZ_INV_PAIR]
    read_i = con[CON_MSG_READ]
    write_i = con[CON_MSG_WRITE]
    data_i = con[CON_MSG_DATA]
    wb_i = con[CON_MSG_WB]
    inv_i = con[CON_MSG_INV]
    ack_i = con[CON_MSG_ACK]
    has_migrep = con[CON_HAS_MIGREP]
    mr_threshold = con[CON_MR_THRESHOLD]
    mr_migration = con[CON_MR_MIG]
    mr_replication = con[CON_MR_REP]
    mr_reset = con[CON_MR_RESET]
    n_sched = con[CON_N_SCHED]
    bc_cap = con[CON_BC_CAP]
    num_lines = con[CON_NUM_LINES]
    replica_code = con[CON_MODE_REPLICA]
    local_home_code = con[CON_MODE_LOCAL_HOME]
    ccnuma_remote_code = con[CON_MODE_CCNUMA_REMOTE]
    dep_evicted = con[CON_DEP_EVICTED]
    dep_invalidated = con[CON_DEP_INVALIDATED]
    soft_trap = con[CON_SOFT_TRAP]
    map_req_i = con[CON_MSG_MAP_REQ]
    map_reply_i = con[CON_MSG_MAP_REPLY]
    sz_map_pair = con[CON_SZ_MAP_PAIR]
    first_touch_ok = con[CON_FIRST_TOUCH]
    has_rnuma = con[CON_HAS_RNUMA]
    rn_static = con[CON_RN_STATIC]
    rn_threshold = con[CON_RN_THRESHOLD]
    rn_delay = con[CON_RN_DELAY]
    has_pagecache = con[CON_HAS_PAGECACHE]
    scoma_alloc = con[CON_SCOMA_ALLOC]
    hybrid = con[CON_HYBRID]
    mr_static = con[CON_MR_STATIC]
    bc_penalty = con[CON_BC_PENALTY]
    mr_hyst = con[CON_MR_HYST]
    hy_threshold = fcon[FCON_HY_THRESHOLD]
    hy_decay = fcon[FCON_HY_DECAY]

    k = mut[MUT_K]

    # earliest demoted-queue head (interleave key, proc); recomputed only
    # when a queue entry is consumed — queues never grow inside the walk
    nk = -1
    pq = -1
    for p2 in range(P):
        c2 = pp[PP_QCUR * P + p2]
        if c2 < pp[PP_QLEN * P + p2]:
            key2 = q_idx[p2][c2] * P + p2
            if nk < 0 or key2 < nk:
                nk = key2
                pq = p2

    while True:
        if nk >= 0 and (k >= n_sched or nk < keys[k]):
            # earliest pending reference is a demoted one
            p = pq
            c = pp[PP_QCUR * P + p]
            i = q_idx[p][c]
            block = q_blk[p][c]
            pp[PP_QCUR * P + p] = c + 1
            probe = 1
            is_write = 0
            slot = -1
            nk = -1
            pq = -1
            for p2 in range(P):
                c2 = pp[PP_QCUR * P + p2]
                if c2 < pp[PP_QLEN * P + p2]:
                    key2 = q_idx[p2][c2] * P + p2
                    if nk < 0 or key2 < nk:
                        nk = key2
                        pq = p2
        elif k < n_sched:
            i = ent_i[k]
            p = ent_p[k]
            probe = ent_probe[k]
            block = ent_blk[k]
            is_write = ent_wrt[k]
            slot = ent_slot[k]
            k += 1
            if status[p][slot] != 0:
                continue     # first-touch promoted: bulk-consumed via ptr
        else:
            break
        mut[MUT_RESIDUAL] += 1

        # consume the guaranteed hits since this proc's last residual
        n_fast = i - pp[PP_PTR * P + p]
        base = pp[PP_CLOCK * P + p]
        if n_fast > 0:
            base += n_fast * fast_unit
            pp[PP_FAST * P + p] += n_fast
        pp[PP_PTR * P + p] = i + 1
        clock = base + compute
        node = pp[PP_NODE * P + p]
        cb_p = cb[p]
        cv_p = cv[p]
        cd_p = cd[p]
        idx = block % num_lines

        if probe != 0 and cb_p[idx] == block:
            version = dir_versions[block]
            if cv_p[idx] >= version:
                if is_write == 0:
                    pp[PP_HITS * P + p] += 1
                    pp[PP_CLOCK * P + p] = clock + l1_hit_cost
                    continue
                if cd_p[idx] != 0:
                    pp[PP_HITS * P + p] += 1
                    pp[PP_CLOCK * P + p] = clock + l1_hit_cost
                    continue
                # write upgrade: invalidate other sharers
                pp[PP_UPG * P + p] += 1
                page = block // bpp
                if bus_enabled != 0:
                    free = nn[NN_BUS_FREE * N + node]
                    start = clock if clock >= free else free
                    nn[NN_BUS_WAIT * N + node] += start - clock
                    nn[NN_BUS_FREE * N + node] = start + bus_occ
                else:
                    start = clock
                nn[NN_BUS_TXN * N + node] += 1
                wait = start - clock
                # inlined base handle_upgrade: directory write plus a
                # control round trip when the home is remote
                nn[NN_NS_UPGRADES * N + node] += 1
                home = vm_home[page]
                dir_tracked[block] = 1
                bit = 1 << node
                others = dir_sharers[block] & ~bit
                o = dir_owner[block]
                if o >= 0 and o != node:
                    mut[MUT_DIR_WB] += 1
                dir_sharers[block] = bit
                dir_owner[block] = node
                new_version = dir_versions[block] + 1
                dir_versions[block] = new_version
                extra = 0
                if others != 0:
                    invals = 0
                    tmp = others
                    while tmp != 0:
                        tmp &= tmp - 1
                        invals += 1
                    mut[MUT_DIR_INV] += invals
                    extra = invals * inval_cost
                    msg_delta[inv_i] += invals
                    msg_delta[ack_i] += invals
                    mut[MUT_BYTES] += invals * sz_inv_pair
                    nidx = 0
                    while others != 0:
                        if others & 1:
                            departed[nidx][block] = dep_invalidated
                        others >>= 1
                        nidx += 1
                if home < 0 or home == node:
                    latency = local_miss_cost + extra
                else:
                    msg_delta[write_i] += 1
                    msg_delta[data_i] += 1
                    mut[MUT_BYTES] += sz_write_pair
                    occ2 = nic_occ + nic_occ
                    if net_enabled == 0:
                        nn[NN_NIC_MSGS * N + node] += 2
                        nn[NN_NIC_MSGS * N + home] += 2
                        nn[NN_NIC_BUSY * N + node] += occ2
                        nn[NN_NIC_BUSY * N + home] += occ2
                        contention = 0
                    else:
                        free = nn[NN_NIC_FREE * N + node]
                        s1 = start if start >= free else free
                        w1 = s1 - start
                        nn[NN_NIC_FREE * N + node] = s1 + nic_occ
                        t = s1 + nic_occ + net_latency
                        free = nn[NN_NIC_FREE * N + home]
                        s2 = t if t >= free else free
                        w2 = s2 - t
                        nn[NN_NIC_FREE * N + home] = s2 + nic_occ
                        t2 = s2 + nic_occ
                        free = nn[NN_NIC_FREE * N + home]
                        s3 = t2 if t2 >= free else free
                        w3 = s3 - t2
                        nn[NN_NIC_FREE * N + home] = s3 + nic_occ
                        t3 = s3 + nic_occ + net_latency
                        free = nn[NN_NIC_FREE * N + node]
                        s4 = t3 if t3 >= free else free
                        w4 = s4 - t3
                        nn[NN_NIC_FREE * N + node] = s4 + nic_occ
                        nn[NN_NIC_MSGS * N + node] += 2
                        nn[NN_NIC_MSGS * N + home] += 2
                        nn[NN_NIC_BUSY * N + node] += occ2
                        nn[NN_NIC_BUSY * N + home] += occ2
                        nn[NN_NIC_WAIT * N + node] += w1 + w4
                        nn[NN_NIC_WAIT * N + home] += w2 + w3
                        contention = w1 + w2 + w3 + w4
                    latency = remote_miss_cost + contention + extra
                # inlined touch_write (the probed line holds `block`)
                cd_p[idx] = 1
                if new_version > cv_p[idx]:
                    cv_p[idx] = new_version
                pp[PP_ACC_CONT * P + p] += wait
                pp[PP_ACC_UPGRADE * P + p] += latency
                pp[PP_CLOCK * P + p] = clock + wait + latency
                continue
            # stale copy: drop it so the fill below refreshes it
            cb_p[idx] = -1
            cd_p[idx] = 0
            pp[PP_INVAL * P + p] += 1

        # miss path (classified miss, absent line, or stale drop)
        pp[PP_MISS * P + p] += 1
        page = block // bpp
        if bus_enabled != 0:
            free = nn[NN_BUS_FREE * N + node]
            start = clock if clock >= free else free
            nn[NN_BUS_WAIT * N + node] += start - clock
            nn[NN_BUS_FREE * N + node] = start + bus_occ
        else:
            start = clock
        nn[NN_BUS_TXN * N + node] += 1
        wait = start - clock

        home = vm_home[page]
        mode_c = pt_modes[node][page] if home >= 0 else 0
        fault = 0
        if mode_c == 0:
            # mapping fault (inlined ensure_mapped).  First touches under
            # a configured placement policy bail — only Python knows the
            # policy; first-touch placement itself and remap faults on
            # already-placed pages run right here.
            if home < 0 and first_touch_ok == 0:
                mut[MUT_K] = k
                out[OUT_KIND] = RC_BAIL_FAULT
                out[OUT_P] = p
                out[OUT_I] = i
                out[OUT_BLOCK] = block
                out[OUT_PAGE] = page
                out[OUT_WRITE] = is_write
                out[OUT_START] = start
                out[OUT_WAIT] = wait
                out[OUT_CLOCK] = clock
                out[OUT_HOME] = home
                out[OUT_MODE] = mode_c
                out[OUT_FAULT] = 0
                return RC_BAIL_FAULT
            if home < 0:
                # first touch: home the page at the requester; the
                # PageRecord side is deferred to the placement log
                home = node
                vm_home[page] = node
                place_log[mut[MUT_NPLACED]] = (page << 6) | node
                mut[MUT_NPLACED] += 1
            fault = soft_trap
            nn[NN_MAPFAULT * N + node] += 1
            pt_faults[node][page] += 1
            pt_tracked[node][page] = 1
            if home == node:
                mode_c = local_home_code
            else:
                # map request/reply, both one-way messages sent at t=0
                mode_c = ccnuma_remote_code
                msg_delta[map_req_i] += 1
                msg_delta[map_reply_i] += 1
                mut[MUT_BYTES] += sz_map_pair
                occ2 = nic_occ + nic_occ
                if net_enabled == 0:
                    nn[NN_NIC_MSGS * N + node] += 2
                    nn[NN_NIC_MSGS * N + home] += 2
                    nn[NN_NIC_BUSY * N + node] += occ2
                    nn[NN_NIC_BUSY * N + home] += occ2
                else:
                    free = nn[NN_NIC_FREE * N + node]
                    s1 = 0 if 0 >= free else free
                    nn[NN_NIC_WAIT * N + node] += s1
                    nn[NN_NIC_FREE * N + node] = s1 + nic_occ
                    t = s1 + nic_occ + net_latency
                    free = nn[NN_NIC_FREE * N + home]
                    s2 = t if t >= free else free
                    nn[NN_NIC_WAIT * N + home] += s2 - t
                    nn[NN_NIC_FREE * N + home] = s2 + nic_occ
                    free = nn[NN_NIC_FREE * N + home]
                    s3 = 0 if 0 >= free else free
                    nn[NN_NIC_WAIT * N + home] += s3
                    nn[NN_NIC_FREE * N + home] = s3 + nic_occ
                    t3 = s3 + nic_occ + net_latency
                    free = nn[NN_NIC_FREE * N + node]
                    s4 = t3 if t3 >= free else free
                    nn[NN_NIC_WAIT * N + node] += s4 - t3
                    nn[NN_NIC_FREE * N + node] = s4 + nic_occ
                    nn[NN_NIC_MSGS * N + node] += 2
                    nn[NN_NIC_MSGS * N + home] += 2
                    nn[NN_NIC_BUSY * N + node] += occ2
                    nn[NN_NIC_BUSY * N + home] += occ2
            pt_modes[node][page] = mode_c

        if mode_c == local_home_code or home == node:
            # local fill (base body; MigRep adds the home-side counter
            # bump — inlined from MigRepProtocol._local_fill)
            nn[NN_NS_LOCAL * N + node] += 1
            dir_tracked[block] = 1
            if is_write != 0:
                bit = 1 << node
                others = dir_sharers[block] & ~bit
                o = dir_owner[block]
                if o >= 0 and o != node:
                    mut[MUT_DIR_WB] += 1
                dir_sharers[block] = bit
                dir_owner[block] = node
                version = dir_versions[block] + 1
                dir_versions[block] = version
                extra = 0
                if others != 0:
                    invals = 0
                    tmp = others
                    while tmp != 0:
                        tmp &= tmp - 1
                        invals += 1
                    mut[MUT_DIR_INV] += invals
                    extra = invals * inval_cost
                    msg_delta[inv_i] += invals
                    msg_delta[ack_i] += invals
                    mut[MUT_BYTES] += invals * sz_inv_pair
                    nidx = 0
                    while others != 0:
                        if others & 1:
                            departed[nidx][block] = dep_invalidated
                        others >>= 1
                        nidx += 1
                service = local_miss_cost + extra
            else:
                dir_sharers[block] |= 1 << node
                version = dir_versions[block]
                service = local_miss_cost
            if has_migrep != 0 and home == node:
                # home-side miss feeds the page's counters too
                cbase = page * N
                if is_write != 0:
                    ctr_live_w[page] = 1
                    ctr_write[cbase + node] += 1
                else:
                    ctr_live_r[page] = 1
                    ctr_read[cbase + node] += 1
                total = ctr_since[page] + 1
                if total >= mr_reset:
                    for nx in range(N):
                        ctr_read[cbase + nx] = 0
                        ctr_write[cbase + nx] = 0
                    ctr_since[page] = 0
                    ctr_live_r[page] = 0
                    ctr_live_w[page] = 0
                    mut[MUT_CTR_RESETS] += 1
                else:
                    ctr_since[page] = total
            # inlined fill + eviction notification (local tail)
            old = cb_p[idx]
            cb_p[idx] = block
            cv_p[idx] = version
            if old >= 0 and old != block:
                pp[PP_EVICT * P + p] += 1
                cd_p[idx] = is_write
                # inlined base note_l1_eviction (page-cache-resident
                # victims are still locally backed: no departure)
                if bc_blocks[node][old % bc_cap] != old:
                    vpage = old // bpp
                    if has_pagecache == 0 or pc_res[node][vpage] == 0:
                        vh = vm_home[vpage]
                        if vh >= 0 and vh != node:
                            departed[node][old] = dep_evicted
            else:
                cd_p[idx] = is_write
            pp[PP_ACC_CONT * P + p] += wait
            pp[PP_ACC_LOCAL * P + p] += service
            pp[PP_ACC_FAULT * P + p] += fault
            pp[PP_CLOCK * P + p] = clock + wait + service + fault
            continue

        # ---- remote lane ----
        if has_migrep != 0:
            if is_write != 0 and vm_replicated[page] != 0:
                # write to a replicated page: collapse via the protocol
                mut[MUT_K] = k
                out[OUT_KIND] = RC_BAIL_COLLAPSE
                out[OUT_P] = p
                out[OUT_I] = i
                out[OUT_BLOCK] = block
                out[OUT_PAGE] = page
                out[OUT_WRITE] = is_write
                out[OUT_START] = start
                out[OUT_WAIT] = wait
                out[OUT_CLOCK] = clock
                out[OUT_HOME] = home
                out[OUT_MODE] = mode_c
                out[OUT_FAULT] = fault
                return RC_BAIL_COLLAPSE
            if is_write == 0 and mode_c == replica_code:
                # read served by a local replica: local memory access
                nn[NN_NS_LOCAL * N + node] += 1
                dir_tracked[block] = 1
                dir_sharers[block] |= 1 << node
                version = dir_versions[block]
                service = local_miss_cost
                # generic tail (remote=0, no pageop)
                old = cb_p[idx]
                if old >= 0 and old != block:
                    pp[PP_EVICT * P + p] += 1
                    cb_p[idx] = block
                    cv_p[idx] = version
                    cd_p[idx] = is_write
                    if bc_blocks[node][old % bc_cap] != old:
                        vpage = old // bpp
                        if has_pagecache == 0 or pc_res[node][vpage] == 0:
                            vh = vm_home[vpage]
                            if vh >= 0 and vh != node:
                                departed[node][old] = dep_evicted
                else:
                    cb_p[idx] = block
                    cv_p[idx] = version
                    cd_p[idx] = is_write
                pp[PP_ACC_CONT * P + p] += wait
                pp[PP_ACC_LOCAL * P + p] += service
                pp[PP_ACC_FAULT * P + p] += fault
                pp[PP_CLOCK * P + p] = clock + wait + service + fault
                continue

        # ---- page-cache probe lane ----
        if has_pagecache != 0:
            if pc_res[node][page] != 0:
                # transcription of RNUMAProtocol._scoma_fetch on the flat
                # page-cache arrays (block tags live at the global block
                # index); residency itself only ever changes in Python
                pc_clock[node][0] += 1
                pc_stamp[node][page] = pc_clock[node][0]
                version = dir_versions[block]
                pcv_n = pc_version[node]
                pcd_n = pc_dirty[node]
                stored = pcv_n[block]
                pc_hit = 0
                if stored >= 0:
                    if stored >= version:
                        pc_hit = 1
                    else:
                        # stale block: invalidate and refetch below
                        pcv_n[block] = -1
                        pc_nvalid[node][page] -= 1
                        if pcd_n[block] != 0:
                            pcd_n[block] = 0
                            pc_ndirty[node][page] -= 1
                        nn[NN_PCS_INVAL * N + node] += 1
                if pc_hit != 0:
                    nn[NN_PCS_HITS * N + node] += 1
                    nn[NN_NS_PCHITS * N + node] += 1
                    remote = 0
                    if is_write != 0:
                        dir_tracked[block] = 1
                        bit = 1 << node
                        others = dir_sharers[block] & ~bit
                        o = dir_owner[block]
                        if o >= 0 and o != node:
                            mut[MUT_DIR_WB] += 1
                        dir_sharers[block] = bit
                        dir_owner[block] = node
                        version = dir_versions[block] + 1
                        dir_versions[block] = version
                        extra = 0
                        if others != 0:
                            invals = 0
                            tmp = others
                            while tmp != 0:
                                tmp &= tmp - 1
                                invals += 1
                            mut[MUT_DIR_INV] += invals
                            extra = invals * inval_cost
                            msg_delta[inv_i] += invals
                            msg_delta[ack_i] += invals
                            mut[MUT_BYTES] += invals * sz_inv_pair
                            nidx = 0
                            while others != 0:
                                if others & 1:
                                    departed[nidx][block] = dep_invalidated
                                others >>= 1
                                nidx += 1
                        # inlined PageCache.write_block (the tag is valid)
                        if version > stored:
                            pcv_n[block] = version
                        if pcd_n[block] == 0:
                            pcd_n[block] = 1
                            pc_ndirty[node][page] += 1
                        service = local_miss_cost + extra
                    else:
                        service = local_miss_cost
                else:
                    nn[NN_PCS_MISSES * N + node] += 1
                    remote = 1
                    # inlined _remote_fill: classification, traffic, NIC
                    # contention and the directory side of the fill
                    reason = departed[node][block]
                    if reason != 0:
                        departed[node][block] = 0
                    nn[NN_NS_REMOTE * N + node] += 1
                    nn[(NN_NS_CAUSE0 + reason) * N + node] += 1
                    if is_write != 0:
                        msg_delta[write_i] += 1
                        msg_delta[data_i] += 1
                        mut[MUT_BYTES] += sz_write_pair
                    else:
                        msg_delta[read_i] += 1
                        msg_delta[data_i] += 1
                        mut[MUT_BYTES] += sz_read_pair
                    occ2 = nic_occ + nic_occ
                    if net_enabled == 0:
                        nn[NN_NIC_MSGS * N + node] += 2
                        nn[NN_NIC_MSGS * N + home] += 2
                        nn[NN_NIC_BUSY * N + node] += occ2
                        nn[NN_NIC_BUSY * N + home] += occ2
                        contention = 0
                    else:
                        free = nn[NN_NIC_FREE * N + node]
                        s1 = start if start >= free else free
                        w1 = s1 - start
                        nn[NN_NIC_FREE * N + node] = s1 + nic_occ
                        t = s1 + nic_occ + net_latency
                        free = nn[NN_NIC_FREE * N + home]
                        s2 = t if t >= free else free
                        w2 = s2 - t
                        nn[NN_NIC_FREE * N + home] = s2 + nic_occ
                        t2 = s2 + nic_occ
                        free = nn[NN_NIC_FREE * N + home]
                        s3 = t2 if t2 >= free else free
                        w3 = s3 - t2
                        nn[NN_NIC_FREE * N + home] = s3 + nic_occ
                        t3 = s3 + nic_occ + net_latency
                        free = nn[NN_NIC_FREE * N + node]
                        s4 = t3 if t3 >= free else free
                        w4 = s4 - t3
                        nn[NN_NIC_FREE * N + node] = s4 + nic_occ
                        nn[NN_NIC_MSGS * N + node] += 2
                        nn[NN_NIC_MSGS * N + home] += 2
                        nn[NN_NIC_BUSY * N + node] += occ2
                        nn[NN_NIC_BUSY * N + home] += occ2
                        nn[NN_NIC_WAIT * N + node] += w1 + w4
                        nn[NN_NIC_WAIT * N + home] += w2 + w3
                        contention = w1 + w2 + w3 + w4
                    if is_write != 0:
                        dir_tracked[block] = 1
                        bit = 1 << node
                        others = dir_sharers[block] & ~bit
                        o = dir_owner[block]
                        if o >= 0 and o != node:
                            mut[MUT_DIR_WB] += 1
                        dir_sharers[block] = bit
                        dir_owner[block] = node
                        version = dir_versions[block] + 1
                        dir_versions[block] = version
                        extra = 0
                        if others != 0:
                            invals = 0
                            tmp = others
                            while tmp != 0:
                                tmp &= tmp - 1
                                invals += 1
                            mut[MUT_DIR_INV] += invals
                            extra = invals * inval_cost
                            msg_delta[inv_i] += invals
                            msg_delta[ack_i] += invals
                            mut[MUT_BYTES] += invals * sz_inv_pair
                            nidx = 0
                            while others != 0:
                                if others & 1:
                                    departed[nidx][block] = dep_invalidated
                                others >>= 1
                                nidx += 1
                    else:
                        dir_tracked[block] = 1
                        dir_sharers[block] |= 1 << node
                        version = dir_versions[block]
                        extra = 0
                    service = remote_miss_cost + contention + extra
                    # inlined PageCache.fill_block
                    if pcv_n[block] < 0:
                        pc_nvalid[node][page] += 1
                    pcv_n[block] = version
                    if is_write != 0 and pcd_n[block] == 0:
                        pcd_n[block] = 1
                        pc_ndirty[node][page] += 1
                    pc_fills[node][page] += 1
                    nn[NN_PCS_FILLS * N + node] += 1
                    # requester-side R-NUMA miss total; the hybrid also
                    # bumps the home-side MigRep counters (its policy
                    # evaluation returns NONE for resident pages)
                    pg_totals[page] += 1
                    if has_migrep != 0:
                        cbase = page * N
                        if is_write != 0:
                            ctr_live_w[page] = 1
                            ctr_write[cbase + node] += 1
                        else:
                            ctr_live_r[page] = 1
                            ctr_read[cbase + node] += 1
                        total = ctr_since[page] + 1
                        if total >= mr_reset:
                            for nx in range(N):
                                ctr_read[cbase + nx] = 0
                                ctr_write[cbase + nx] = 0
                            ctr_since[page] = 0
                            ctr_live_r[page] = 0
                            ctr_live_w[page] = 0
                            mut[MUT_CTR_RESETS] += 1
                        else:
                            ctr_since[page] = total
                # generic tail (page-cache lane copy)
                old = cb_p[idx]
                if old >= 0 and old != block:
                    pp[PP_EVICT * P + p] += 1
                    cb_p[idx] = block
                    cv_p[idx] = version
                    cd_p[idx] = is_write
                    if bc_blocks[node][old % bc_cap] != old:
                        vpage = old // bpp
                        if has_pagecache == 0 or pc_res[node][vpage] == 0:
                            vh = vm_home[vpage]
                            if vh >= 0 and vh != node:
                                departed[node][old] = dep_evicted
                else:
                    cb_p[idx] = block
                    cv_p[idx] = version
                    cd_p[idx] = is_write
                pp[PP_ACC_CONT * P + p] += wait
                if remote != 0:
                    pp[PP_ACC_REMOTE * P + p] += service
                else:
                    pp[PP_ACC_LOCAL * P + p] += service
                pp[PP_ACC_FAULT * P + p] += fault
                pp[PP_CLOCK * P + p] = clock + wait + service + fault
                continue
            if scoma_alloc != 0:
                # S-COMA allocates a local frame on the first remote
                # miss; the allocation (victim flush, relocation engine)
                # and the whole service live in Python — bail before any
                # accounting so the driver can run _service_remote_page
                mut[MUT_K] = k
                out[OUT_KIND] = RC_BAIL_PAGECACHE
                out[OUT_P] = p
                out[OUT_I] = i
                out[OUT_BLOCK] = block
                out[OUT_PAGE] = page
                out[OUT_WRITE] = is_write
                out[OUT_START] = start
                out[OUT_WAIT] = wait
                out[OUT_CLOCK] = clock
                out[OUT_HOME] = home
                out[OUT_MODE] = mode_c
                out[OUT_FAULT] = fault
                return RC_BAIL_PAGECACHE

        # inlined CC-NUMA block-cache / remote-fetch lane
        version = dir_versions[block]
        bidx = block % bc_cap
        bb = bc_blocks[node]
        bv = bc_versions[node]
        bd = bc_dirty[node]
        hit = 0
        if bb[bidx] == block:
            if bv[bidx] >= version:
                hit = 1
            else:
                bb[bidx] = -1
                bd[bidx] = 0
                nn[NN_BCS_INVAL * N + node] += 1
        if hit != 0:
            nn[NN_BCS_HITS * N + node] += 1
            nn[NN_NS_BCHITS * N + node] += 1
            remote = 0
            if is_write != 0:
                dir_tracked[block] = 1
                bit = 1 << node
                others = dir_sharers[block] & ~bit
                o = dir_owner[block]
                if o >= 0 and o != node:
                    mut[MUT_DIR_WB] += 1
                dir_sharers[block] = bit
                dir_owner[block] = node
                version = dir_versions[block] + 1
                dir_versions[block] = version
                extra = 0
                if others != 0:
                    invals = 0
                    tmp = others
                    while tmp != 0:
                        tmp &= tmp - 1
                        invals += 1
                    mut[MUT_DIR_INV] += invals
                    extra = invals * inval_cost
                    msg_delta[inv_i] += invals
                    msg_delta[ack_i] += invals
                    mut[MUT_BYTES] += invals * sz_inv_pair
                    nidx = 0
                    while others != 0:
                        if others & 1:
                            departed[nidx][block] = dep_invalidated
                        others >>= 1
                        nidx += 1
                if version > bv[bidx]:
                    bv[bidx] = version
                bd[bidx] = 1
                service = local_miss_cost + extra + bc_penalty
            else:
                service = local_miss_cost + bc_penalty
        else:
            nn[NN_BCS_MISSES * N + node] += 1
            remote = 1
            # miss classification (reason doubles as the counter index)
            reason = departed[node][block]
            if reason != 0:
                departed[node][block] = 0
            nn[NN_NS_REMOTE * N + node] += 1
            nn[(NN_NS_CAUSE0 + reason) * N + node] += 1
            # request/reply traffic + NIC contention
            if is_write != 0:
                msg_delta[write_i] += 1
                msg_delta[data_i] += 1
                mut[MUT_BYTES] += sz_write_pair
            else:
                msg_delta[read_i] += 1
                msg_delta[data_i] += 1
                mut[MUT_BYTES] += sz_read_pair
            occ2 = nic_occ + nic_occ
            if net_enabled == 0:
                nn[NN_NIC_MSGS * N + node] += 2
                nn[NN_NIC_MSGS * N + home] += 2
                nn[NN_NIC_BUSY * N + node] += occ2
                nn[NN_NIC_BUSY * N + home] += occ2
                contention = 0
            else:
                free = nn[NN_NIC_FREE * N + node]
                s1 = start if start >= free else free
                w1 = s1 - start
                nn[NN_NIC_FREE * N + node] = s1 + nic_occ
                t = s1 + nic_occ + net_latency
                free = nn[NN_NIC_FREE * N + home]
                s2 = t if t >= free else free
                w2 = s2 - t
                nn[NN_NIC_FREE * N + home] = s2 + nic_occ
                t2 = s2 + nic_occ
                free = nn[NN_NIC_FREE * N + home]
                s3 = t2 if t2 >= free else free
                w3 = s3 - t2
                nn[NN_NIC_FREE * N + home] = s3 + nic_occ
                t3 = s3 + nic_occ + net_latency
                free = nn[NN_NIC_FREE * N + node]
                s4 = t3 if t3 >= free else free
                w4 = s4 - t3
                nn[NN_NIC_FREE * N + node] = s4 + nic_occ
                nn[NN_NIC_MSGS * N + node] += 2
                nn[NN_NIC_MSGS * N + home] += 2
                nn[NN_NIC_BUSY * N + node] += occ2
                nn[NN_NIC_BUSY * N + home] += occ2
                nn[NN_NIC_WAIT * N + node] += w1 + w4
                nn[NN_NIC_WAIT * N + home] += w2 + w3
                contention = w1 + w2 + w3 + w4
            # directory side of the fill
            if is_write != 0:
                dir_tracked[block] = 1
                bit = 1 << node
                others = dir_sharers[block] & ~bit
                o = dir_owner[block]
                if o >= 0 and o != node:
                    mut[MUT_DIR_WB] += 1
                dir_sharers[block] = bit
                dir_owner[block] = node
                version = dir_versions[block] + 1
                dir_versions[block] = version
                extra = 0
                if others != 0:
                    invals = 0
                    tmp = others
                    while tmp != 0:
                        tmp &= tmp - 1
                        invals += 1
                    mut[MUT_DIR_INV] += invals
                    extra = invals * inval_cost
                    msg_delta[inv_i] += invals
                    msg_delta[ack_i] += invals
                    mut[MUT_BYTES] += invals * sz_inv_pair
                    nidx = 0
                    while others != 0:
                        if others & 1:
                            departed[nidx][block] = dep_invalidated
                        others >>= 1
                        nidx += 1
            else:
                dir_tracked[block] = 1
                dir_sharers[block] |= 1 << node
                version = dir_versions[block]
                extra = 0
            service = remote_miss_cost + contention + extra + bc_penalty
            # inlined BlockCache.fill
            old = bb[bidx]
            old_dirty = bd[bidx]
            bb[bidx] = block
            bv[bidx] = version
            bd[bidx] = is_write
            if old >= 0 and old != block:
                nn[NN_BCS_EVICT * N + node] += 1
                departed[node][old] = dep_evicted
                if dir_tracked[old] != 0:
                    dir_sharers[old] &= ~(1 << node)
                    if dir_owner[old] == node:
                        dir_owner[old] = -1
                        mut[MUT_DIR_WB] += 1
                if old_dirty != 0:
                    vpage = old // bpp
                    vh = vm_home[vpage]
                    if vh >= 0 and vh != node:
                        msg_delta[wb_i] += 1
                        mut[MUT_BYTES] += sz_wb
            reloc = 0
            eval_mask = 0
            if has_rnuma != 0:
                # requester-side R-NUMA accounting: the per-page miss
                # total always, the refetch counter only when this fetch
                # re-acquired a block lost to capacity replacement
                pg_totals[page] += 1
                if reason == dep_evicted:
                    rfn = rf_counts[node]
                    rfc = rfn[page] + 1
                    rfn[page] = rfc
                    nn[NN_RF_TOTAL * N + node] += 1
                    if rn_static != 0:
                        if ((rn_delay == 0 or pg_totals[page] >= rn_delay)
                                and rfc > rn_threshold):
                            reloc = 1
                    else:
                        eval_mask = 1
            if has_migrep != 0:
                # home-side counter bump + policy decision (remote only)
                cbase = page * N
                if is_write != 0:
                    ctr_live_w[page] = 1
                    ctr_write[cbase + node] += 1
                else:
                    ctr_live_r[page] = 1
                    ctr_read[cbase + node] += 1
                total = ctr_since[page] + 1
                if total >= mr_reset:
                    for nx in range(N):
                        ctr_read[cbase + nx] = 0
                        ctr_write[cbase + nx] = 0
                    ctr_since[page] = 0
                    ctr_live_r[page] = 0
                    ctr_live_w[page] = 0
                    mut[MUT_CTR_RESETS] += 1
                else:
                    ctr_since[page] = total
                if reloc == 0:
                    if mr_static != 0 and eval_mask == 0:
                        if (vm_replica_mask[page] >> node) & 1 == 0:
                            decided = 0
                            if mr_replication != 0:
                                remote_writes = -ctr_write[cbase + home]
                                for nx in range(N):
                                    remote_writes += ctr_write[cbase + nx]
                                if (remote_writes == 0
                                        and ctr_read[cbase + node] > mr_threshold):
                                    decided = RC_BAIL_REPLICATE
                            if decided == 0 and mr_migration != 0:
                                req_m = ctr_read[cbase + node] + ctr_write[cbase + node]
                                home_m = ctr_read[cbase + home] + ctr_write[cbase + home]
                                if req_m - home_m > mr_threshold:
                                    decided = RC_BAIL_MIGRATE
                            if decided != 0:
                                # the fill is complete; only the page
                                # operation needs the MigrationEngine
                                mut[MUT_K] = k
                                out[OUT_KIND] = decided
                                out[OUT_P] = p
                                out[OUT_I] = i
                                out[OUT_BLOCK] = block
                                out[OUT_PAGE] = page
                                out[OUT_WRITE] = is_write
                                out[OUT_START] = start
                                out[OUT_WAIT] = wait
                                out[OUT_CLOCK] = clock
                                out[OUT_HOME] = home
                                out[OUT_MODE] = mode_c
                                out[OUT_SERVICE] = service
                                out[OUT_VERSION] = version
                                out[OUT_FAULT] = fault
                                return decided
                    elif mr_hyst != 0 and eval_mask == 0:
                        # inlined HysteresisMigRepPolicy.evaluate on the
                        # shared dense score rows (requester != home on
                        # this path; zero rows read identically to rows
                        # the Python side has never touched)
                        if (vm_replica_mask[page] >> node) & 1 == 0:
                            for nx in range(N):
                                hy_scores[cbase + nx] *= hy_decay
                            hy_scores[cbase + node] += 1.0
                            home_total = (ctr_read[cbase + home]
                                          + ctr_write[cbase + home])
                            hdelta = home_total - hy_seen[page]
                            if hdelta != 0:
                                if hdelta < 0:
                                    hy_scores[cbase + home] += home_total
                                else:
                                    hy_scores[cbase + home] += hdelta
                                hy_seen[page] = home_total
                            decided = 0
                            if mr_replication != 0:
                                remote_writes = -ctr_write[cbase + home]
                                for nx in range(N):
                                    remote_writes += ctr_write[cbase + nx]
                                if (remote_writes == 0
                                        and hy_scores[cbase + node] > hy_threshold):
                                    decided = RC_BAIL_REPLICATE
                            if decided == 0 and mr_migration != 0:
                                if (hy_scores[cbase + node]
                                        - hy_scores[cbase + home] > hy_threshold):
                                    decided = RC_BAIL_MIGRATE
                            if decided != 0:
                                # the policy forgets the page before the
                                # fired decision runs (MigrationEngine
                                # services the bail)
                                for nx in range(N):
                                    hy_scores[cbase + nx] = 0.0
                                hy_seen[page] = 0
                                mut[MUT_K] = k
                                out[OUT_KIND] = decided
                                out[OUT_P] = p
                                out[OUT_I] = i
                                out[OUT_BLOCK] = block
                                out[OUT_PAGE] = page
                                out[OUT_WRITE] = is_write
                                out[OUT_START] = start
                                out[OUT_WAIT] = wait
                                out[OUT_CLOCK] = clock
                                out[OUT_HOME] = home
                                out[OUT_MODE] = mode_c
                                out[OUT_SERVICE] = service
                                out[OUT_VERSION] = version
                                out[OUT_FAULT] = fault
                                return decided
                    elif (hybrid != 0
                          or (vm_replica_mask[page] >> node) & 1 == 0):
                        # adaptive MigRep policy — or a static one in the
                        # hybrid with an adaptive R-NUMA evaluation
                        # pending (a relocation would change its answer):
                        # defer to the Python evaluation point
                        eval_mask |= 2
            if reloc != 0:
                # fired static R-NUMA decision: the fill is complete,
                # the relocation itself runs in the RelocationEngine
                mut[MUT_K] = k
                out[OUT_KIND] = RC_BAIL_RELOCATE
                out[OUT_P] = p
                out[OUT_I] = i
                out[OUT_BLOCK] = block
                out[OUT_PAGE] = page
                out[OUT_WRITE] = is_write
                out[OUT_START] = start
                out[OUT_WAIT] = wait
                out[OUT_CLOCK] = clock
                out[OUT_HOME] = home
                out[OUT_MODE] = mode_c
                out[OUT_SERVICE] = service
                out[OUT_VERSION] = version
                out[OUT_FAULT] = fault
                return RC_BAIL_RELOCATE
            if eval_mask != 0:
                # adaptive policy evaluation point: the fill is already
                # accounted; Python evaluates (and maybe performs) the
                # decisions named by the mask (1 = R-NUMA, 2 = MigRep)
                mut[MUT_K] = k
                out[OUT_KIND] = RC_BAIL_DECIDE
                out[OUT_P] = p
                out[OUT_I] = i
                out[OUT_BLOCK] = block
                out[OUT_PAGE] = page
                out[OUT_WRITE] = is_write
                out[OUT_START] = start
                out[OUT_WAIT] = wait
                out[OUT_CLOCK] = clock
                out[OUT_HOME] = home
                out[OUT_MODE] = mode_c
                out[OUT_SERVICE] = service
                out[OUT_VERSION] = version
                out[OUT_FAULT] = fault
                out[OUT_EVAL] = eval_mask
                return RC_BAIL_DECIDE

        # generic tail: L1 fill + eviction notification
        old = cb_p[idx]
        if old >= 0 and old != block:
            pp[PP_EVICT * P + p] += 1
            cb_p[idx] = block
            cv_p[idx] = version
            cd_p[idx] = is_write
            if bc_blocks[node][old % bc_cap] != old:
                vpage = old // bpp
                if has_pagecache == 0 or pc_res[node][vpage] == 0:
                    vh = vm_home[vpage]
                    if vh >= 0 and vh != node:
                        departed[node][old] = dep_evicted
        else:
            cb_p[idx] = block
            cv_p[idx] = version
            cd_p[idx] = is_write
        pp[PP_ACC_CONT * P + p] += wait
        if remote != 0:
            pp[PP_ACC_REMOTE * P + p] += service
        else:
            pp[PP_ACC_LOCAL * P + p] += service
        pp[PP_ACC_FAULT * P + p] += fault
        pp[PP_CLOCK * P + p] = clock + wait + service + fault
        continue

    mut[MUT_K] = k
    return RC_DONE


_njit_walk = None
_njit_failed = False


def get_njit_walk():
    """The numba-compiled walk, or ``None`` when numba is unavailable.

    Compilation happens lazily on first call (it costs seconds) and the
    result — success or failure — is cached for the process.
    """
    global _njit_walk, _njit_failed
    if _njit_walk is not None or _njit_failed:
        return _njit_walk
    try:  # pragma: no cover - exercised only where numba is installed
        import numba

        _njit_walk = numba.njit(cache=True, fastmath=False)(kernel_walk)
    except Exception:
        _njit_failed = True
        _njit_walk = None
    return _njit_walk
