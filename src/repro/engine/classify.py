"""Vectorised per-phase reference classification for the batched engine.

The batched engine splits each phase's references into three classes:

``CLS_FAST``
    *Guaranteed* L1 read hits.  They are never executed individually: the
    engine resolves them in bulk (their cycle costs are pure array
    arithmetic, their only side effect is the cache hit counter).
``CLS_PROBE``
    References that *might* hit (the line may hold the block, but the
    outcome depends on runtime state such as version freshness or the
    dirty bit).  The engine performs the exact single-reference probe.
``CLS_MISS``
    References whose line provably cannot hold the block — the engine
    skips the probe entirely and goes straight to the miss path.

The classification is *sound* with respect to the reference interpreter
(:mod:`repro.engine.legacy`): a ``CLS_FAST`` reference resolves to a read
hit under the interpreter, and a ``CLS_MISS`` reference to a plain miss
(no stale-line invalidation).  The argument, in terms of the simulator's
lazy-invalidation model:

1.  **Occupancy is self-determined.**  After a processor references block
    ``B``, its direct-mapped line ``B % lines`` holds ``B`` — on a hit it
    already did, on a stale hit or miss the subsequent fill installs it.
    Hence "the previous own reference to this line was the same block"
    (an *occupancy hit*) and "it was a different block" (an *occupancy
    miss*) are computable per processor without simulating other
    processors.  External page-operation shootdowns can only *drop*
    lines, so they can turn an occupancy hit into a miss but never the
    reverse — ``CLS_MISS`` is unconditionally sound, while ``CLS_FAST``
    is revalidated through the cache ``watch`` hook (the engine demotes
    pending fast references to ``CLS_PROBE`` when a shootdown fires).

2.  **Freshness is bounded by writes.**  A cached copy only goes stale
    when the block's directory version is bumped, and versions are bumped
    exclusively by *writes* (write fills and upgrades).  A processor's own
    accesses always leave its copy fresh (fills record the current
    version, upgrades record the bumped one), so an occupancy-hit *read*
    with **no interleaved write to the same block by any processor** since
    the previous own reference is fresh — a guaranteed hit.  Writes are
    never classified fast (a shared-line write needs an upgrade).

3.  **Phase-boundary carry-over.**  The first reference a processor makes
    to a line in a phase is checked against the cache's current line state
    (:meth:`DirectMappedCache.line_state`); it is fast only if it would
    read-hit *now* and no write to the block precedes it in the phase.

The interleaving order used for "since the previous own reference" is the
interpreter's round-robin order: reference ``i`` of processor ``p`` has
global position ``i * num_procs + p``.

Dynamic promotion (pressure proofs)
-----------------------------------
The classification above is *static*: it throws away everything it cannot
prove before the phase runs.  The engine recovers part of that loss
dynamically — after a residual reference to block ``B`` by processor
``p`` resolves (miss fill, probe hit, upgrade), every later pending
reference of ``p`` to ``B`` is a guaranteed hit *up to the first hazard*,
and the engine **promotes** it into the closed-form fast class.  The
:class:`ResidualSchedule` built here carries the per-entry facts that
make each promotion an O(1) mask flip plus two integer comparisons:

``pw``
    The interleave position of the last write to the entry's block
    strictly before it (static, conservative: every write counts, even
    ones that at runtime hit an owned-dirty line and bump no version).
    A pending read of ``B`` at position ``j`` is fresh after a trigger at
    position ``g`` iff ``pw[j] <= g`` — no write to ``B``, by anyone,
    separates it from the trigger.  ``pw`` is monotone per block, so the
    first failing candidate ends the scan for good.  A pending *write*
    is promotable only while the line is known dirty (then it is the
    interpreter's ``WRITE_HIT_OWNED`` — a plain hit with no directory
    action); promoting it advances the write watermark so the rest of
    the run stays provably fresh.
``prev_conflict``
    The *pressure proof*: the own-stream index of the last residual
    reference before this one that maps to the same L1 set with a
    different block.  A candidate at index ``j`` is eviction-safe from a
    trigger at index ``i`` iff ``prev_conflict[j] < i`` — no residual
    conflict lands in ``(i, j)``, and no *fast* (or demoted-fast)
    reference can conflict either: a statically-fast reference to set
    ``S`` always references the block occupying ``S``, which the chain
    of promotions keeps equal to ``B`` throughout the window.  Promotion
    therefore stops exactly where an intervening conflict could evict
    the line.

Promotion never changes semantics: a promoted reference resolves to the
same hit, with the same counters, that the interpreter's probe would
produce — the equivalence suite asserts this bit for bit with promotion
enabled and disabled.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

#: Classification codes (values chosen so ``cls != CLS_FAST`` selects the
#: residual stream).
CLS_MISS = 0
CLS_FAST = 1
CLS_PROBE = 2

#: Sentinel "no index" value used in the schedule arrays.
NO_INDEX = 1 << 62


class ResidualSchedule:
    """One phase's residual references, organised for O(1) promotion.

    The walk order is the pre-merged ``entries`` list — ``(round, proc,
    probe?, block, is_write, slot, chain?)`` tuples in the reference
    interpreter's round-robin order (``chain?`` is the promotion gate:
    whether the entry has a live same-block successor), with ``keys``
    carrying each entry's interleave position for cheap merging against
    demoted references.  Per processor, flat slot-indexed arrays
    describe the same entries:

    ``idx[p][s]``
        Own-stream index of slot ``s`` (ascending).
    ``wrt[p][s]``
        Write flag per slot.
    ``pw[p][s]``
        Interleave position of the last write to the slot's block
        strictly before it (or -1).
    ``prev_conflict[p][s]``
        Own-stream index of the last earlier residual reference mapping
        to the same L1 set with a *different* block (or -1) — the
        pressure proof bounding how far a promotion may reach.
    ``status[p]``
        The promotion mask: ``status[p][s]`` is 1 when slot ``s`` has
        been promoted to the fast class (the walk skips it), 0 while it
        is pending.  Promotion sets the byte, demotion clears it — both
        O(1).
    ``next_same_block[p][s]``
        Slot of the next residual reference to the same block (-1 at the
        end of the chain): the promotion candidates reachable from a
        resolved slot, followed without any lookup structure.
    ``slot_of[p] / pw_full[p]``
        Full own-stream arrays: the slot holding each reference (-1 for
        statically-fast ones) and every reference's last-write position
        — used when a shootdown demotes statically-fast references.

    The per-slot promotion facts (``pw``, ``prev_conflict``,
    ``next_same_block`` and the ``idx``/``wrt`` mirrors) are only built
    when :func:`classify_phase` is called with ``build_promotion=True``;
    ``status`` and ``slot_of`` are always present (demotion needs them
    regardless).
    """

    __slots__ = ("entries", "keys", "idx", "wrt", "pw",
                 "prev_conflict", "next_same_block", "status", "slot_of",
                 "pw_full")

    def __init__(self, num_procs: int) -> None:
        self.entries: list = []
        self.keys: List[int] = []
        self.idx: List[List[int]] = [[] for _ in range(num_procs)]
        self.wrt: List[List[bool]] = [[] for _ in range(num_procs)]
        self.pw: List[List[int]] = [[] for _ in range(num_procs)]
        self.prev_conflict: List[List[int]] = [[] for _ in range(num_procs)]
        self.next_same_block: List[List[int]] = [
            [] for _ in range(num_procs)]
        self.status: List[bytearray] = [bytearray() for _ in range(num_procs)]
        self.slot_of: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(num_procs)]
        self.pw_full: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(num_procs)]

    def __len__(self) -> int:
        return len(self.entries)

    # -- small helpers (tests and non-inlined callers) ---------------------

    def promote(self, p: int, slot: int) -> None:
        """Mark slot ``slot`` of processor ``p`` promoted (walk skips it)."""
        self.status[p][slot] = 1

    def demote(self, p: int, slot: int) -> None:
        """Clear a promotion (the walk will execute the slot again)."""
        self.status[p][slot] = 0

    def is_promoted(self, p: int, slot: int) -> bool:
        """Whether slot ``slot`` of processor ``p`` is currently promoted."""
        return bool(self.status[p][slot])

    def pending(self, p: int) -> List[int]:
        """Own-stream indices of processor ``p``'s unpromoted entries."""
        return [i for s, i in enumerate(self.idx[p])
                if not self.status[p][s]]


class _StaticSchedule:
    """Stream-derived classification of one phase, shared across runs.

    Everything here depends only on the reference streams and the cache
    *geometry* — not on the caches' contents, the directory, or any other
    run state — so it is computed once per (phase, geometry) and reused
    by every subsequent run of the same trace in the process (sweeps run
    the same trace under many systems; warm workers keep traces, and
    therefore these, alive across runs).  The one cache-state-dependent
    step — resolving the phase-boundary first touches against the live
    line state — happens per run in :func:`classify_phase`: first-touch
    references are *statically* residual probes, and a run pre-promotes
    the ones its cache state proves fast via the ordinary promotion mask.
    """

    __slots__ = ("out", "entries", "keys", "idx", "wrt", "pw", "prevc",
                 "next_sb", "slot_of", "pw_full", "seg_counts",
                 "ft_prc", "ft_own", "ft_line", "ft_blk", "ft_wrt",
                 "ft_pw", "ft_slot")


def _build_static(blocks: Sequence[np.ndarray], writes: Sequence[np.ndarray],
                  lens: Sequence[int], num_procs: int,
                  num_lines: Sequence[int],
                  build_promotion: bool) -> _StaticSchedule:
    """Build the stream-derived part of the classification (see above)."""
    total = sum(lens)

    # PhaseTrace normalizes streams at construction (int64 blocks, bool
    # writes), so concatenation involves no per-stream re-wrapping.
    blk = np.concatenate(blocks)
    wrt = np.concatenate(writes)
    prc = np.concatenate([np.full(n, p, dtype=np.int64)
                          for p, n in enumerate(lens)])
    own = np.concatenate([np.arange(n, dtype=np.int64) for n in lens])
    gpos = own * num_procs + prc

    # ---- last write to each block before each reference ------------------
    # One sort groups the references by (block, interleave position); a
    # running maximum over "write positions, floored per block" then gives
    # every reference the interleave position of the last write to its
    # block strictly before it (or -1 when there is none).  gpos needs
    # bits(total * num_procs); block ids get the rest of the int64.
    shift = max(int(total * num_procs).bit_length() + 1, 28)
    if int(blk.max(initial=0)).bit_length() + shift < 63:
        blk_keys = blk << shift
    else:  # pragma: no cover - astronomically large block ids
        # compress block ids to dense ranks so the composite key fits
        _, ranks = np.unique(blk, return_inverse=True)
        blk_keys = ranks.astype(np.int64) << shift
    self_keys = blk_keys | gpos
    by = np.argsort(self_keys)     # keys are unique: no stability needed
    bk_sorted = blk_keys[by]
    # a write contributes its own key; a read contributes a sentinel that
    # is larger than every smaller block's key but smaller than every key
    # of its own block, so the running maximum never crosses block groups
    vals = np.where(wrt[by], self_keys[by], bk_sorted - 1)
    run = np.maximum.accumulate(vals)
    pw_sorted = np.empty(total, dtype=np.int64)
    pw_sorted[0] = -1
    np.subtract(run[:-1], bk_sorted[1:], out=pw_sorted[1:])
    # now pw_sorted >= 0 iff the previous max is a write of the same block
    # (its key >= my block key); the value is then that write's gpos
    np.clip(pw_sorted, -1, None, out=pw_sorted)
    pw = np.empty(total, dtype=np.int64)
    pw[by] = pw_sorted             # last write to my block before me, or -1

    # ---- occupancy: previous reference to the same (proc, line) ----------
    # Composite (proc, line) keys are small ints: when they fit in int16
    # the single stable argsort is a cheap radix sort.  Each processor's
    # segment of the concatenated arrays is already in interleave order,
    # which the stable sort preserves within each (proc, line) group.
    # All caches share one geometry (Processor.create sizes them equally),
    # but compute the line per proc anyway to stay general.
    max_lines = max(num_lines)
    if num_lines.count(num_lines[0]) == num_procs:
        lines = blk % num_lines[0]
    else:  # pragma: no cover - heterogeneous cache geometries
        lines = np.empty(total, dtype=np.int64)
        off = 0
        for p, n in enumerate(lens):
            if n:
                lines[off:off + n] = blk[off:off + n] % num_lines[p]
            off += n
    key = prc * max_lines + lines
    if max_lines * num_procs < 2 ** 15:
        key = key.astype(np.int16)
    elif max_lines * num_procs < 2 ** 31:  # pragma: no cover - huge caches
        key = key.astype(np.int32)
    order = np.argsort(key, kind="stable")
    kk = key[order]
    same = kk[1:] == kk[:-1]
    tgt = order[1:][same]
    src = order[:-1][same]
    prev_line_blk = np.full(total, -1, dtype=np.int64)
    prev_line_blk[tgt] = blk[src]
    occ_hit = prev_line_blk == blk

    # ---- guaranteed hits --------------------------------------------------
    # For a direct-mapped cache, an occupancy hit means the previous
    # same-line reference *is* the previous own reference to this block
    # (all own references to a block share its line).  The reference is a
    # guaranteed read hit when no write to its block lies between that
    # previous own reference and itself: last-write-before-me <= prev-own.
    prev_own = np.full(total, -2, dtype=np.int64)
    prev_own[tgt] = gpos[src]
    fast = occ_hit & ~wrt
    fast &= pw <= prev_own
    probe = occ_hit & ~fast

    out = np.zeros(total, dtype=np.int8)
    out[probe] = CLS_PROBE
    out[fast] = CLS_FAST

    # ---- phase-boundary carry-over: first touch of each line -------------
    # The first reference a processor makes to a line in the phase can
    # only be resolved against the *live* cache state, which this static
    # pass must not see.  First touches are therefore statically residual
    # probes (exact: the engine's probe path reproduces the reference
    # interpreter's probe for resident, stale and absent lines alike),
    # and :func:`classify_phase` pre-promotes, per run, the ones the
    # run's line state proves to be guaranteed hits.
    st = _StaticSchedule()
    first_touch = np.ones(total, dtype=bool)
    first_touch[tgt] = False
    ft_idx = np.flatnonzero(first_touch)
    out[ft_idx] = CLS_PROBE
    st.ft_prc = prc[ft_idx].tolist()
    st.ft_own = own[ft_idx].tolist()
    st.ft_line = lines[ft_idx].tolist()
    st.ft_blk = blk[ft_idx].tolist()
    st.ft_wrt = wrt[ft_idx].tolist()
    st.ft_pw = pw[ft_idx].tolist()

    st.out = out
    res = np.flatnonzero(out != CLS_FAST)
    n_res = len(res)

    # Per-proc slot numbers: slot s of proc p is p's s-th residual ref.
    # `res` is in flat (per-proc-concatenated) order, so each processor's
    # residual entries form one contiguous, own-order segment of it.
    res_local = np.full(total, -1, dtype=np.int64)
    res_local[res] = np.arange(n_res, dtype=np.int64)
    seg_counts = np.bincount(prc[res], minlength=num_procs)
    seg_start = np.zeros(num_procs + 1, dtype=np.int64)
    np.cumsum(seg_counts, out=seg_start[1:])
    slot_global = res_local.copy()
    slot_global[res] -= seg_start[prc[res]]
    st.seg_counts = [int(c) for c in seg_counts]
    st.ft_slot = slot_global[ft_idx].tolist()

    st.slot_of = []
    st.pw_full = []
    off = 0
    for p, n in enumerate(lens):
        st.slot_of.append(slot_global[off:off + n])
        st.pw_full.append(pw[off:off + n])
        off += n

    st.idx = [()] * num_procs
    st.wrt = [()] * num_procs
    st.pw = [()] * num_procs
    st.prevc = [()] * num_procs
    st.next_sb = [()] * num_procs
    if build_promotion and n_res:
        # -- pressure proofs: last same-set different-block residual
        # reference before each slot.  The (proc, set) occupancy sort
        # above already groups every reference by set in own order;
        # restrict it to the residual entries, then let maximal same-set
        # same-block runs inherit the own index of the entry just before
        # their run head (the previous run's tail, a conflicting block)
        # or -1 when the run opens its set.
        ord_res = order[out[order] != CLS_FAST]
        kk_r = key[ord_res]
        br = blk[ord_res]
        ir = own[ord_res]
        head = np.ones(n_res, dtype=bool)
        if n_res > 1:
            head[1:] = ~((kk_r[1:] == kk_r[:-1]) & (br[1:] == br[:-1]))
        run_id = np.cumsum(head) - 1
        head_pos = np.flatnonzero(head)
        head_pc = np.full(len(head_pos), -1, dtype=np.int64)
        if len(head_pos) > 1:
            hp = head_pos[1:]
            same_set = kk_r[hp] == kk_r[hp - 1]
            head_pc[1:][same_set] = ir[hp - 1][same_set]
        prevc_all = np.empty(n_res, dtype=np.int64)
        prevc_all[res_local[ord_res]] = head_pc[run_id]

        # -- same-block chains: slot of the next residual reference by
        # the same processor to the same block.  One stable sort by
        # (block, proc) groups the residual entries with own order
        # preserved; links are rebased to per-proc slot numbers.
        key_b = blk[res] * num_procs + prc[res]
        order_c = np.argsort(key_b, kind="stable")
        nxt_all = np.full(n_res, -1, dtype=np.int64)
        if n_res > 1:
            kb = key_b[order_c]
            same_b = kb[1:] == kb[:-1]
            nxt_all[order_c[:-1][same_b]] = order_c[1:][same_b]

        own_res = own[res]
        wrt_res = wrt[res]
        pw_res = pw[res]

        # Prune chain links whose first candidate already fails the
        # *static* promotion conditions: a conflict between the two
        # references, or a write to the block after the link's source
        # (both exact — the runtime scan's watermark never exceeds the
        # source's position, so a statically-failing first candidate
        # always ends the scan), plus write candidates hanging off read
        # sources (promotable only when the line happens to be dirty;
        # conservatively dropped so the per-resolution gate stays
        # precise).  Dropping a link spares the engine a futile call;
        # the candidate still resolves exactly when the walk reaches it.
        src_l = np.flatnonzero(nxt_all >= 0)
        if len(src_l):
            tgt_l = nxt_all[src_l]
            bad = ((prevc_all[tgt_l] >= own_res[src_l])
                   | (pw_res[tgt_l] > gpos[res][src_l])
                   | (wrt_res[tgt_l] & ~wrt_res[src_l]))
            nxt_all[src_l[bad]] = -1

        rebase = seg_start[prc[res]]
        np.subtract(nxt_all, rebase, out=nxt_all, where=nxt_all >= 0)

        # Scalar indexing of Python lists is several times cheaper than
        # numpy scalar access, and the conversion cost amortizes to ~zero
        # because this static build is cached per phase and reused by
        # every later run of the trace in the process.
        for p in range(num_procs):
            s, e = int(seg_start[p]), int(seg_start[p + 1])
            if s == e:
                continue
            st.idx[p] = own_res[s:e].tolist()
            st.wrt[p] = wrt_res[s:e].tolist()
            st.pw[p] = pw_res[s:e].tolist()
            st.prevc[p] = prevc_all[s:e].tolist()
            st.next_sb[p] = nxt_all[s:e].tolist()

    rsel = res[np.argsort(gpos[res])]      # interleave order
    st.keys = gpos[rsel].tolist()
    # the 7th element is the promotion gate: whether this entry has a
    # live same-block chain successor (checked once per walked
    # reference, so it rides in the tuple instead of a per-slot lookup)
    if build_promotion and n_res:
        chain_live = np.zeros(total, dtype=bool)
        chain_live[res] = nxt_all >= 0
        chain_flags = chain_live[rsel].tolist()
    else:
        chain_flags = [False] * len(rsel)
    st.entries = list(zip((gpos[rsel] // num_procs).tolist(),
                          prc[rsel].tolist(),
                          (out[rsel] == CLS_PROBE).tolist(),
                          blk[rsel].tolist(),
                          wrt[rsel].tolist(),
                          slot_global[rsel].tolist(),
                          chain_flags))
    return st


def classify_phase(blocks: Sequence[np.ndarray], writes: Sequence[np.ndarray],
                   caches: Sequence[object],
                   version_of: Callable[[int], int], *,
                   build_promotion: bool = True, phase: object = None):
    """Classify one phase's references for every processor.

    Parameters
    ----------
    blocks, writes:
        Per-processor reference streams (``writes`` non-zero marks writes).
    caches:
        The processors' :class:`~repro.mem.cache.DirectMappedCache` objects
        in their *current* (phase-start) state.
    version_of:
        Directory version lookup (``block -> version``).
    build_promotion:
        Build the per-slot promotion facts (skipped when the engine runs
        with the promotion lane disabled).
    phase:
        The owning :class:`~repro.workloads.trace.PhaseTrace` (or any
        object with a writable ``__dict__``).  When given, the
        stream-derived part of the classification is cached on it and
        reused by every later run of the same phase with the same cache
        geometry — sweeps re-run the same trace under many systems, and
        warm workers keep traces alive across runs.

    Returns ``(cls, schedule)``: one ``int8`` array of ``CLS_*`` codes per
    processor, and the residual walk schedule as a
    :class:`ResidualSchedule` — the non-``CLS_FAST`` references in the
    reference interpreter's round-robin order (by round, then processor),
    together with the per-slot promotion facts (last-write positions,
    per-set pressure proofs, same-block chains) and the promotion mask.
    Phase-boundary first touches that the current cache state proves to
    be guaranteed hits come back pre-promoted (``CLS_FAST`` in ``cls``,
    status bit set) rather than as a separate class.
    """
    num_procs = len(blocks)
    lens = [len(b) for b in blocks]
    total = sum(lens)
    if total == 0:
        return ([np.zeros(n, dtype=np.int8) for n in lens],
                ResidualSchedule(num_procs))

    num_lines = [c.num_lines for c in caches]
    static = None
    cache_map = None
    ck = None
    if phase is not None:
        ck = (tuple(num_lines), bool(build_promotion))
        cache_map = getattr(phase, "__dict__", {}).get("_classify_static")
        if cache_map is not None:
            static = cache_map.get(ck)
    if static is None:
        static = _build_static(blocks, writes, lens, num_procs, num_lines,
                               build_promotion)
        if ck is not None:
            if cache_map is None:
                cache_map = {}
                try:
                    phase.__dict__["_classify_static"] = cache_map
                except (AttributeError, TypeError):  # pragma: no cover
                    cache_map = None
            if cache_map is not None:
                cache_map[ck] = static

    # ---- per-run assembly: fresh mutable state over the shared facts -----
    out = static.out
    cls = []
    off = 0
    for n in lens:
        cls.append(out[off:off + n].copy())
        off += n
    schedule = ResidualSchedule(num_procs)
    schedule.entries = static.entries
    schedule.keys = static.keys
    schedule.idx = static.idx
    schedule.wrt = static.wrt
    schedule.pw = static.pw
    schedule.prev_conflict = static.prevc
    schedule.next_same_block = static.next_sb
    schedule.slot_of = static.slot_of
    schedule.pw_full = static.pw_full
    schedule.status = [bytearray(c) for c in static.seg_counts]

    # ---- first-touch resolution against the live cache state -------------
    # Few entries (at most one per processor cache line), so a plain
    # Python pass beats vectorising it.  A first touch is a guaranteed
    # hit iff it would read-hit now and no write to its block precedes it
    # in the phase; those pre-promote through the ordinary mask (and can
    # be demoted again by a mid-phase shootdown like any promoted slot).
    ft_prc = static.ft_prc
    if ft_prc:
        states = [c.line_state() for c in caches]
        ft_own = static.ft_own
        ft_line = static.ft_line
        ft_blk = static.ft_blk
        ft_wrt = static.ft_wrt
        ft_pw = static.ft_pw
        ft_slot = static.ft_slot
        status = schedule.status
        for k in range(len(ft_prc)):
            if ft_wrt[k] or ft_pw[k] >= 0:
                continue
            p = ft_prc[k]
            b = ft_blk[k]
            ln = ft_line[k]
            cb, cv, _cd = states[p]
            if cb[ln] == b and cv[ln] >= version_of(b):
                cls[p][ft_own[k]] = CLS_FAST
                status[p][ft_slot[k]] = 1
    return cls, schedule


def static_residual_density(blocks: Sequence[np.ndarray],
                            writes: Sequence[np.ndarray],
                            caches: Sequence[object], *,
                            phase: object = None) -> float:
    """Fraction of the phase's references the static pass leaves residual.

    The signal behind the batched engine's adaptive promotion switch: a
    phase whose streams are mostly statically-provable hits (low density)
    has long same-block runs for the promotion lane to harvest, while a
    miss-dense phase (high density) only pays the lane's scan cost.  The
    classification codes are identical in both promotion variants, so
    this reuses whichever per-phase static is already cached and
    otherwise builds — and caches — the promotion-free one, which a
    following ``classify_phase(build_promotion=False)`` call then reuses
    for free.
    """
    num_procs = len(blocks)
    lens = [len(b) for b in blocks]
    total = sum(lens)
    if total == 0:
        return 0.0
    num_lines = [c.num_lines for c in caches]
    geom = tuple(num_lines)
    static = None
    cache_map = None
    if phase is not None:
        cache_map = getattr(phase, "__dict__", {}).get("_classify_static")
        if cache_map is not None:
            static = cache_map.get((geom, False)) or cache_map.get(
                (geom, True))
    if static is None:
        static = _build_static(blocks, writes, lens, num_procs, num_lines,
                               False)
        if phase is not None:
            if cache_map is None:
                cache_map = {}
                try:
                    phase.__dict__["_classify_static"] = cache_map
                except (AttributeError, TypeError):  # pragma: no cover
                    cache_map = None
            if cache_map is not None:
                cache_map[(geom, False)] = static
    return int(np.count_nonzero(static.out != CLS_FAST)) / total
