"""Vectorised per-phase reference classification for the batched engine.

The batched engine splits each phase's references into three classes:

``CLS_FAST``
    *Guaranteed* L1 read hits.  They are never executed individually: the
    engine resolves them in bulk (their cycle costs are pure array
    arithmetic, their only side effect is the cache hit counter).
``CLS_PROBE``
    References that *might* hit (the line may hold the block, but the
    outcome depends on runtime state such as version freshness or the
    dirty bit).  The engine performs the exact single-reference probe.
``CLS_MISS``
    References whose line provably cannot hold the block — the engine
    skips the probe entirely and goes straight to the miss path.

The classification is *sound* with respect to the reference interpreter
(:mod:`repro.engine.legacy`): a ``CLS_FAST`` reference resolves to a read
hit under the interpreter, and a ``CLS_MISS`` reference to a plain miss
(no stale-line invalidation).  The argument, in terms of the simulator's
lazy-invalidation model:

1.  **Occupancy is self-determined.**  After a processor references block
    ``B``, its direct-mapped line ``B % lines`` holds ``B`` — on a hit it
    already did, on a stale hit or miss the subsequent fill installs it.
    Hence "the previous own reference to this line was the same block"
    (an *occupancy hit*) and "it was a different block" (an *occupancy
    miss*) are computable per processor without simulating other
    processors.  External page-operation shootdowns can only *drop*
    lines, so they can turn an occupancy hit into a miss but never the
    reverse — ``CLS_MISS`` is unconditionally sound, while ``CLS_FAST``
    is revalidated through the cache ``watch`` hook (the engine demotes
    pending fast references to ``CLS_PROBE`` when a shootdown fires).

2.  **Freshness is bounded by writes.**  A cached copy only goes stale
    when the block's directory version is bumped, and versions are bumped
    exclusively by *writes* (write fills and upgrades).  A processor's own
    accesses always leave its copy fresh (fills record the current
    version, upgrades record the bumped one), so an occupancy-hit *read*
    with **no interleaved write to the same block by any processor** since
    the previous own reference is fresh — a guaranteed hit.  Writes are
    never classified fast (a shared-line write needs an upgrade).

3.  **Phase-boundary carry-over.**  The first reference a processor makes
    to a line in a phase is checked against the cache's current line state
    (:meth:`DirectMappedCache.line_state`); it is fast only if it would
    read-hit *now* and no write to the block precedes it in the phase.

The interleaving order used for "since the previous own reference" is the
interpreter's round-robin order: reference ``i`` of processor ``p`` has
global position ``i * num_procs + p``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

#: Classification codes (values chosen so ``cls != CLS_FAST`` selects the
#: residual stream).
CLS_MISS = 0
CLS_FAST = 1
CLS_PROBE = 2


def classify_phase(blocks: Sequence[np.ndarray], writes: Sequence[np.ndarray],
                   caches: Sequence[object],
                   version_of: Callable[[int], int]):
    """Classify one phase's references for every processor.

    Parameters
    ----------
    blocks, writes:
        Per-processor reference streams (``writes`` non-zero marks writes).
    caches:
        The processors' :class:`~repro.mem.cache.DirectMappedCache` objects
        in their *current* (phase-start) state.
    version_of:
        Directory version lookup (``block -> version``).

    Returns ``(cls, schedule)``: one ``int8`` array of ``CLS_*`` codes per
    processor, and the residual walk schedule — the non-``CLS_FAST``
    references as ``(round, proc, probe?, block, is_write)`` tuples in the
    reference interpreter's round-robin order (by round, then processor).
    """
    num_procs = len(blocks)
    lens = [len(b) for b in blocks]
    total = sum(lens)
    if total == 0:
        return [np.zeros(n, dtype=np.int8) for n in lens], []

    # PhaseTrace normalizes streams at construction (int64 blocks, bool
    # writes), so concatenation involves no per-stream re-wrapping.
    blk = np.concatenate(blocks)
    wrt = np.concatenate(writes)
    prc = np.concatenate([np.full(n, p, dtype=np.int64)
                          for p, n in enumerate(lens)])
    gpos = (np.concatenate([np.arange(n, dtype=np.int64) for n in lens])
            * num_procs + prc)

    # ---- last write to each block before each reference ------------------
    # One sort groups the references by (block, interleave position); a
    # running maximum over "write positions, floored per block" then gives
    # every reference the interleave position of the last write to its
    # block strictly before it (or -1 when there is none).  gpos needs
    # bits(total * num_procs); block ids get the rest of the int64.
    shift = max(int(total * num_procs).bit_length() + 1, 28)
    if int(blk.max(initial=0)).bit_length() + shift < 63:
        blk_keys = blk << shift
    else:  # pragma: no cover - astronomically large block ids
        # compress block ids to dense ranks so the composite key fits
        _, ranks = np.unique(blk, return_inverse=True)
        blk_keys = ranks.astype(np.int64) << shift
    self_keys = blk_keys | gpos
    by = np.argsort(self_keys)     # keys are unique: no stability needed
    bk_sorted = blk_keys[by]
    # a write contributes its own key; a read contributes a sentinel that
    # is larger than every smaller block's key but smaller than every key
    # of its own block, so the running maximum never crosses block groups
    vals = np.where(wrt[by], self_keys[by], bk_sorted - 1)
    run = np.maximum.accumulate(vals)
    pw_sorted = np.empty(total, dtype=np.int64)
    pw_sorted[0] = -1
    np.subtract(run[:-1], bk_sorted[1:], out=pw_sorted[1:])
    # now pw_sorted >= 0 iff the previous max is a write of the same block
    # (its key >= my block key); the value is then that write's gpos
    np.clip(pw_sorted, -1, None, out=pw_sorted)
    pw = np.empty(total, dtype=np.int64)
    pw[by] = pw_sorted             # last write to my block before me, or -1

    # ---- occupancy: previous reference to the same (proc, line) ----------
    # Composite (proc, line) keys are small ints: when they fit in int16
    # the single stable argsort is a cheap radix sort.  Each processor's
    # segment of the concatenated arrays is already in interleave order,
    # which the stable sort preserves within each (proc, line) group.
    # All caches share one geometry (Processor.create sizes them equally),
    # but compute the line per proc anyway to stay general.
    num_lines = [c.num_lines for c in caches]
    max_lines = max(num_lines)
    if num_lines.count(num_lines[0]) == num_procs:
        lines = blk % num_lines[0]
    else:  # pragma: no cover - heterogeneous cache geometries
        lines = np.empty(total, dtype=np.int64)
        off = 0
        for p, n in enumerate(lens):
            if n:
                lines[off:off + n] = blk[off:off + n] % num_lines[p]
            off += n
    key = prc * max_lines + lines
    if max_lines * num_procs < 2 ** 15:
        key = key.astype(np.int16)
    elif max_lines * num_procs < 2 ** 31:  # pragma: no cover - huge caches
        key = key.astype(np.int32)
    order = np.argsort(key, kind="stable")
    kk = key[order]
    same = kk[1:] == kk[:-1]
    tgt = order[1:][same]
    src = order[:-1][same]
    prev_line_blk = np.full(total, -1, dtype=np.int64)
    prev_line_blk[tgt] = blk[src]
    occ_hit = prev_line_blk == blk

    # ---- guaranteed hits --------------------------------------------------
    # For a direct-mapped cache, an occupancy hit means the previous
    # same-line reference *is* the previous own reference to this block
    # (all own references to a block share its line).  The reference is a
    # guaranteed read hit when no write to its block lies between that
    # previous own reference and itself: last-write-before-me <= prev-own.
    prev_own = np.full(total, -2, dtype=np.int64)
    prev_own[tgt] = gpos[src]
    fast = occ_hit & ~wrt
    fast &= pw <= prev_own
    probe = occ_hit & ~fast

    out = np.zeros(total, dtype=np.int8)
    out[probe] = CLS_PROBE
    out[fast] = CLS_FAST

    # ---- phase-boundary carry-over: first touch of each line -------------
    # Few references per phase (at most one per processor cache line), so
    # a plain Python pass over the cache state beats vectorising it.
    first_touch = np.ones(total, dtype=bool)
    first_touch[tgt] = False
    ft_idx = np.flatnonzero(first_touch)
    if len(ft_idx):
        ft_blk = blk[ft_idx].tolist()
        ft_prc = prc[ft_idx].tolist()
        ft_line = lines[ft_idx].tolist()
        ft_wrt = wrt[ft_idx].tolist()
        ft_pw = pw[ft_idx].tolist()
        ft_pos = ft_idx.tolist()
        states = [c.line_state() for c in caches]
        for k, pos in enumerate(ft_pos):
            p = ft_prc[k]
            b = ft_blk[k]
            cb, cv, _cd = states[p]
            if cb[ft_line[k]] == b:
                # resident first touch: may hit — probe at run time; it is
                # a *guaranteed* hit if it would read-hit now and no write
                # to the block precedes it in the phase
                if (not ft_wrt[k] and ft_pw[k] < 0
                        and cv[ft_line[k]] >= version_of(b)):
                    out[pos] = CLS_FAST
                else:
                    out[pos] = CLS_PROBE

    # ---- split per processor + build the residual schedule ---------------
    cls = []
    off = 0
    for n in lens:
        cls.append(out[off:off + n])
        off += n
    res = np.flatnonzero(out != CLS_FAST)
    if not len(res):
        return cls, []
    rsel = res[np.argsort(gpos[res])]      # interleave order
    schedule = list(zip((gpos[rsel] // num_procs).tolist(),
                        prc[rsel].tolist(),
                        (out[rsel] == CLS_PROBE).tolist(),
                        blk[rsel].tolist(),
                        wrt[rsel].tolist()))
    return cls, schedule
