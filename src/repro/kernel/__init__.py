"""Operating-system substrates: virtual memory, faults, page operations.

The techniques the paper compares are driven by kernel mechanisms layered
over the DSM hardware:

* :mod:`repro.kernel.vm` — the global page map with first-touch placement
  (the policy every simulated system starts from) and migration support.
* :mod:`repro.kernel.faults` — soft-trap/fault accounting shared by the
  protocols.
* :mod:`repro.kernel.migration` — page gathering, flushing, moving and
  copying mechanics used by CC-NUMA+MigRep.
* :mod:`repro.kernel.relocation` — the purely local page relocation used
  by R-NUMA to move a page into the S-COMA page cache.
"""

from repro.kernel.vm import VirtualMemoryManager
from repro.kernel.faults import FaultKind, FaultLog
from repro.kernel.migration import MigrationEngine, PageOpOutcome
from repro.kernel.relocation import RelocationEngine

__all__ = [
    "VirtualMemoryManager",
    "FaultKind",
    "FaultLog",
    "MigrationEngine",
    "PageOpOutcome",
    "RelocationEngine",
]
