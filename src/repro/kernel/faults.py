"""Soft-trap and fault accounting shared by the protocol implementations.

Both systems the paper compares spend a significant part of their overhead
in operating-system soft traps: the initial mapping fault for every remote
page, the relocation interrupt in R-NUMA, the migration/replication trap
at the home node in CC-NUMA+MigRep and the protection fault a write to a
replicated page raises.  This module centralises the taxonomy of those
faults and a small log/aggregation structure so experiments can report
where the kernel time went.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class FaultKind(enum.Enum):
    """Kinds of kernel-visible faults / traps in the simulated systems."""

    #: first access by a node to an unmapped shared page
    MAPPING_FAULT = "mapping_fault"
    #: R-NUMA interrupt to remap a CC-NUMA page into the S-COMA page cache
    RELOCATION_INTERRUPT = "relocation_interrupt"
    #: home-node trap starting a page migration
    MIGRATION_TRAP = "migration_trap"
    #: home-node trap starting a page replication
    REPLICATION_TRAP = "replication_trap"
    #: write to a read-only replicated page
    PROTECTION_FAULT = "protection_fault"
    #: S-COMA page cache replacement (victim flush) in R-NUMA
    PAGE_CACHE_EVICTION = "page_cache_eviction"


@dataclass
class FaultLog:
    """Per-node counts and cycle totals of each fault kind."""

    counts: Dict[FaultKind, int] = field(default_factory=dict)
    cycles: Dict[FaultKind, int] = field(default_factory=dict)

    def record(self, kind: FaultKind, cost_cycles: int = 0) -> None:
        """Record one fault of ``kind`` costing ``cost_cycles``."""
        if cost_cycles < 0:
            raise ValueError("cost_cycles must be non-negative")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.cycles[kind] = self.cycles.get(kind, 0) + cost_cycles

    def count_of(self, kind: FaultKind) -> int:
        """Number of faults of ``kind`` recorded."""
        return self.counts.get(kind, 0)

    def cycles_of(self, kind: FaultKind) -> int:
        """Total cycles attributed to faults of ``kind``."""
        return self.cycles.get(kind, 0)

    @property
    def total_faults(self) -> int:
        """Total number of faults of all kinds."""
        return sum(self.counts.values())

    @property
    def total_cycles(self) -> int:
        """Total cycles spent in all faults."""
        return sum(self.cycles.values())

    def merge(self, other: "FaultLog") -> None:
        """Accumulate another log into this one."""
        for kind, count in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count
        for kind, cyc in other.cycles.items():
            self.cycles[kind] = self.cycles.get(kind, 0) + cyc
