"""R-NUMA page relocation mechanics (CC-NUMA page -> local S-COMA page).

Section 3.2 of the paper: when a node's refetch counter for a remote page
exceeds the threshold, the processor interrupts the OS, which remaps the
CC-NUMA page into a local S-COMA page frame.  Unlike migration/replication
this is an entirely *local* operation: it flushes only this node's cached
blocks of the page, invalidates only this node's TLBs, and refetches only
the blocks the node subsequently needs.

Under memory pressure (page cache full) a relocation must first evict a
victim page, flushing its valid blocks back to their home — the source of
R-NUMA's overhead in applications with large page working sets (radix) or
little page reuse (cholesky).

As with :class:`repro.kernel.migration.MigrationEngine`, this module is
mechanism only; the decision of *when* to relocate lives in
:mod:`repro.core.decisions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import CostModel
from repro.interconnect.message import MessageType
from repro.interconnect.network import Network
from repro.kernel.vm import VirtualMemoryManager
from repro.mem.address import AddressSpace
from repro.mem.block_cache import BlockCache
from repro.mem.directory import Directory
from repro.mem.page_cache import PageCache
from repro.mem.page_table import PageMode, PageTable


@dataclass
class RelocationOutcome:
    """Result of one relocation (and possibly an eviction it forced)."""

    cost: int
    evicted_page: Optional[int] = None
    blocks_flushed: int = 0
    victim_blocks_flushed: int = 0


class RelocationEngine:
    """Executes R-NUMA page relocations and page-cache evictions for one machine."""

    def __init__(self, *, addr: AddressSpace, costs: CostModel,
                 vm: VirtualMemoryManager, directory: Directory,
                 network: Network, page_tables: Sequence[PageTable],
                 block_caches: Sequence[BlockCache],
                 page_caches: Sequence[PageCache],
                 l1_caches: Sequence[Sequence[object]]) -> None:
        self.addr = addr
        self.costs = costs
        self.vm = vm
        self.directory = directory
        self.network = network
        self.page_tables = list(page_tables)
        self.block_caches = list(block_caches)
        self.page_caches = list(page_caches)
        self.l1_caches = [list(procs) for procs in l1_caches]
        self.num_nodes = len(self.page_tables)
        self.relocations_by_node = [0] * self.num_nodes
        self.evictions_by_node = [0] * self.num_nodes

    # ------------------------------------------------------------------ helpers

    def _flush_node_page(self, node: int, page: int) -> int:
        """Drop every block of ``page`` cached on ``node`` (block cache + L1s)."""
        blocks = self.addr.blocks_of_page(page)
        flushed = 0
        bc = self.block_caches[node]
        for block in blocks:
            if bc.invalidate(block):
                flushed += 1
            for l1 in self.l1_caches[node]:
                if l1.invalidate(block):
                    flushed += 1
        self.directory.drop_node_from_page(blocks, node)
        return flushed

    # ------------------------------------------------------------------ operations

    def evict_victim(self, node: int, now: int) -> RelocationOutcome:
        """Evict the LRU page from ``node``'s page cache (page replacement).

        The victim's dirty blocks are written back to their home, its valid
        blocks dropped, its mapping reverted to CC-NUMA, and the local TLBs
        shot down.  The cost follows Table 3's allocation/replacement row,
        scaled by the number of blocks flushed.
        """
        pc = self.page_caches[node]
        victim = pc.choose_victim()
        if victim is None:
            return RelocationOutcome(cost=0)
        entry = pc.evict(victim)
        bpp = self.addr.blocks_per_page
        dirty = len(entry.dirty)
        valid = entry.valid_blocks()
        home = self.vm.home_of(victim)
        if home is not None and home != node and dirty:
            self.network.stats.record(MessageType.WRITEBACK, dirty)
        self.directory.drop_node_from_page(self.addr.blocks_of_page(victim), node)
        # also drop any L1 copies of the victim page's blocks on this node
        for block in self.addr.blocks_of_page(victim):
            for l1 in self.l1_caches[node]:
                l1.invalidate(block)
        self.page_tables[node].map_page(victim, PageMode.CCNUMA_REMOTE,
                                        count_fault=False)
        cost = (self.costs.page_alloc_cost(valid, bpp)
                + self.costs.tlb_shootdown)
        self.evictions_by_node[node] += 1
        return RelocationOutcome(cost=cost, evicted_page=victim,
                                 victim_blocks_flushed=valid)

    def relocate(self, node: int, page: int, now: int) -> RelocationOutcome:
        """Relocate ``page`` into ``node``'s S-COMA page cache (Figure 4b).

        Cost components: the relocation soft trap, flushing this node's
        currently cached blocks of the page, the local TLB invalidation,
        and — if the page cache is full — the eviction of a victim page.
        The relocated page starts with *no* valid blocks; they are
        refetched on demand.
        """
        pc = self.page_caches[node]
        if pc.contains(page):
            return RelocationOutcome(cost=0)

        total_cost = self.costs.soft_trap
        evicted: Optional[int] = None
        victim_blocks = 0
        if pc.is_full():
            ev = self.evict_victim(node, now)
            total_cost += ev.cost
            evicted = ev.evicted_page
            victim_blocks = ev.victim_blocks_flushed

        blocks_flushed = self._flush_node_page(node, page)
        bpp = self.addr.blocks_per_page
        total_cost += self.costs.page_alloc_cost(blocks_flushed, bpp)
        total_cost += self.costs.tlb_shootdown

        pc.allocate(page)
        self.page_tables[node].map_page(page, PageMode.SCOMA, count_fault=False)
        self.relocations_by_node[node] += 1
        return RelocationOutcome(cost=total_cost, evicted_page=evicted,
                                 blocks_flushed=blocks_flushed,
                                 victim_blocks_flushed=victim_blocks)

    # ------------------------------------------------------------------ reporting

    def total_relocations(self) -> int:
        """Total relocations performed across the machine."""
        return sum(self.relocations_by_node)

    def total_evictions(self) -> int:
        """Total page-cache evictions across the machine."""
        return sum(self.evictions_by_node)
