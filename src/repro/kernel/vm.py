"""Global page map with first-touch placement and migration support.

All systems in the paper start from the same "first-touch" placement
policy (Section 2): upon the first request for a page, the page is homed
at the requesting node, on the assumption that the first requester will be
a frequent requester.  Page migration later changes a page's home;
replication leaves the home in place but marks the page as having
read-only copies elsewhere.

The :class:`VirtualMemoryManager` is a machine-global object (conceptually
the cooperating per-node kernels) tracking, per page:

* the current home node,
* whether the page is currently replicated and on which nodes, and
* the migration history (used by the experiments to report page-operation
  counts and by tests to assert policy invariants).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set


@dataclass(slots=True)
class PageRecord:
    """Global (home-side) state of one shared page."""

    page: int
    home: int
    first_toucher: int
    migrations: int = 0
    #: nodes currently holding a read-only replica (excluding the home)
    replicas: Set[int] = field(default_factory=set)
    #: True while the page is in replicated (read-only everywhere) state
    replicated: bool = False


class VirtualMemoryManager:
    """Global page map shared by every node's kernel.

    ``placement`` selects the initial page-placement policy; the default
    (``None``) is the paper's first-touch policy.  Any
    :class:`repro.kernel.placement.PlacementPolicy` (or plain callable
    ``(page, requesting_node) -> home``) may be supplied to run the
    placement ablation.
    """

    __slots__ = ("num_nodes", "_pages", "_home", "_replicated",
                 "_replica_mask", "_placement",
                 "first_touches", "migrations", "replications",
                 "replica_collapses")

    def __init__(self, num_nodes: int, placement=None) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self._pages: Dict[int, PageRecord] = {}
        # flat page -> current home array (-1 = never placed), kept in sync
        # with the records; the protocol layer and the batched engine read
        # it directly on every miss instead of a record-dict lookup.  Grown
        # lazily and in place (aliases stay valid).  Buffer-backed so the
        # compiled residual kernel can view it without copying; the two
        # companion columns mirror PageRecord.replicated / .replicas as a
        # flag byte and a node bitmask for the same reason.
        self._home = array("q")
        self._replicated = bytearray()
        self._replica_mask = array("Q")
        self._placement = placement
        self.first_touches = 0
        self.migrations = 0
        self.replications = 0
        self.replica_collapses = 0

    # -- storage management --------------------------------------------------------

    def reserve(self, n: int) -> None:
        """Grow the home array (in place) to cover page ids ``< n``."""
        cap = len(self._home)
        if n <= cap:
            return
        grow = max(n, 2 * cap, 256) - cap
        # -1 as little-endian two's-complement int64 is all-ones bytes
        self._home.frombytes(b"\xff" * (8 * grow))
        self._replicated += bytes(grow)
        self._replica_mask.frombytes(bytes(8 * grow))

    # -- placement ---------------------------------------------------------------

    def ensure_placed(self, page: int, node: int) -> tuple[PageRecord, bool]:
        """Return the record for ``page``, placing it on first touch.

        The home node is the first toucher under the default first-touch
        policy, or whatever the configured placement policy decides.
        Returns ``(record, first_touch)``; ``first_touch`` is True when
        this call performed the placement.
        """
        self._check_node(node)
        rec = self._pages.get(page)
        if rec is not None:
            return rec, False
        home = node if self._placement is None else self._placement(page, node)
        self._check_node(home)
        rec = PageRecord(page=page, home=home, first_toucher=node)
        self._pages[page] = rec
        if page >= len(self._home):
            self.reserve(page + 1)
        self._home[page] = home
        self.first_touches += 1
        return rec, True

    def is_placed(self, page: int) -> bool:
        """True if the page already has a home."""
        return page in self._pages

    def home_of(self, page: int) -> Optional[int]:
        """Current home node of ``page``, or None if never touched."""
        home = self._home
        if page < len(home):
            h = home[page]
            return h if h >= 0 else None
        return None

    def record(self, page: int) -> Optional[PageRecord]:
        """Return the record of ``page`` if it exists."""
        return self._pages.get(page)

    # -- migration -----------------------------------------------------------------

    def migrate(self, page: int, new_home: int) -> PageRecord:
        """Move ``page``'s home to ``new_home`` (must already be placed)."""
        self._check_node(new_home)
        rec = self._pages.get(page)
        if rec is None:
            raise KeyError(f"page {page} has never been placed")
        if rec.replicated:
            raise ValueError("cannot migrate a page while it is replicated")
        if rec.home != new_home:
            rec.home = new_home
            self._home[page] = new_home
            rec.migrations += 1
            self.migrations += 1
        return rec

    # -- replication ------------------------------------------------------------------

    def replicate(self, page: int, node: int) -> PageRecord:
        """Install a read-only replica of ``page`` at ``node``."""
        self._check_node(node)
        rec = self._pages.get(page)
        if rec is None:
            raise KeyError(f"page {page} has never been placed")
        if node == rec.home:
            raise ValueError("the home node does not need a replica")
        rec.replicated = True
        if page >= len(self._home):
            self.reserve(page + 1)
        self._replicated[page] = 1
        self._replica_mask[page] |= 1 << node
        if node not in rec.replicas:
            rec.replicas.add(node)
            self.replications += 1
        return rec

    def collapse_replicas(self, page: int) -> Set[int]:
        """Switch a replicated page back to a single read-write page.

        Returns the set of nodes whose replicas were revoked (the caller
        charges their invalidation cost).
        """
        rec = self._pages.get(page)
        if rec is None:
            raise KeyError(f"page {page} has never been placed")
        revoked = set(rec.replicas)
        if rec.replicated or revoked:
            self.replica_collapses += 1
        rec.replicas.clear()
        rec.replicated = False
        if page < len(self._home):
            self._replicated[page] = 0
            self._replica_mask[page] = 0
        return revoked

    def is_replicated(self, page: int) -> bool:
        """True while the page is in replicated state."""
        rec = self._pages.get(page)
        return bool(rec and rec.replicated)

    def replicas_of(self, page: int) -> Set[int]:
        """Nodes currently holding a replica of ``page`` (excluding home)."""
        rec = self._pages.get(page)
        return set(rec.replicas) if rec is not None else set()

    def has_local_copy(self, page: int, node: int) -> bool:
        """True if ``node`` is the home of ``page`` or holds a replica."""
        rec = self._pages.get(page)
        if rec is None:
            return False
        return rec.home == node or node in rec.replicas

    # -- inspection -----------------------------------------------------------------------

    def pages(self) -> Iterator[int]:
        """Iterate over every placed page id."""
        return iter(self._pages.keys())

    def num_pages(self) -> int:
        """Number of pages that have been placed."""
        return len(self._pages)

    def pages_homed_at(self, node: int) -> List[int]:
        """Pages whose current home is ``node``."""
        self._check_node(node)
        return [p for p, rec in self._pages.items() if rec.home == node]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
