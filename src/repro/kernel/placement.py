"""Initial page-placement policies.

Section 2 of the paper notes that CC-NUMA performance "may be very
sensitive to the initial data allocation and placement" (citing LaRowe &
Ellis) and fixes **first-touch** placement for every system it studies,
because first-touch "is simple and has been shown to substantially
eliminate unnecessary traffic".  This module makes the placement policy an
explicit, swappable object so that the reproduction can

* run every paper experiment under first-touch exactly as the paper does
  (the default), and
* quantify, as an ablation, how much of MigRep's and R-NUMA's benefit is
  really "recovering from a bad initial placement": under round-robin or
  single-node placement the CC-NUMA baseline degrades sharply while
  MigRep recovers most of the loss (it migrates mis-placed pages to their
  real users) and R-NUMA recovers nearly all of it.

A placement policy is a callable ``(page, requesting_node) -> home_node``
invoked exactly once per page, on its first touch.  Policies carry a
``name`` used by the experiment harness and reports.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.registry import PLACEMENTS, NamesView, register_placement

PlacementFn = Callable[[int, int], int]


class PlacementPolicy:
    """Base class: decide the home node of a page on its first touch."""

    #: canonical policy name (overridden by subclasses)
    name = "base"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes

    def place(self, page: int, requesting_node: int) -> int:
        """Return the home node for ``page`` first touched by ``requesting_node``."""
        raise NotImplementedError

    def __call__(self, page: int, requesting_node: int) -> int:
        home = self.place(page, requesting_node)
        if not 0 <= home < self.num_nodes:
            raise ValueError(
                f"policy {self.name!r} placed page {page} on node {home}, "
                f"outside [0, {self.num_nodes})")
        return home

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name


@register_placement
class FirstTouchPlacement(PlacementPolicy):
    """Home the page at the node that touches it first (the paper's policy)."""

    name = "first-touch"

    def place(self, page: int, requesting_node: int) -> int:
        return requesting_node


@register_placement
class RoundRobinPlacement(PlacementPolicy):
    """Home pages round-robin across nodes, in first-touch order.

    This is the classic "striped" allocation of early NUMA kernels: it
    balances memory usage but ignores locality entirely, so it maximises
    the amount of work the migration/replication and relocation machinery
    has to do — the stress case for the ablation.
    """

    name = "round-robin"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self._next = 0

    def place(self, page: int, requesting_node: int) -> int:
        home = self._next
        self._next = (self._next + 1) % self.num_nodes
        return home


@register_placement
class InterleavedPlacement(PlacementPolicy):
    """Home page ``p`` at node ``p mod num_nodes`` (address-interleaved).

    Deterministic in the page id rather than in touch order, which makes
    runs of the same trace under different systems exactly comparable.
    """

    name = "interleaved"

    def place(self, page: int, requesting_node: int) -> int:
        return page % self.num_nodes


@register_placement
class SingleNodePlacement(PlacementPolicy):
    """Home every page at one fixed node (worst-case "memory hog" placement).

    Models the naive allocation where the initialisation thread on node
    ``target`` touches the whole data set before the parallel phase — the
    scenario the paper's first-touch directive (invoked "at the start of
    the parallel phase") exists to avoid.
    """

    name = "single-node"

    def __init__(self, num_nodes: int, target: int = 0) -> None:
        super().__init__(num_nodes)
        if not 0 <= target < num_nodes:
            raise ValueError(f"target node {target} out of range [0, {num_nodes})")
        self.target = target

    def place(self, page: int, requesting_node: int) -> int:
        return self.target

    def describe(self) -> str:
        return f"{self.name}(node {self.target})"


#: Live view of every available placement-policy name.  New policies are
#: added with :func:`repro.registry.register_placement` (as the built-in
#: classes above are) and appear here immediately.
PLACEMENT_NAMES = NamesView(PLACEMENTS)


def build_placement(name: str, num_nodes: int) -> PlacementPolicy:
    """Construct the placement policy registered under ``name``.

    Raises :class:`repro.registry.UnknownNameError` (a ``ValueError``)
    listing the valid names, with a did-you-mean suggestion for typos.
    """
    return PLACEMENTS.resolve(name)(num_nodes)
