"""Page gathering / migration / replication mechanics (CC-NUMA+MigRep).

Section 3.1 of the paper describes the sequence a page operation follows
at the home node: lock the page mapper, request a page flush from every
cacher, set the poison bits for lazy TLB invalidation, move (or copy) the
page, and resume the waiting cachers.  With hardware support the flush and
copy are fast (Table 3); without it, every step traps into the kernel and
is roughly ten times slower (the Figure 6 study).

:class:`MigrationEngine` implements those mechanics against the simulator's
substrate objects (directory, page tables, block caches, page caches and
processor caches).  It deliberately knows nothing about *policy* — the
decision of when to migrate or replicate lives in
:mod:`repro.core.decisions`; this module only executes an operation and
reports its cost so the protocol can charge it to the requesting
processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.config import CostModel
from repro.interconnect.message import MessageType
from repro.interconnect.network import Network
from repro.kernel.vm import VirtualMemoryManager
from repro.mem.address import AddressSpace
from repro.mem.block_cache import BlockCache
from repro.mem.directory import Directory
from repro.mem.page_table import PageMode, PageTable


@dataclass
class PageOpOutcome:
    """Result of a page operation (migration, replication or collapse).

    Attributes
    ----------
    cost:
        Cycles the *requesting* processor stalls for the operation.
    blocks_flushed:
        Number of cached blocks flushed from cachers during gathering.
    nodes_flushed:
        Number of nodes that had to flush blocks / drop mappings.
    """

    cost: int
    blocks_flushed: int = 0
    nodes_flushed: int = 0


class MigrationEngine:
    """Executes page migration / replication operations for the whole machine.

    Parameters
    ----------
    addr, costs, vm, directory, network:
        Machine-global substrate objects.
    page_tables:
        One :class:`PageTable` per node.
    block_caches:
        One :class:`BlockCache` per node.
    l1_caches:
        ``l1_caches[node]`` is the sequence of per-processor caches on that
        node (anything exposing ``invalidate(block)``).
    """

    def __init__(self, *, addr: AddressSpace, costs: CostModel,
                 vm: VirtualMemoryManager, directory: Directory,
                 network: Network, page_tables: Sequence[PageTable],
                 block_caches: Sequence[BlockCache],
                 l1_caches: Sequence[Sequence[object]]) -> None:
        self.addr = addr
        self.costs = costs
        self.vm = vm
        self.directory = directory
        self.network = network
        self.page_tables = list(page_tables)
        self.block_caches = list(block_caches)
        self.l1_caches = [list(procs) for procs in l1_caches]
        self.num_nodes = len(self.page_tables)
        # operation counters (per node, indexed by the node that benefits)
        self.migrations_by_node = [0] * self.num_nodes
        self.replications_by_node = [0] * self.num_nodes
        self.collapses_by_node = [0] * self.num_nodes

    # ------------------------------------------------------------------ helpers

    def _flush_node_page(self, node: int, page: int) -> int:
        """Flush every cached block of ``page`` from ``node``; return the count."""
        blocks = self.addr.blocks_of_page(page)
        flushed = 0
        bc = self.block_caches[node]
        for block in blocks:
            if bc.invalidate(block):
                flushed += 1
            for l1 in self.l1_caches[node]:
                if l1.invalidate(block):
                    flushed += 1
        self.directory.drop_node_from_page(blocks, node)
        return flushed

    def _gather(self, page: int, home: int, now: int,
                exclude: Iterable[int] = ()) -> tuple[int, int, int]:
        """Gather ``page``: flush it from every cacher node.

        Returns ``(completion_time, blocks_flushed, nodes_flushed)``.  The
        home node sends a flush request to each cacher and waits for the
        flush-done replies; with hardware support the per-node flush cost
        is folded into the gather cost charged by the caller.
        """
        blocks = self.addr.blocks_of_page(page)
        sharer_mask = self.directory.page_sharer_mask(blocks)
        excluded = set(exclude)
        blocks_flushed = 0
        nodes_flushed = 0
        done_time = now
        for node in range(self.num_nodes):
            if node == home or node in excluded:
                continue
            if not sharer_mask & (1 << node):
                continue
            t = self.network.one_way(home, node, now, MessageType.PAGE_FLUSH_REQUEST)
            flushed = self._flush_node_page(node, page)
            blocks_flushed += flushed
            nodes_flushed += 1
            t = self.network.one_way(node, home, t, MessageType.PAGE_FLUSH_DONE)
            done_time = max(done_time, t)
            # the cacher drops its mapping of the page; it will re-fault later
            self.page_tables[node].unmap(page)
        return done_time, blocks_flushed, nodes_flushed

    # ------------------------------------------------------------------ operations

    def migrate(self, page: int, new_home: int, now: int) -> PageOpOutcome:
        """Migrate ``page`` to ``new_home`` (Figure 3b, "Migrate" path).

        Cost components (Table 3): soft trap at the home, page invalidation
        and data gathering (scaled by the number of blocks flushed), page
        copy to the new home, and a TLB shootdown at the old home.
        """
        rec = self.vm.record(page)
        if rec is None:
            raise KeyError(f"page {page} has never been placed")
        old_home = rec.home
        if old_home == new_home:
            return PageOpOutcome(cost=0)

        bpp = self.addr.blocks_per_page
        done, blocks_flushed, nodes_flushed = self._gather(
            page, old_home, now, exclude=(new_home,))
        # the new home also flushes its own (remote-cached) copies: they are
        # about to become local memory
        blocks_flushed += self._flush_node_page(new_home, page)

        cost = (self.costs.soft_trap
                + self.costs.gather_cost(blocks_flushed, bpp)
                + self.costs.copy_cost(bpp, bpp)
                + self.costs.tlb_shootdown)
        cost += max(0, done - now)

        self.network.one_way(old_home, new_home, now, MessageType.PAGE_DATA)
        self.vm.migrate(page, new_home)
        self.page_tables[old_home].map_page(page, PageMode.CCNUMA_REMOTE,
                                            count_fault=False)
        self.page_tables[new_home].map_page(page, PageMode.LOCAL_HOME,
                                            count_fault=False)
        self.migrations_by_node[new_home] += 1
        return PageOpOutcome(cost=cost, blocks_flushed=blocks_flushed,
                             nodes_flushed=nodes_flushed + 1)

    def replicate(self, page: int, node: int, now: int) -> PageOpOutcome:
        """Replicate ``page`` read-only at ``node`` (Figure 3b, "Replicate" path).

        The first replication of a page switches it to read-only at the
        home (requiring a gather of dirty copies); subsequent replications
        only copy the page to the new sharer.
        """
        rec = self.vm.record(page)
        if rec is None:
            raise KeyError(f"page {page} has never been placed")
        home = rec.home
        if node == home:
            return PageOpOutcome(cost=0)

        bpp = self.addr.blocks_per_page
        cost = self.costs.soft_trap
        blocks_flushed = 0
        nodes_flushed = 0
        if not rec.replicated:
            # first replica: gather the page so the home holds a clean copy
            done, blocks_flushed, nodes_flushed = self._gather(
                page, home, now, exclude=(node,))
            cost += self.costs.gather_cost(blocks_flushed, bpp)
            cost += self.costs.tlb_shootdown
            cost += max(0, done - now)
        cost += self.costs.copy_cost(bpp, bpp)

        self.network.one_way(home, node, now, MessageType.PAGE_DATA)
        self.vm.replicate(page, node)
        self.page_tables[node].map_page(page, PageMode.REPLICA, writable=False,
                                        count_fault=False)
        self.replications_by_node[node] += 1
        return PageOpOutcome(cost=cost, blocks_flushed=blocks_flushed,
                             nodes_flushed=nodes_flushed)

    def collapse_replicas(self, page: int, writer: int, now: int) -> PageOpOutcome:
        """Switch a replicated page back to read-write (write-protection fault).

        Every replica is revoked; the writer pays a soft trap plus a TLB
        shootdown per revoked replica (Figure 3b, "Switch to R/W page").
        """
        rec = self.vm.record(page)
        if rec is None:
            raise KeyError(f"page {page} has never been placed")
        revoked = self.vm.collapse_replicas(page)
        cost = self.costs.soft_trap
        blocks_flushed = 0
        done = now
        for node in revoked:
            t = self.network.one_way(rec.home, node, now,
                                     MessageType.PAGE_FLUSH_REQUEST)
            blocks_flushed += self._flush_node_page(node, page)
            self.page_tables[node].unmap(page)
            t = self.network.one_way(node, rec.home, t,
                                     MessageType.PAGE_FLUSH_DONE)
            done = max(done, t)
            cost += self.costs.tlb_shootdown
        cost += max(0, done - now)
        if revoked:
            self.collapses_by_node[writer] += 1
        return PageOpOutcome(cost=cost, blocks_flushed=blocks_flushed,
                             nodes_flushed=len(revoked))

    # ------------------------------------------------------------------ reporting

    def total_migrations(self) -> int:
        """Total migrations performed across the machine."""
        return sum(self.migrations_by_node)

    def total_replications(self) -> int:
        """Total replica installations performed across the machine."""
        return sum(self.replications_by_node)
